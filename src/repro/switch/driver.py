"""Control-plane driver with a calibrated PCIe latency cost model.

This module substitutes for the paper's modified Barefoot driver.  The
*shape* of its cost model is what Figures 10-12 measure:

- every non-batched operation pays one PCIe round trip;
- software preparation cost drops by ~an order of magnitude for
  *memoized* operations (instruction buffers precomputed in the
  prologue -- the paper's "caching/memoization of device instructions");
- reads of consecutive entries of one register array are DMA-bursts:
  the first word is included in the base cost, each additional byte
  costs only tens of nanoseconds (Figure 10a's register-argument line);
- reads/updates of *distinct* objects each pay their own base cost
  (Figure 10a's field-argument line is linear in packed registers);
- batched operations share a single PCIe round trip.

The driver serializes all operations (the dialogue loop is
single-threaded; legacy clients queue behind at most one in-flight
Mantis operation -- Section 6).  With ``record_timeline=True`` every
operation's ``(start, end, channel)`` interval is logged so the
Figure 12 experiment can measure legacy-update interference.

Failure model: every operation runs through :meth:`Driver._execute`,
which admits the op past an optional fault injector (see
``repro.faults``) *before* touching ASIC state -- an injected failure
therefore never leaves a mutation behind, and the cost model and
device state cannot desync.  An optional :class:`RetryPolicy` retries
:class:`TransientDriverError` with exponential backoff in simulated
microseconds and converts exhausted budgets into
:class:`DriverTimeoutError`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import DriverError, DriverTimeoutError, TransientDriverError
from repro.switch.asic import SwitchAsic
from repro.switch.tables import KeyPart


@dataclass
class DriverCostModel:
    """Latency parameters, in microseconds of simulated time.

    Defaults are calibrated so that the end-to-end reaction times of
    the paper's use cases land in the reported "10s of us" range; see
    EXPERIMENTS.md for the calibration notes.
    """

    pcie_rtt_us: float = 0.9
    op_prep_us: float = 0.6
    memoized_prep_us: float = 0.08
    table_modify_us: float = 0.5
    table_add_us: float = 1.3
    table_delete_us: float = 0.6
    table_set_default_us: float = 0.5
    table_read_base_us: float = 0.5
    table_read_per_entry_us: float = 0.02
    register_read_base_us: float = 0.5
    register_read_per_byte_us: float = 0.012
    register_write_us: float = 0.4
    # Bulk/streamed writes (RBFRT-style): a whole heterogeneous batch
    # of table/register writes coalesces into one DMA-burst-priced
    # transaction -- one setup charge, then a small per-entry
    # increment, instead of a full device op per entry.
    bulk_setup_us: float = 1.5
    bulk_table_entry_us: float = 0.12
    bulk_register_entry_us: float = 0.03

    def bulk_write_cost(self, table_entries: int, register_writes: int = 0) -> float:
        """Device cost of one coalesced bulk-write transaction
        carrying ``table_entries`` table ops and ``register_writes``
        register writes (excluding PCIe/prep)."""
        return (
            self.bulk_setup_us
            + table_entries * self.bulk_table_entry_us
            + register_writes * self.bulk_register_entry_us
        )

    def register_read_cost(self, entries: int, width_bits: int) -> float:
        """Device cost of a burst read of ``entries`` consecutive
        entries of one array (excluding PCIe/prep)."""
        total_bytes = entries * ((width_bits + 7) // 8)
        extra_bytes = max(0, total_bytes - 4)
        return self.register_read_base_us + extra_bytes * self.register_read_per_byte_us

    def table_read_cost(self, entries: int) -> float:
        """Device cost of reading back ``entries`` installed entries."""
        return self.table_read_base_us + entries * self.table_read_per_entry_us


@dataclass
class RetryPolicy:
    """Retry semantics for transient control-channel failures.

    ``backoff_base_us * backoff_multiplier ** (attempt - 1)`` (capped
    at ``backoff_max_us``) of simulated time separates attempts; an op
    that would exceed ``deadline_us`` of total elapsed time, or that
    uses up ``max_attempts``, raises :class:`DriverTimeoutError`.
    """

    max_attempts: int = 4
    backoff_base_us: float = 2.0
    backoff_multiplier: float = 2.0
    backoff_max_us: float = 50.0
    deadline_us: Optional[float] = 400.0


@dataclass
class OpRecord:
    """One completed driver operation (for interference analysis).

    ``excl_start_us``/``excl_end_us`` bound the *device-exclusive*
    window -- the ASIC access itself.  Software preparation and the
    PCIe transfer are pipelined per requester and do not block a
    concurrent legacy client; only the device window serializes
    (Section 6's "queue behind at most one set of operations").
    """

    start_us: float
    end_us: float
    kind: str
    target: str
    channel: str
    excl_start_us: float = 0.0
    excl_end_us: float = 0.0
    #: Logical operations covered by this record (1 for normal ops,
    #: the batch size for one coalesced ``bulk_write`` transaction).
    ops: int = 1


@dataclass
class MemoHandle:
    """Prologue-precomputed instruction buffer for one device object.

    Operations issued with a memo skip most software preparation
    (``memoized_prep_us`` instead of ``op_prep_us``).
    """

    kind: str
    name: str


class Driver:
    """Single serialized access path to the switch ASIC."""

    def __init__(
        self,
        asic: SwitchAsic,
        model: Optional[DriverCostModel] = None,
        record_timeline: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        timeline_limit: Optional[int] = None,
    ):
        self.asic = asic
        self.clock = asic.clock
        self.model = model or DriverCostModel()
        self.record_timeline = record_timeline
        self.retry_policy = retry_policy
        # With a limit, the timeline is a bounded ring: million-op
        # benchmark runs keep only the most recent ``timeline_limit``
        # records instead of accumulating memory forever.  Without one
        # (the Fig. 12 path) it stays a plain unbounded list.
        self.timeline_limit = timeline_limit
        if timeline_limit is not None:
            if timeline_limit <= 0:
                raise DriverError(
                    f"timeline_limit must be positive, got {timeline_limit}"
                )
            self.timeline = deque(maxlen=timeline_limit)
        else:
            self.timeline: List[OpRecord] = []
        #: Total records ever produced (monotonic even when the ring
        #: has evicted old entries).
        self.timeline_total = 0
        self.ops_issued = 0
        #: Coalesced bulk-write transactions issued (each counts its
        #: batch size into ``ops_issued``).
        self.bulk_txns = 0
        # Ablation knob: when False, every operation pays the full
        # (unmemoized) software preparation cost.
        self.memoization_enabled = True
        self._batch_depth = 0
        self._batch_pcie_paid = False
        self._memos: Dict[Tuple[str, str], MemoHandle] = {}
        # Fault surface: an object with an ``intercept(kind, target,
        # channel, op_index, now)`` method (repro.faults.FaultInjector
        # installs itself here); ``post_op_hooks`` run after every
        # *successful* op (used by invariant checkers).
        self.fault_injector = None
        self.post_op_hooks: List[Callable[[str, str, str], None]] = []
        # Error accounting (surfaced through MantisAgent.health()).
        self.op_attempts = 0
        self.ops_failed = 0
        self.errors_total = 0
        self.retries_total = 0
        self.timeouts_total = 0
        self.op_errors: Dict[str, int] = {}
        self.op_retries: Dict[str, int] = {}
        self.last_error: Optional[str] = None
        self.last_error_us: float = 0.0

    # ---- memoization (prologue) -------------------------------------------

    def memoize(self, kind: str, name: str) -> MemoHandle:
        """Precompute the instruction buffer for one object.

        Costs one op's preparation time (paid in the prologue, where
        latency does not matter) and returns a reusable handle.
        """
        key = (kind, name)
        if key not in self._memos:
            self._check_target(kind, name)
            self.clock.advance(self.model.op_prep_us)
            self._memos[key] = MemoHandle(kind, name)
        return self._memos[key]

    def _check_target(self, kind: str, name: str) -> None:
        if kind == "table":
            self.asic.get_table(name)
        elif kind == "register":
            self.asic.get_register(name)
        elif kind == "counter":
            self.asic.get_counter(name)
        else:
            raise DriverError(f"unknown memo kind {kind!r}")

    # ---- batching -------------------------------------------------------------

    def batch(self) -> "_BatchContext":
        """Group subsequent operations into one PCIe transaction."""
        return _BatchContext(self)

    # ---- cost accounting -------------------------------------------------------

    def _record_error(self, kind: str, message: str) -> None:
        self.ops_failed += 1
        self.errors_total += 1
        self.op_errors[kind] = self.op_errors.get(kind, 0) + 1
        self.last_error = message
        self.last_error_us = self.clock.now

    def _record_op(self, record: OpRecord) -> None:
        self.timeline_total += 1
        if self.record_timeline:
            self.timeline.append(record)

    # ---- control-plane service hooks --------------------------------------
    #
    # The pipelined service (repro.ctrl) schedules device windows
    # itself, in simulated time, and funnels accounting back through
    # these helpers so ops_issued / timeline / fault and error counters
    # mean the same thing on both paths.

    def admit_fault(self, kind: str, target: str, channel: str):
        """Fault admission for one attempt (service async path)."""
        self.op_attempts += 1
        if self.fault_injector is None:
            return None
        return self.fault_injector.intercept(
            kind, target, channel, self.op_attempts, self.clock.now
        )

    def note_error(self, kind: str, message: str) -> None:
        self._record_error(kind, message)

    def note_retry(self, kind: str) -> None:
        self.retries_total += 1
        self.op_retries[kind] = self.op_retries.get(kind, 0) + 1

    def note_timeout(self) -> None:
        self.timeouts_total += 1

    def complete_op(
        self, kind: str, target: str, channel: str,
        record: OpRecord, op_count: int = 1,
    ) -> None:
        """Account one successfully applied op (service async path)."""
        self.ops_issued += op_count
        self._record_op(record)
        for hook in self.post_op_hooks:
            hook(kind, target, channel)

    def _execute(
        self,
        kind: str,
        target: str,
        device_cost: float,
        memo: Optional[MemoHandle],
        channel: str,
        apply: Optional[Callable[[], object]] = None,
        session=None,
        op_count: int = 1,
    ) -> object:
        """Run one operation: fault admission, then the ASIC mutation
        (``apply``), then cost accounting.

        The mutation runs strictly *after* the fault decision, so an
        injected failure can never leave device state behind, and
        strictly *before* the clock charge, so an ``apply`` that
        raises (e.g. a full table) costs nothing -- device state and
        the cost model stay in lockstep either way.
        """
        policy = self.retry_policy
        deadline = None
        if policy is not None and policy.deadline_us is not None:
            deadline = self.clock.now + policy.deadline_us
        attempt = 0
        while True:
            attempt += 1
            self.op_attempts += 1
            prep = (
                self.model.memoized_prep_us
                if memo is not None and self.memoization_enabled
                else self.model.op_prep_us
            )
            pcie = 0.0
            if session is not None:
                # Session-scoped batching: a concurrent client's op
                # must not be mispriced by another session's open
                # batch, so each session carries its own batch state.
                pcie = session.next_pcie_us()
            elif self._batch_depth == 0:
                pcie = self.model.pcie_rtt_us
            elif not self._batch_pcie_paid:
                pcie = self.model.pcie_rtt_us
                self._batch_pcie_paid = True
            fault = None
            if self.fault_injector is not None:
                fault = self.fault_injector.intercept(
                    kind, target, channel, self.op_attempts, self.clock.now
                )
            if fault is not None and fault.kind == "transient":
                # The round trip happened but the device rejected the
                # op: pay prep + PCIe, mutate nothing.
                self.clock.advance(prep + pcie)
                message = f"injected transient failure on {kind} {target!r}"
                self._record_error(kind, message)
                error = TransientDriverError(message)
                if policy is None:
                    raise error
                if attempt >= policy.max_attempts:
                    self.timeouts_total += 1
                    raise DriverTimeoutError(
                        f"{kind} {target!r} failed after {attempt} attempts"
                    ) from error
                backoff = min(
                    policy.backoff_base_us
                    * policy.backoff_multiplier ** (attempt - 1),
                    policy.backoff_max_us,
                )
                if deadline is not None and self.clock.now + backoff > deadline:
                    self.timeouts_total += 1
                    raise DriverTimeoutError(
                        f"{kind} {target!r} exceeded its "
                        f"{policy.deadline_us} us deadline"
                    ) from error
                self.clock.advance(backoff)
                self.retries_total += 1
                self.op_retries[kind] = self.op_retries.get(kind, 0) + 1
                continue
            start = self.clock.now
            result = None
            if fault is not None and fault.kind == "drop":
                # Silently lost write: cost is paid, success is
                # reported, nothing lands.  Restricted by the injector
                # to value writes (no result, safe to lose).
                pass
            elif apply is not None:
                result = apply()
            extra = (
                fault.extra_us
                if fault is not None and fault.kind == "latency"
                else 0.0
            )
            if session is not None:
                # Blocking session op: the shared channel may hold the
                # device for another client, so the exclusive window
                # starts at the later of prep-done and device-free.
                # Uncontended, this degenerates to exactly the
                # synchronous timing below (same total, same window,
                # bit-identical float arithmetic).
                sched = session.reserve(start, prep, device_cost, extra, pcie)
                excl_start = sched.excl_start_us
                excl_end = sched.excl_end_us
                self.clock.advance_to(sched.done_us)
            else:
                self.clock.advance(prep + device_cost + pcie + extra)
                excl_start = start + prep
                excl_end = start + prep + device_cost + extra
            if fault is not None and fault.kind == "corrupt":
                result = fault.corrupt(result)
            self.ops_issued += op_count
            self._record_op(
                OpRecord(
                    start, self.clock.now, kind, target, channel,
                    excl_start_us=excl_start,
                    excl_end_us=excl_end,
                    ops=op_count,
                )
            )
            for hook in self.post_op_hooks:
                hook(kind, target, channel)
            return result

    def prep_cost(
        self, memo_kind: str, name: str, memo: Optional[MemoHandle] = None
    ) -> float:
        """Software prep cost one op on ``name`` would pay right now
        (memoized if a handle exists) -- the service prices prep at
        submit time with this."""
        memo = self._use_memo(memo, memo_kind, name)
        if memo is not None and self.memoization_enabled:
            return self.model.memoized_prep_us
        return self.model.op_prep_us

    def _use_memo(
        self, memo: Optional[MemoHandle], kind: str, name: str
    ) -> Optional[MemoHandle]:
        if memo is None:
            return self._memos.get((kind, name))
        if memo.kind != kind or memo.name != name:
            raise DriverError(
                f"memo for {memo.kind}/{memo.name} used on {kind}/{name}"
            )
        return memo

    # ---- table operations ---------------------------------------------------------

    def add_entry(
        self,
        table: str,
        key: Sequence[KeyPart],
        action: str,
        args: Sequence[int] = (),
        priority: int = 0,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
        session=None,
    ) -> int:
        memo = self._use_memo(memo, "table", table)
        runtime = self.asic.get_table(table)
        return self._execute(
            "table_add", table, self.model.table_add_us, memo, channel,
            apply=lambda: runtime.add_entry(key, action, args, priority),
            session=session,
        )

    def modify_entry(
        self,
        table: str,
        entry_id: int,
        action: Optional[str] = None,
        args: Optional[Sequence[int]] = None,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
        session=None,
    ) -> None:
        memo = self._use_memo(memo, "table", table)
        runtime = self.asic.get_table(table)
        self._execute(
            "table_modify", table, self.model.table_modify_us, memo, channel,
            apply=lambda: runtime.modify_entry(entry_id, action, args),
            session=session,
        )

    def delete_entry(
        self,
        table: str,
        entry_id: int,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
        session=None,
    ) -> None:
        memo = self._use_memo(memo, "table", table)
        runtime = self.asic.get_table(table)
        self._execute(
            "table_delete", table, self.model.table_delete_us, memo, channel,
            apply=lambda: runtime.delete_entry(entry_id),
            session=session,
        )

    def set_default(
        self,
        table: str,
        action: str,
        args: Sequence[int] = (),
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
        session=None,
    ) -> None:
        memo = self._use_memo(memo, "table", table)
        runtime = self.asic.get_table(table)
        self._execute(
            "table_set_default", table, self.model.table_set_default_us,
            memo, channel,
            apply=lambda: runtime.set_default(action, args),
            session=session,
        )

    # ---- table read-back (crash recovery / commit verification) ------------

    def read_entries(
        self,
        table: str,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
        session=None,
    ) -> List[Tuple[int, Tuple[KeyPart, ...], str, List[int], int]]:
        """Read back every installed entry of one table as
        ``(entry_id, key, action, args, priority)`` tuples."""
        memo = self._use_memo(memo, "table", table)
        runtime = self.asic.get_table(table)

        def apply():
            return [
                (
                    entry.entry_id,
                    tuple(entry.key),
                    entry.action_name,
                    list(entry.action_args),
                    entry.priority,
                )
                for entry in runtime.entries.values()
            ]

        device_cost = self.model.table_read_cost(len(runtime.entries))
        return self._execute(
            "table_read", table, device_cost, memo, channel, apply=apply,
            session=session,
        )

    def read_entry(
        self,
        table: str,
        entry_id: int,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
        session=None,
    ) -> Optional[Tuple[int, Tuple[KeyPart, ...], str, List[int], int]]:
        """Read back one installed entry by id (or None if absent).

        The dirty-diff commit path verifies only the entries it wrote;
        this costs a single-entry read instead of a whole-table dump.
        """
        memo = self._use_memo(memo, "table", table)
        runtime = self.asic.get_table(table)

        def apply():
            entry = runtime.entries.get(entry_id)
            if entry is None:
                return None
            return (
                entry.entry_id,
                tuple(entry.key),
                entry.action_name,
                list(entry.action_args),
                entry.priority,
            )

        return self._execute(
            "table_read", table, self.model.table_read_cost(1), memo, channel,
            apply=apply, session=session,
        )

    def read_default(
        self,
        table: str,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
        session=None,
    ) -> Optional[Tuple[str, List[int]]]:
        """Read back a table's default action as ``(action, args)``."""
        memo = self._use_memo(memo, "table", table)
        runtime = self.asic.get_table(table)

        def apply():
            default = runtime.default_action
            return None if default is None else (default[0], list(default[1]))

        return self._execute(
            "table_read", table, self.model.table_read_cost(0), memo, channel,
            apply=apply, session=session,
        )

    # ---- register operations ----------------------------------------------------------

    def read_registers(
        self,
        name: str,
        lo: int = 0,
        hi: Optional[int] = None,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
        session=None,
    ) -> List[int]:
        """Burst-read entries ``lo..hi`` (inclusive) of one array."""
        memo = self._use_memo(memo, "register", name)
        register = self.asic.get_register(name)
        if hi is None:
            hi = register.instance_count - 1
        device_cost = self.model.register_read_cost(hi - lo + 1, register.width)
        return self._execute(
            "register_read", name, device_cost, memo, channel,
            apply=lambda: register.read_range(lo, hi),
            session=session,
        )

    def write_register(
        self,
        name: str,
        index: int,
        value: int,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
        session=None,
    ) -> None:
        memo = self._use_memo(memo, "register", name)
        register = self.asic.get_register(name)
        self._execute(
            "register_write", name, self.model.register_write_us, memo, channel,
            apply=lambda: register.write(index, value),
            session=session,
        )

    def read_counter(
        self,
        name: str,
        index: int,
        memo: Optional[MemoHandle] = None,
        channel: str = "mantis",
        session=None,
    ) -> int:
        memo = self._use_memo(memo, "counter", name)
        counter = self.asic.get_counter(name)
        return self._execute(
            "counter_read",
            name,
            self.model.register_read_cost(1, 64),
            memo,
            channel,
            apply=lambda: counter.array.read(index),
            session=session,
        )


    # ---- bulk/streamed writes ---------------------------------------------

    def write_batch(
        self,
        ops: Sequence[Tuple],
        channel: str = "mantis",
        session=None,
    ) -> List[object]:
        """Apply a heterogeneous batch of writes as ONE coalesced
        DMA-burst transaction (RBFRT-style bulk insert).

        ``ops`` is a sequence of tuples:

        - ``("add", table, key, action, args[, priority])``
        - ``("modify", table, entry_id, action, args)``
        - ``("delete", table, entry_id)``
        - ``("set_default", table, action, args)``
        - ``("write_register", name, index, value)``

        The whole batch pays one software prep, one PCIe round trip and
        one bulk-priced device window (`DriverCostModel.bulk_write_cost`),
        occupies a single device-exclusive slot in the timeline, and
        counts ``len(ops)`` into ``ops_issued`` so op-count parity with
        per-entry execution holds.  Fault admission happens once per
        transaction: a transient failure rejects (and retries) the
        batch *as a whole* before any mutation lands -- bulk writes are
        all-or-nothing, never partially applied.

        Returns the per-op results in order (entry ids for adds, else
        ``None``).
        """
        ops = list(ops)
        if not ops:
            return []
        applies: List[Callable[[], object]] = []
        table_entries = 0
        register_writes = 0
        for op in ops:
            verb = op[0]
            if verb == "add":
                _, table, key, action, args = op[:5]
                priority = op[5] if len(op) > 5 else 0
                runtime = self.asic.get_table(table)
                applies.append(
                    lambda r=runtime, k=key, a=action, g=args, p=priority:
                        r.add_entry(k, a, g, p)
                )
                table_entries += 1
            elif verb == "modify":
                _, table, entry_id, action, args = op
                runtime = self.asic.get_table(table)
                applies.append(
                    lambda r=runtime, e=entry_id, a=action, g=args:
                        r.modify_entry(e, a, g)
                )
                table_entries += 1
            elif verb == "delete":
                _, table, entry_id = op
                runtime = self.asic.get_table(table)
                applies.append(
                    lambda r=runtime, e=entry_id: r.delete_entry(e)
                )
                table_entries += 1
            elif verb == "set_default":
                _, table, action, args = op
                runtime = self.asic.get_table(table)
                applies.append(
                    lambda r=runtime, a=action, g=args: r.set_default(a, g)
                )
                table_entries += 1
            elif verb == "write_register":
                _, name, index, value = op
                register = self.asic.get_register(name)
                applies.append(
                    lambda r=register, i=index, v=value: r.write(i, v)
                )
                register_writes += 1
            else:
                raise DriverError(f"unknown bulk op verb {verb!r}")
        device_cost = self.model.bulk_write_cost(table_entries, register_writes)
        result = self._execute(
            "bulk_write",
            f"bulk[{len(ops)}]",
            device_cost,
            None,
            channel,
            apply=lambda: [fn() for fn in applies],
            session=session,
            op_count=len(ops),
        )
        self.bulk_txns += 1
        return result


class _BatchContext:
    """Context manager implementing request batching."""

    def __init__(self, driver: Driver):
        self.driver = driver

    def __enter__(self) -> Driver:
        if self.driver._batch_depth == 0:
            self.driver._batch_pcie_paid = False
        self.driver._batch_depth += 1
        return self.driver

    def __exit__(self, *exc_info) -> None:
        self.driver._batch_depth -= 1
        if self.driver._batch_depth == 0:
            self.driver._batch_pcie_paid = False
