"""The network simulator: switch + ports + links + hosts.

One :class:`NetworkSim` owns the event queue and wires it to a
:class:`~repro.system.MantisSystem` switch.  Per-port output queues
have finite capacity and a service rate derived from the port's link
bandwidth; their instantaneous depth is exported to the ASIC so that
``standard_metadata.deq_qdepth`` (the signal several use cases poll)
is live.

Concurrency model: the Mantis agent busy-loops on the shared clock;
every clock advance drains due packet events, so data-plane activity
interleaves with control-plane driver operations exactly as on a real
switch (the ASIC never blocks on the CPU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.net.events import EventQueue
from repro.switch.packet import Packet
from repro.system import MantisSystem


@dataclass
class PortConfig:
    """Link parameters of one switch port."""

    bandwidth_gbps: float = 25.0
    latency_us: float = 1.0
    queue_capacity_pkts: int = 256

    def serialization_us(self, size_bytes: int) -> float:
        return size_bytes * 8 / (self.bandwidth_gbps * 1000.0)


@dataclass
class _PortState:
    config: PortConfig
    busy_until: float = 0.0
    queued: int = 0
    up: bool = True
    tx_packets: int = 0
    tx_bytes: int = 0
    dropped: int = 0


class NetworkSim:
    """Hosts and links around one emulated Mantis switch."""

    def __init__(
        self,
        system: MantisSystem,
        default_port: Optional[PortConfig] = None,
    ):
        self.system = system
        self.clock = system.clock
        # Bound once: _ingress runs per delivered packet, and the
        # attribute chain through system.asic would be re-walked on the
        # simulator's hottest edge.  The ASIC's compiled pipeline is
        # likewise built once at load, so the whole per-packet path is
        # allocation- and lookup-free.
        self._process = system.asic.process
        self.events = EventQueue()
        self.clock.add_listener(self._on_clock)
        self.default_port = default_port or PortConfig()
        self.ports: Dict[int, _PortState] = {}
        self.hosts: Dict[int, "HostLike"] = {}
        self.switch_drops = 0
        self.delivered = 0

    # ---- wiring ----------------------------------------------------------

    def configure_port(self, port: int, config: PortConfig) -> None:
        self.ports[port] = _PortState(config)

    def _port(self, port: int) -> _PortState:
        if port not in self.ports:
            self.ports[port] = _PortState(self.default_port)
        return self.ports[port]

    def attach_host(self, host: "HostLike", port: int) -> None:
        if port in self.hosts:
            raise SimulationError(f"port {port} already has a host")
        self.hosts[port] = host
        host.bind(self, port)

    def set_link_up(self, port: int, up: bool) -> None:
        """Fault injection: disable/enable a port's link (the
        Figure 16 experiment's 'switch API that disables ports')."""
        self._port(port).up = up

    # ---- packet path -------------------------------------------------------

    def send_to_switch(
        self, packet: Packet, ingress_port: int, delay_us: float = 0.0
    ) -> None:
        """A host puts a packet on the wire toward the switch."""
        port = self._port(ingress_port)
        if not port.up:
            return  # link down: the packet never arrives
        arrival = (
            self.clock.now
            + delay_us
            + port.config.latency_us
            + port.config.serialization_us(packet.size_bytes)
        )
        packet.fields["standard_metadata.ingress_port"] = ingress_port
        self.events.schedule(arrival, lambda now, p=packet: self._ingress(p, now))

    def _ingress(self, packet: Packet, now: float) -> None:
        result = self._process(packet)
        if result is None:
            self.switch_drops += 1
            return
        egress_port, packet = result
        self._enqueue(egress_port, packet, now)

    def _enqueue(self, egress_port: int, packet: Packet, now: float) -> None:
        port = self._port(egress_port)
        if not port.up:
            port.dropped += 1
            return
        if port.queued >= port.config.queue_capacity_pkts:
            port.dropped += 1
            return
        serialization = port.config.serialization_us(packet.size_bytes)
        depart = max(now, port.busy_until) + serialization
        port.busy_until = depart
        port.queued += 1
        self._sync_depth(egress_port)
        arrival = depart + port.config.latency_us
        self.events.schedule(
            depart, lambda _t, p=egress_port: self._departed(p)
        )
        self.events.schedule(
            arrival, lambda now2, p=packet, port_=egress_port: self._deliver(
                port_, p, now2
            )
        )
        port.tx_packets += 1
        port.tx_bytes += packet.size_bytes

    def _departed(self, port_index: int) -> None:
        port = self._port(port_index)
        port.queued -= 1
        self._sync_depth(port_index)

    def _sync_depth(self, port_index: int) -> None:
        """Expose the queue depth to the ASIC's standard_metadata."""
        asic_ports = self.system.asic.ports
        if port_index < len(asic_ports):
            asic_ports[port_index].queue_depth = self._port(port_index).queued

    def _deliver(self, port_index: int, packet: Packet, now: float) -> None:
        self.delivered += 1
        host = self.hosts.get(port_index)
        if host is not None:
            host.receive(packet, now)

    # ---- time ------------------------------------------------------------------

    def _on_clock(self, now: float) -> None:
        self.events.drain(now)

    def run_until(self, time_us: float, agent: bool = True) -> None:
        """Advance the simulation to ``time_us``.

        With ``agent=True`` the Mantis agent busy-loops (each dialogue
        iteration advances the clock, draining packet events as it
        goes).  With ``agent=False`` only packet events run -- the
        baseline "no reactive control plane" configuration.
        """
        if agent:
            self.system.agent.run_until(time_us)
            # The agent may stop short if iterations are long; finish
            # the tail with pure event processing.
        while self.clock.now < time_us:
            self.events.drain(self.clock.now)
            next_time = self.events.peek_time()
            if next_time is None or next_time > time_us:
                self.clock.advance_to(time_us)
                break
            self.clock.advance_to(max(next_time, self.clock.now))
        self.events.drain(self.clock.now)

    def queue_depth(self, port: int) -> int:
        return self._port(port).queued

    def port_stats(self, port: int) -> _PortState:
        return self._port(port)


class HostLike:
    """Interface for simulation endpoints (see :mod:`repro.net.hosts`)."""

    def bind(self, sim: NetworkSim, port: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def receive(self, packet: Packet, now: float) -> None:  # pragma: no cover
        raise NotImplementedError
