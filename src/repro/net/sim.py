"""The network simulator facade: an N-switch fabric on one timeline.

One :class:`NetworkSim` is a *fabric*: it owns a
:class:`~repro.runtime.Scheduler` (shared clock + event queue) and any
number of :class:`~repro.net.fabric.FabricSwitch` instances, each
wrapping one :class:`~repro.system.MantisSystem`.  Switches are wired
to hosts (:meth:`FabricSwitch.attach_host`) and to each other
(:meth:`NetworkSim.connect`), with per-link serialization and
propagation taken from the egress port's
:class:`~repro.net.fabric.PortConfig`.  The single-switch form --
``NetworkSim(system)`` -- is a thin shim that creates a one-switch
fabric and forwards the legacy port/host API to it.

The per-switch mechanics (port queues, lazy accounting, peer handoff,
link faults, the vectorized burst tail) live in
:mod:`repro.net.fabric`; this module composes them and keeps the
historical import surface (``from repro.net.sim import NetworkSim,
PortConfig, Link, LinkFaultModel, ...`` all still work).

Fabric cost scales with *active events*, not fabric size: link
endpoints are indexed by ``(switch, port)``, per-port queue accounting
is lazy (see :mod:`repro.net.fabric`), and the scheduler's actor
bookkeeping is dict-indexed with batched equal-timestamp wakeups --
enqueue/deliver/drain are O(1) per event whether the fabric has 2
switches or 200.

Concurrency model: every Mantis agent is a scheduled actor on the
fabric's shared timeline (see :mod:`repro.runtime.scheduler`); each
dialogue iteration advances the clock by its own cost and reschedules
the actor at the resulting instant, so with one switch the agent
busy-loops exactly as the paper's per-component thread does, and with
N switches the N agents interleave by timestamp.  Every clock advance
drains due packet events, so data-plane activity interleaves with
control-plane driver operations exactly as on a real switch (the ASIC
never blocks on the CPU).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SimulationError
from repro.net.fabric import (  # noqa: F401  (re-exported surface)
    FabricSwitch,
    HostLike,
    Link,
    LinkFaultModel,
    PortConfig,
    _BurstTM,
    _PortState,
    _burst_vec_ok,
    _prim_touches,
)
from repro.runtime import Scheduler
from repro.switch.clock import SimClock
from repro.system import MantisSystem

__all__ = [
    "FabricSwitch",
    "HostLike",
    "Link",
    "LinkFaultModel",
    "NetworkSim",
    "PortConfig",
]


class NetworkSim:
    """A fabric of emulated Mantis switches on one shared timeline.

    Two construction styles:

    - **legacy single-switch shim**: ``NetworkSim(system)`` creates a
      one-switch fabric named ``"s0"`` and forwards the historical
      port/host API (``attach_host``, ``configure_port``,
      ``send_to_switch``, ``queue_depth``, ...) to it -- existing
      scenarios run unchanged;
    - **fabric**: ``NetworkSim(clock=shared_clock)`` then
      :meth:`add_switch` per :class:`MantisSystem` (each built on the
      same clock) and :meth:`connect` for inter-switch cables.

    ``run_until`` drives everything -- packet events *and* every
    switch's agent -- through the one :class:`Scheduler`, so one code
    path covers 1 switch, N pipelines, or an N-switch topology.
    """

    def __init__(
        self,
        system: Optional[MantisSystem] = None,
        default_port: Optional[PortConfig] = None,
        clock: Optional[SimClock] = None,
        scheduler: Optional[Scheduler] = None,
    ):
        if scheduler is not None:
            self.scheduler = scheduler
        else:
            if clock is None and system is not None:
                clock = system.clock
            self.scheduler = Scheduler(clock=clock)
        self.default_port = default_port or PortConfig()
        self.switches: Dict[str, FabricSwitch] = {}
        self._switch_order: List[FabricSwitch] = []
        self.links: List[Link] = []
        # (switch name, port) -> Link: O(1) endpoint lookup for
        # routing installers and utilization reports, independent of
        # how many cables the fabric carries.
        self._link_index: Dict[Tuple[str, int], Link] = {}
        if system is not None:
            self.add_switch(system, name="s0", default_port=default_port)

    # ---- fabric construction --------------------------------------------

    @property
    def clock(self) -> SimClock:
        return self.scheduler.clock

    @property
    def events(self):
        return self.scheduler.events

    def add_switch(
        self,
        system: MantisSystem,
        name: Optional[str] = None,
        default_port: Optional[PortConfig] = None,
    ) -> FabricSwitch:
        """Add one switch to the fabric.

        The system must share the fabric's clock -- cross-switch
        orderings are only well-defined on one timeline."""
        if system.clock is not self.scheduler.clock:
            raise SimulationError(
                "switch must share the fabric clock: build the "
                "MantisSystem with clock=fabric.clock"
            )
        if name is None:
            name = f"s{len(self.switches)}"
        if name in self.switches:
            raise SimulationError(f"duplicate switch name {name!r}")
        switch = FabricSwitch(
            self, name, system, default_port=default_port or self.default_port
        )
        self.switches[name] = switch
        self._switch_order.append(switch)
        return switch

    def switch(self, name: str) -> FabricSwitch:
        if name not in self.switches:
            raise SimulationError(f"no switch named {name!r}")
        return self.switches[name]

    def _resolve(self, switch: Union[str, FabricSwitch]) -> FabricSwitch:
        if isinstance(switch, FabricSwitch):
            if switch.fabric is not self:
                raise SimulationError(
                    f"switch {switch.name!r} belongs to another fabric"
                )
            return switch
        return self.switch(switch)

    def connect(
        self,
        switch_a: Union[str, FabricSwitch],
        port_a: int,
        switch_b: Union[str, FabricSwitch],
        port_b: int,
    ) -> Link:
        """Cable two switch ports together.

        Each direction uses the egress side's :class:`PortConfig` for
        serialization and propagation, exactly as a host link does."""
        a = self._resolve(switch_a)
        b = self._resolve(switch_b)
        if a is b and port_a == port_b:
            raise SimulationError("cannot cable a port to itself")
        link = Link(a, port_a, b, port_b)
        a._add_peer(port_a, b, port_b, link)
        b._add_peer(port_b, a, port_a, link)
        self.links.append(link)
        self._link_index[(a.name, port_a)] = link
        self._link_index[(b.name, port_b)] = link
        return link

    def link_at(
        self, switch: Union[str, FabricSwitch], port: int
    ) -> Optional[Link]:
        """The cable plugged into ``(switch, port)``, if any --
        indexed, O(1)."""
        return self._link_index.get((self._resolve(switch).name, port))

    def set_link_state(self, link: Link, up: bool) -> None:
        """Kill or revive a whole cable (both directions)."""
        link.up = up

    def fail_link_at(self, link: Link, time_us: float) -> None:
        """Schedule a cable cut on the shared timeline."""
        self.scheduler.at(
            time_us, lambda _now: self.set_link_state(link, False)
        )

    def restore_link_at(self, link: Link, time_us: float) -> None:
        """Schedule a cable repair -- with :meth:`fail_link_at` this
        models flap/repair timelines, not just permanent kills."""
        self.scheduler.at(
            time_us, lambda _now: self.set_link_state(link, True)
        )

    def install_link_fault(
        self,
        link: Link,
        model: LinkFaultModel,
        at_us: Optional[float] = None,
        until_us: Optional[float] = None,
    ) -> LinkFaultModel:
        """Attach a :class:`LinkFaultModel` to a cable, optionally
        scheduling its on/off window through the event queue (``at_us``
        arms it, ``until_us`` disarms; either may be ``None``)."""
        link.fault_models.append(model)
        if at_us is not None:
            model.active = False
            self.scheduler.at(at_us, lambda _now: model.set_active(True))
        if until_us is not None:
            self.scheduler.at(until_us, lambda _now: model.set_active(False))
        return model

    # ---- accounting -------------------------------------------------------

    def drop_totals(self) -> Dict[str, int]:
        """Fabric-wide conservation ledger.  After the fabric quiesces,
        every packet a host put on a wire is in exactly one bucket::

            sent == delivered + switch_drops + egress_dropped
                    + rx_dropped + port_fault_dropped + link_fault_dropped

        (corruption does not consume packets -- corrupted packets keep
        flowing and land in one of the buckets above)."""
        totals = {
            "delivered": 0,
            "forwarded": 0,
            "switch_drops": 0,
            "egress_dropped": 0,
            "rx_dropped": 0,
            "port_fault_dropped": 0,
            "port_fault_corrupted": 0,
            "link_fault_dropped": 0,
            "link_fault_corrupted": 0,
        }
        for switch in self._switch_order:
            totals["delivered"] += switch.delivered
            totals["forwarded"] += switch.forwarded
            totals["switch_drops"] += switch.switch_drops
            for port in switch.ports.values():
                totals["egress_dropped"] += port.dropped
                totals["rx_dropped"] += port.rx_dropped
                if port.fault is not None:
                    totals["port_fault_dropped"] += port.fault.dropped
                    totals["port_fault_corrupted"] += port.fault.corrupted
        for link in self.links:
            totals["link_fault_dropped"] += link.fault_dropped
            totals["link_fault_corrupted"] += link.fault_corrupted
        return totals

    def switch_summaries(self) -> Dict[str, Dict[str, int]]:
        """Per-switch packet/event counts (``run-fabric``-style JSON):
        fleet runs stay debuggable without rerunning."""
        return {
            switch.name: switch.packet_stats()
            for switch in self._switch_order
        }

    def link_utilizations(self, duration_us: float) -> Dict[str, float]:
        """Per-direction utilization of every inter-switch link over a
        run of ``duration_us``: bits sent through each endpoint's
        egress port divided by that port's line rate."""
        utilizations: Dict[str, float] = {}
        for link in self.links:
            for switch, port in link.endpoints():
                state = switch._port(port)
                capacity_bits = state.rate_bits_per_us * duration_us
                utilizations[f"{switch.name}:{port}"] = (
                    state.tx_bytes * 8 / capacity_bits
                    if capacity_bits > 0 else 0.0
                )
        return utilizations

    def link_fault_summary(self) -> List[Dict[str, object]]:
        """Per-link state for ``run-fabric``-style JSON summaries."""
        return [
            {
                "name": link.name,
                "up": link.up,
                "fault_dropped": link.fault_dropped,
                "fault_corrupted": link.fault_corrupted,
            }
            for link in self.links
        ]

    # ---- time ------------------------------------------------------------

    def run_until(self, time_us: float, agent: bool = True) -> None:
        """Advance the fabric to ``time_us``.

        With ``agent=True`` every switch's Mantis agent runs as a
        scheduled actor: armed at the current instant (in switch
        insertion order), each dialogue iteration advances the clock
        by its own cost and reschedules the actor, draining packet
        events as it goes.  With ``agent=False`` only packet events
        run -- the baseline "no reactive control plane" configuration.
        """
        if agent:
            for switch in self._switch_order:
                self.scheduler.arm(switch.agent_actor)
        self.scheduler.run_until(time_us, actors=agent)

    # ---- legacy single-switch API ----------------------------------------

    @property
    def _default_switch(self) -> FabricSwitch:
        if not self._switch_order:
            raise SimulationError(
                "fabric has no switches yet; call add_switch() first"
            )
        return self._switch_order[0]

    @property
    def system(self) -> MantisSystem:
        return self._default_switch.system

    @property
    def ports(self) -> Dict[int, _PortState]:
        return self._default_switch.ports

    @property
    def hosts(self) -> Dict[int, "HostLike"]:
        return self._default_switch.hosts

    @property
    def switch_drops(self) -> int:
        return self._default_switch.switch_drops

    @property
    def delivered(self) -> int:
        return self._default_switch.delivered

    def configure_port(self, port: int, config: PortConfig) -> None:
        self._default_switch.configure_port(port, config)

    def attach_host(self, host: "HostLike", port: int) -> None:
        self._default_switch.attach_host(host, port)

    def set_link_up(self, port: int, up: bool) -> None:
        self._default_switch.set_link_up(port, up)

    def send_to_switch(
        self, packet: Packet, ingress_port: int, delay_us: float = 0.0
    ) -> None:
        self._default_switch.send_to_switch(packet, ingress_port, delay_us)

    def send_burst_to_switch(
        self,
        packets: Sequence[Packet],
        ingress_port: int,
        spacing_us: float = 0.0,
        delay_us: float = 0.0,
    ) -> None:
        self._default_switch.send_burst_to_switch(
            packets, ingress_port, spacing_us=spacing_us, delay_us=delay_us
        )

    def queue_depth(self, port: int) -> int:
        return self._default_switch.queue_depth(port)

    def port_stats(self, port: int) -> _PortState:
        return self._default_switch.port_stats(port)
