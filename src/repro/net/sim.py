"""The network simulator: switch + ports + links + hosts.

One :class:`NetworkSim` owns the event queue and wires it to a
:class:`~repro.system.MantisSystem` switch.  Per-port output queues
have finite capacity and a service rate derived from the port's link
bandwidth; their instantaneous depth is exported to the ASIC so that
``standard_metadata.deq_qdepth`` (the signal several use cases poll)
is live.

Queue accounting is *pull-based*: instead of scheduling one event per
packet departure, each port keeps a monotone deque of departure times
and drains the due prefix whenever a depth is read or a packet is
enqueued.  The ASIC reads depths through ``asic.queue_model``, so
``deq_qdepth`` reflects departures up to the exact (possibly
mid-burst) timestamp of the packet being processed.

Concurrency model: the Mantis agent busy-loops on the shared clock;
every clock advance drains due packet events, so data-plane activity
interleaves with control-plane driver operations exactly as on a real
switch (the ASIC never blocks on the CPU).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set

from repro.errors import SimulationError
from repro.net.events import EventQueue
from repro.switch.packet import Packet
from repro.system import MantisSystem


@dataclass
class PortConfig:
    """Link parameters of one switch port."""

    bandwidth_gbps: float = 25.0
    latency_us: float = 1.0
    queue_capacity_pkts: int = 256

    def serialization_us(self, size_bytes: int) -> float:
        return size_bytes * 8 / (self.bandwidth_gbps * 1000.0)


@dataclass
class _PortState:
    config: PortConfig
    busy_until: float = 0.0
    queued: int = 0
    up: bool = True
    tx_packets: int = 0
    tx_bytes: int = 0
    dropped: int = 0
    # bits-per-us denominator, precomputed once: serialization on the
    # per-packet path is then ``size * 8 / rate_bits_per_us`` -- the
    # same float operations (hence bit-identical results) as
    # PortConfig.serialization_us, without re-deriving the rate from
    # bandwidth_gbps on every send.
    rate_bits_per_us: float = 0.0
    # Pending departure times, monotonically non-decreasing (each
    # departure is max(now, busy_until) + serialization).  Drained
    # lazily by _drain_port instead of one scheduled event per packet.
    departs: Deque[float] = field(default_factory=deque)

    def __post_init__(self) -> None:
        self.rate_bits_per_us = self.config.bandwidth_gbps * 1000.0


class NetworkSim:
    """Hosts and links around one emulated Mantis switch."""

    def __init__(
        self,
        system: MantisSystem,
        default_port: Optional[PortConfig] = None,
    ):
        self.system = system
        self.clock = system.clock
        # Bound once: _ingress runs per delivered packet, and the
        # attribute chain through system.asic would be re-walked on the
        # simulator's hottest edge.  The ASIC's compiled pipeline is
        # likewise built once at load, so the whole per-packet path is
        # allocation- and lookup-free.
        self._process = system.asic.process
        self._process_batch = system.asic.process_batch
        self.events = EventQueue()
        self.clock.add_listener(self._on_clock)
        self.default_port = default_port or PortConfig()
        self.ports: Dict[int, _PortState] = {}
        self.hosts: Dict[int, "HostLike"] = {}
        self.switch_drops = 0
        self.delivered = 0
        # Ports with pending lazy departures; lets depth reads for
        # port A skip draining B's deque.
        self._departing: Set[int] = set()
        # The ASIC pulls live depths (lazy-drained to the exact packet
        # timestamp) instead of relying on pushed snapshots.
        system.asic.queue_model = self._queue_depth_at

    # ---- wiring ----------------------------------------------------------

    def configure_port(self, port: int, config: PortConfig) -> None:
        self.ports[port] = _PortState(config)

    def _port(self, port: int) -> _PortState:
        if port not in self.ports:
            self.ports[port] = _PortState(self.default_port)
        return self.ports[port]

    def attach_host(self, host: "HostLike", port: int) -> None:
        if port in self.hosts:
            raise SimulationError(f"port {port} already has a host")
        self.hosts[port] = host
        host.bind(self, port)

    def set_link_up(self, port: int, up: bool) -> None:
        """Fault injection: disable/enable a port's link (the
        Figure 16 experiment's 'switch API that disables ports')."""
        self._port(port).up = up

    # ---- queue accounting -------------------------------------------------

    def _drain_port(self, port_index: int, port: _PortState, now: float) -> None:
        """Retire departures due at or before ``now`` and republish the
        depth to the ASIC's port snapshot (kept for callers that read
        ``asic.ports[i].queue_depth`` directly)."""
        departs = port.departs
        while departs and departs[0] <= now:
            departs.popleft()
            port.queued -= 1
        if not departs:
            self._departing.discard(port_index)
        asic_ports = self.system.asic.ports
        if port_index < len(asic_ports):
            asic_ports[port_index].queue_depth = port.queued

    def _queue_depth_at(self, port_index: int, now: float) -> int:
        """``asic.queue_model``: the live depth of one port at ``now``."""
        port = self._port(port_index)
        if port.departs:
            self._drain_port(port_index, port, now)
        return port.queued

    # ---- packet path -------------------------------------------------------

    def send_to_switch(
        self, packet: Packet, ingress_port: int, delay_us: float = 0.0
    ) -> None:
        """A host puts a packet on the wire toward the switch."""
        port = self._port(ingress_port)
        if not port.up:
            return  # link down: the packet never arrives
        arrival = (
            self.clock.now
            + delay_us
            + port.config.latency_us
            + packet.size_bytes * 8 / port.rate_bits_per_us
        )
        packet.fields["standard_metadata.ingress_port"] = ingress_port
        self.events.schedule(arrival, lambda now, p=packet: self._ingress(p, now))

    def send_burst_to_switch(
        self,
        packets: Sequence[Packet],
        ingress_port: int,
        spacing_us: float = 0.0,
        delay_us: float = 0.0,
    ) -> None:
        """A host puts a burst on the wire as ONE event.

        Send times step by ``spacing_us`` (repeated addition, matching
        the per-packet accumulation a scalar sender would do); each
        packet's arrival adds the link latency and its own
        serialization.  The whole burst runs through
        :meth:`SwitchAsic.process_batch` when the first packet's
        arrival is due, with per-packet notional timestamps, so
        timestamps, queue depths, and drop decisions are identical to
        sending the packets individually.  The coalescing trade-off:
        foreign events with timestamps inside the burst window run
        after the burst instead of interleaved with it.
        """
        if not packets:
            return
        port = self._port(ingress_port)
        if not port.up:
            return
        latency = port.config.latency_us
        rate = port.rate_bits_per_us
        times: List[float] = []
        send = self.clock.now + delay_us
        for packet in packets:
            packet.fields["standard_metadata.ingress_port"] = ingress_port
            times.append(send + latency + packet.size_bytes * 8 / rate)
            send += spacing_us
        batch = list(packets)
        self.events.schedule(
            times[0],
            lambda _now, b=batch, t=times: self._ingress_burst(b, t),
        )

    def _ingress(self, packet: Packet, now: float) -> None:
        result = self._process(packet)
        if result is None:
            self.switch_drops += 1
            return
        egress_port, packet = result
        self._enqueue(egress_port, packet, now)

    def _ingress_burst(self, packets: List[Packet], times: List[float]) -> None:
        def sink(index: int, result) -> None:
            if result is None:
                self.switch_drops += 1
                return
            egress_port, packet = result
            self._enqueue(egress_port, packet, times[index])

        self._process_batch(packets, times=times, sink=sink)

    def _enqueue(self, egress_port: int, packet: Packet, now: float) -> None:
        port = self._port(egress_port)
        if not port.up:
            port.dropped += 1
            return
        if port.departs:
            self._drain_port(egress_port, port, now)
        if port.queued >= port.config.queue_capacity_pkts:
            port.dropped += 1
            return
        serialization = packet.size_bytes * 8 / port.rate_bits_per_us
        depart = max(now, port.busy_until) + serialization
        port.busy_until = depart
        port.queued += 1
        port.departs.append(depart)
        self._departing.add(egress_port)
        asic_ports = self.system.asic.ports
        if egress_port < len(asic_ports):
            asic_ports[egress_port].queue_depth = port.queued
        arrival = depart + port.config.latency_us
        self.events.schedule(
            arrival, lambda now2, p=packet, port_=egress_port: self._deliver(
                port_, p, now2
            )
        )
        port.tx_packets += 1
        port.tx_bytes += packet.size_bytes

    def _deliver(self, port_index: int, packet: Packet, now: float) -> None:
        self.delivered += 1
        host = self.hosts.get(port_index)
        if host is not None:
            host.receive(packet, now)

    # ---- time ------------------------------------------------------------------

    def _on_clock(self, now: float) -> None:
        self.events.drain(now)

    def run_until(self, time_us: float, agent: bool = True) -> None:
        """Advance the simulation to ``time_us``.

        With ``agent=True`` the Mantis agent busy-loops (each dialogue
        iteration advances the clock, draining packet events as it
        goes).  With ``agent=False`` only packet events run -- the
        baseline "no reactive control plane" configuration.
        """
        if agent:
            self.system.agent.run_until(time_us)
            # The agent may stop short if iterations are long; finish
            # the tail with pure event processing.
        while self.clock.now < time_us:
            self.events.drain(self.clock.now)
            next_time = self.events.peek_time()
            if next_time is None or next_time > time_us:
                self.clock.advance_to(time_us)
                break
            self.clock.advance_to(max(next_time, self.clock.now))
        self.events.drain(self.clock.now)

    def queue_depth(self, port: int) -> int:
        port_state = self._port(port)
        if port_state.departs:
            self._drain_port(port, port_state, self.clock.now)
        return port_state.queued

    def port_stats(self, port: int) -> _PortState:
        return self._port(port)


class HostLike:
    """Interface for simulation endpoints (see :mod:`repro.net.hosts`)."""

    def bind(self, sim: NetworkSim, port: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def receive(self, packet: Packet, now: float) -> None:  # pragma: no cover
        raise NotImplementedError
