"""Simplified window-based TCP with ECN/DCTCP response.

Enough congestion-control fidelity for the paper's experiments:

- slow start then AIMD congestion avoidance;
- per-ACK clocking (each delivered data packet generates an ACK event
  back at the source after the return latency);
- loss detection by retransmission timeout -> multiplicative decrease
  and slow-start restart (models Figure 15's collapse under the flood);
- ECN echo with a DCTCP-style fractional decrease driven by the
  fraction of marked packets per window (used by the RL use case to
  evaluate marking thresholds).

This is a rate/Window abstraction, not a byte-exact stack -- the
evaluation shapes only require that throughput collapses under loss
and recovers within a few RTTs once the aggressor is suppressed.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.hosts import Host
from repro.switch.packet import Packet


class TcpFlow(Host):
    """One TCP sender attached to a switch port."""

    def __init__(
        self,
        name: str,
        fields: Dict[str, int],
        ack_latency_us: float = 5.0,
        size_bytes: int = 1500,
        initial_cwnd: float = 2.0,
        max_cwnd: float = 256.0,
        rto_us: float = 400.0,
        dctcp_g: float = 0.0625,
        use_dctcp: bool = False,
        pace_interval_us: float = 0.0,
        transfer_packets: Optional[int] = None,
    ):
        super().__init__(name)
        self.fields = dict(fields)
        self.size_bytes = size_bytes
        self.ack_latency_us = ack_latency_us
        self.cwnd = initial_cwnd
        self.max_cwnd = max_cwnd
        self.ssthresh = max_cwnd
        self.rto_us = rto_us
        self.use_dctcp = use_dctcp
        self.dctcp_g = dctcp_g
        self.dctcp_alpha = 0.0
        # Application pacing: at most one packet per interval (models
        # low-rate flows whose natural window would be below 1 packet
        # at microsecond RTTs).
        self.pace_interval_us = pace_interval_us
        self._next_send_us = 0.0
        self._pump_scheduled = False
        self.in_flight = 0
        self.next_seq = 0
        self.acked = 0
        self.tx_packets = 0
        self.retransmits = 0
        self.timeouts = 0
        self._window_acks = 0
        self._window_marks = 0
        self._running = False
        self._outstanding: Dict[int, float] = {}  # seq -> send time
        # FCT instrumentation: with ``transfer_packets`` set, the flow
        # is a back-to-back series of fixed-size transfers; every time
        # that many packets are cumulatively ACKed, one flow-completion
        # time is recorded and the next transfer starts immediately
        # (cwnd carries over -- the steady-state FCT the loss-rate
        # benchmark curves plot).
        self.transfer_packets = transfer_packets
        self.fct_samples: list = []
        self._transfer_start = 0.0
        self._transfer_acked = 0

    # ---- control ----------------------------------------------------------

    def start(self, at_us: Optional[float] = None) -> None:
        self._running = True
        start = self.sim.clock.now if at_us is None else at_us
        self._transfer_start = start
        self.sim.events.schedule(start, lambda now: self._pump(now))

    def stop(self) -> None:
        self._running = False

    @property
    def goodput_packets(self) -> int:
        return self.acked

    @property
    def transfers_completed(self) -> int:
        return len(self.fct_samples)

    @property
    def avg_fct_us(self) -> Optional[float]:
        if not self.fct_samples:
            return None
        return sum(self.fct_samples) / len(self.fct_samples)

    # ---- sending -----------------------------------------------------------

    def _pump(self, now: float) -> None:
        """Send while the window (and pacing) allow."""
        if not self._running:
            return
        while self.in_flight < int(self.cwnd):
            if self.pace_interval_us and now < self._next_send_us:
                if not self._pump_scheduled:
                    self._pump_scheduled = True
                    self.sim.events.schedule(
                        self._next_send_us, self._paced_pump
                    )
                return
            seq = self.next_seq
            self.next_seq += 1
            self._transmit(seq, now)
            if self.pace_interval_us:
                self._next_send_us = (
                    max(now, self._next_send_us) + self.pace_interval_us
                )

    def _paced_pump(self, now: float) -> None:
        self._pump_scheduled = False
        self._pump(now)

    def _transmit(self, seq: int, now: float) -> None:
        fields = dict(self.fields)
        fields["tcp.seq"] = seq & 0xFFFFFFFF
        packet = Packet(fields, size_bytes=self.size_bytes)
        # The ACK path: the sink host is the switch's delivery target;
        # we model the reverse direction as a fixed-latency callback.
        packet_seq = seq

        self.sim.send_to_switch(packet, self.port)
        self.in_flight += 1
        self.tx_packets += 1
        self._outstanding[packet_seq] = now
        self.sim.events.schedule(
            now + self.rto_us, lambda t, s=packet_seq: self._check_timeout(s, t)
        )

    def notify_delivered(self, packet: Packet, now: float) -> None:
        """Called by the receiving sink: schedules the ACK back."""
        seq = packet.get("tcp.seq")
        marked = packet.get("standard_metadata.ecn_marked")
        self.sim.events.schedule(
            now + self.ack_latency_us,
            lambda t, s=seq, m=marked: self._on_ack(s, m, t),
        )

    # ---- ACK / loss handling --------------------------------------------------

    def _on_ack(self, seq: int, marked: int, now: float) -> None:
        if seq not in self._outstanding:
            return  # duplicate/stale (e.g. after a timeout retransmit)
        del self._outstanding[seq]
        self.in_flight = max(0, self.in_flight - 1)
        self.acked += 1
        if self.transfer_packets:
            self._transfer_acked += 1
            if self._transfer_acked >= self.transfer_packets:
                self.fct_samples.append(now - self._transfer_start)
                self._transfer_start = now
                self._transfer_acked = 0
        self._window_acks += 1
        if marked:
            self._window_marks += 1
        if self.use_dctcp:
            self._dctcp_window_update(marked)
        elif marked:
            # Classic ECN: treat a mark like a loss (halve once per window).
            self.cwnd = max(1.0, self.cwnd / 2)
            self.ssthresh = self.cwnd
        else:
            self._grow()
        if self.use_dctcp and not marked:
            self._grow()
        self._pump(now)

    def _grow(self) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.max_cwnd, self.cwnd + 1.0)
        else:
            self.cwnd = min(self.max_cwnd, self.cwnd + 1.0 / self.cwnd)

    def _dctcp_window_update(self, marked: int) -> None:
        """Per-window alpha update, applied incrementally per ACK."""
        if self._window_acks >= max(1, int(self.cwnd)):
            fraction = self._window_marks / self._window_acks
            self.dctcp_alpha = (
                (1 - self.dctcp_g) * self.dctcp_alpha + self.dctcp_g * fraction
            )
            if self._window_marks:
                self.cwnd = max(1.0, self.cwnd * (1 - self.dctcp_alpha / 2))
            self._window_acks = 0
            self._window_marks = 0

    def _check_timeout(self, seq: int, now: float) -> None:
        if seq not in self._outstanding or not self._running:
            return
        # Lost: multiplicative decrease, slow-start restart, retransmit.
        del self._outstanding[seq]
        self.in_flight = max(0, self.in_flight - 1)
        self.timeouts += 1
        self.retransmits += 1
        self.ssthresh = max(1.0, self.cwnd / 2)
        self.cwnd = max(1.0, self.cwnd / 2)
        self._transmit(seq, now)


class TcpSink(Host):
    """Receives TCP data and notifies the owning flow for ACKs.

    Demultiplexes flows by a key field (default ``ipv4.srcAddr``).
    """

    def __init__(self, name: str, key_field: str = "ipv4.srcAddr",
                 window_us: float = 100.0):
        super().__init__(name)
        self.key_field = key_field
        self.flows: Dict[int, TcpFlow] = {}
        self.window_us = window_us
        self.windows: Dict[int, int] = {}

    def register_flow(self, key: int, flow: TcpFlow) -> None:
        self.flows[key] = flow

    def receive(self, packet: Packet, now: float) -> None:
        super().receive(packet, now)
        window = int(now / self.window_us)
        key = packet.get(self.key_field)
        flow = self.flows.get(key)
        if flow is not None:
            self.windows[window] = self.windows.get(window, 0) + packet.size_bytes
            flow.notify_delivered(packet, now)

    def tcp_throughput_gbps(self, window: int) -> float:
        return self.windows.get(window, 0) * 8 / (self.window_us * 1000.0)

    def timeline_gbps(self, until_us: float):
        count = int(until_us / self.window_us) + 1
        return [
            (w * self.window_us, self.tcp_throughput_gbps(w))
            for w in range(count)
        ]
