"""Simulation endpoints: sinks, UDP senders, heartbeat generators."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.net.sim import HostLike, NetworkSim
from repro.switch.packet import Packet


class Host(HostLike):
    """A basic host: counts received traffic, can send raw packets."""

    def __init__(self, name: str):
        self.name = name
        self.sim: Optional[NetworkSim] = None
        self.port = -1
        self.rx_packets = 0
        self.rx_bytes = 0
        self.on_receive: Optional[Callable[[Packet, float], None]] = None

    def bind(self, sim: NetworkSim, port: int) -> None:
        self.sim = sim
        self.port = port

    def receive(self, packet: Packet, now: float) -> None:
        self.rx_packets += 1
        self.rx_bytes += packet.size_bytes
        if self.on_receive is not None:
            self.on_receive(packet, now)

    def send(self, fields: Dict[str, int], size_bytes: int = 1500,
             delay_us: float = 0.0) -> None:
        packet = Packet(fields, size_bytes=size_bytes)
        self.sim.send_to_switch(packet, self.port, delay_us)


class SinkHost(Host):
    """A receive-only host that additionally tracks per-window
    throughput (used by the Figure 15 timeline)."""

    def __init__(self, name: str, window_us: float = 100.0):
        super().__init__(name)
        self.window_us = window_us
        self.windows: Dict[int, int] = {}

    def receive(self, packet: Packet, now: float) -> None:
        super().receive(packet, now)
        window = int(now / self.window_us)
        self.windows[window] = self.windows.get(window, 0) + packet.size_bytes

    def throughput_gbps(self, window: int) -> float:
        return self.windows.get(window, 0) * 8 / (self.window_us * 1000.0)

    def timeline_gbps(self, until_us: float):
        """(window_start_us, gbps) series from t=0 to ``until_us``."""
        count = int(until_us / self.window_us) + 1
        return [
            (w * self.window_us, self.throughput_gbps(w)) for w in range(count)
        ]


class UdpSender(Host):
    """Open-loop constant-rate sender (the DoS flood of Figure 15).

    With ``burst_size > 1`` the sender coalesces each group of packets
    into one simulator event (``send_burst_to_switch``): packet send
    times, arrivals, and the next tick all land on the same instants a
    per-packet sender would produce, but the event queue and the
    switch pipeline see one burst instead of ``burst_size`` entries.
    """

    def __init__(
        self,
        name: str,
        fields: Dict[str, int],
        rate_gbps: float,
        size_bytes: int = 1500,
        burst_size: int = 1,
    ):
        super().__init__(name)
        self.fields = dict(fields)
        self.rate_gbps = rate_gbps
        self.size_bytes = size_bytes
        self.interval_us = size_bytes * 8 / (rate_gbps * 1000.0)
        self.burst_size = max(1, burst_size)
        self.tx_packets = 0
        self._running = False

    def start(self, at_us: Optional[float] = None) -> None:
        self._running = True
        start = self.sim.clock.now if at_us is None else at_us
        self.sim.events.schedule(start, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self, now: float) -> None:
        if not self._running:
            return
        if self.burst_size == 1:
            packet = Packet(dict(self.fields), size_bytes=self.size_bytes)
            self.sim.send_to_switch(packet, self.port)
            self.tx_packets += 1
            self.sim.events.schedule(now + self.interval_us, self._tick)
            return
        burst = [
            Packet(dict(self.fields), size_bytes=self.size_bytes)
            for _ in range(self.burst_size)
        ]
        self.sim.send_burst_to_switch(
            burst, self.port, spacing_us=self.interval_us
        )
        self.tx_packets += self.burst_size
        # Next tick where the (burst_size+1)-th scalar send would be:
        # repeated addition, so the float value matches the scalar
        # sender's accumulated schedule exactly.
        next_tick = now
        for _ in range(self.burst_size):
            next_tick += self.interval_us
        self.sim.events.schedule(next_tick, self._tick)


class HeartbeatGenerator(Host):
    """Emits high-priority heartbeat packets every ``period_us``
    (the Section 8.3.2 gray-failure workload).  ``loss_rate`` models a
    gray failure: the link is nominally up but drops a fraction of
    heartbeats."""

    def __init__(
        self,
        name: str,
        fields: Dict[str, int],
        period_us: float = 1.0,
        size_bytes: int = 64,
    ):
        super().__init__(name)
        self.fields = dict(fields)
        self.period_us = period_us
        self.size_bytes = size_bytes
        self.loss_rate = 0.0
        self.tx_packets = 0
        self._running = False
        self._rng_state = 0x9E3779B9

    def start(self, at_us: Optional[float] = None) -> None:
        self._running = True
        start = self.sim.clock.now if at_us is None else at_us
        self.sim.events.schedule(start, self._tick)

    def stop(self) -> None:
        self._running = False

    def set_gray_loss(self, loss_rate: float) -> None:
        self.loss_rate = loss_rate

    def _rand(self) -> float:
        # xorshift: deterministic, independent of global RNG state.
        x = self._rng_state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._rng_state = x
        return x / 0xFFFFFFFF

    def _tick(self, now: float) -> None:
        if not self._running:
            return
        if self._rand() >= self.loss_rate:
            packet = Packet(dict(self.fields), size_bytes=self.size_bytes)
            self.sim.send_to_switch(packet, self.port)
            self.tx_packets += 1
        self.sim.events.schedule(now + self.period_us, self._tick)


class SeqProbeGenerator(Host):
    """Emits sequence-numbered probe packets every ``period_us``.

    The LinkGuardian-style loss detector: each probe carries a strictly
    incrementing sequence number in ``seq_field``, so the receiving
    switch can count delivered-vs-expected gaps per ingress port and
    estimate the effective loss rate of the link the probes crossed
    (see :mod:`repro.apps.linkguard`)."""

    def __init__(
        self,
        name: str,
        fields: Dict[str, int],
        period_us: float = 1.0,
        size_bytes: int = 64,
        seq_field: str = "guard.seq",
        start_seq: int = 1,
    ):
        super().__init__(name)
        self.fields = dict(fields)
        self.period_us = period_us
        self.size_bytes = size_bytes
        self.seq_field = seq_field
        self.next_seq = start_seq
        self.tx_packets = 0
        self._running = False

    def start(self, at_us: Optional[float] = None) -> None:
        self._running = True
        start = self.sim.clock.now if at_us is None else at_us
        self.sim.events.schedule(start, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self, now: float) -> None:
        if not self._running:
            return
        fields = dict(self.fields)
        fields[self.seq_field] = self.next_seq
        self.next_seq += 1
        packet = Packet(fields, size_bytes=self.size_bytes)
        self.sim.send_to_switch(packet, self.port)
        self.tx_packets += 1
        self.sim.events.schedule(now + self.period_us, self._tick)
