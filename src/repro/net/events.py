"""Discrete-event queue.

Events are ``(time_us, sequence, callback)`` triples on a heap.  The
queue does not own time -- it drains against the shared
:class:`~repro.switch.clock.SimClock`, which the Mantis agent's driver
operations advance.  This is how data-plane events (packet arrivals)
interleave with control-plane operations at per-operation granularity.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError


class EventQueue:
    """A time-ordered callback queue."""

    def __init__(self):
        self._heap: List[Tuple[float, int, Callable[[float], None]]] = []
        self._sequence = itertools.count()
        self._draining = False
        self.processed = 0

    def schedule(self, time_us: float, callback: Callable[[float], None]) -> None:
        """Run ``callback(time_us)`` when the clock reaches ``time_us``."""
        if time_us < 0:
            raise SimulationError(f"cannot schedule event at {time_us}")
        heapq.heappush(self._heap, (time_us, next(self._sequence), callback))

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def drain(self, now_us: float) -> int:
        """Run every event due at or before ``now_us``.

        Reentrancy-safe: events scheduled while draining are processed
        in the same drain if they are due.  Returns the number of
        events run.
        """
        if self._draining:
            return 0
        self._draining = True
        ran = 0
        try:
            while self._heap and self._heap[0][0] <= now_us:
                time_us, _seq, callback = heapq.heappop(self._heap)
                callback(time_us)
                ran += 1
                self.processed += 1
        finally:
            self._draining = False
        return ran
