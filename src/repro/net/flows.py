"""Synthetic CAIDA-like traces (the Figure 14 workload).

The paper replays a CAIDA ISP-backbone trace (chunks of ~8.9 M packets
and ~370 K flows per 20 s).  That trace is not redistributable, so we
generate synthetic traces with the statistics that matter for the
experiment: a heavy-tailed flow-size distribution (a few elephants
carrying most bytes, a long tail of mice) and randomly interleaved
packet arrivals.

Flow sizes are drawn from a Pareto distribution (shape ~1.2, the
commonly reported Internet flow-size tail) with the packet count
normalized to the requested totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np


@dataclass
class TraceConfig:
    """Parameters of a synthetic trace.

    Defaults are a ~100x downscale of the paper's 20 s CAIDA chunk
    (8.9 M packets / 370 K flows) so benches run in seconds; scale up
    with ``packets=8_900_000, flows=370_000`` to match the paper.
    """

    packets: int = 90_000
    flows: int = 3_700
    pareto_shape: float = 1.2
    mean_packet_bytes: int = 700
    duration_us: float = 200_000.0
    seed: int = 2020


@dataclass
class Trace:
    """Columnar packet trace."""

    times_us: np.ndarray  # float64, sorted
    src_ips: np.ndarray  # uint32 (per-sender statistics, like Poseidon)
    sizes: np.ndarray  # uint32 bytes

    def __len__(self) -> int:
        return len(self.times_us)

    def true_flow_sizes(self) -> dict:
        """Ground-truth bytes per source (what estimators approximate)."""
        totals = {}
        for src, size in zip(self.src_ips.tolist(), self.sizes.tolist()):
            totals[src] = totals.get(src, 0) + size
        return totals

    def iter_packets(self) -> Iterator[Tuple[float, int, int]]:
        yield from zip(
            self.times_us.tolist(), self.src_ips.tolist(), self.sizes.tolist()
        )


def synthetic_trace(config: TraceConfig = None) -> Trace:
    """Generate a heavy-tailed packet trace."""
    config = config or TraceConfig()
    rng = np.random.default_rng(config.seed)

    # Heavy-tailed packets-per-flow: Pareto, normalized to the totals.
    weights = rng.pareto(config.pareto_shape, config.flows) + 1.0
    weights /= weights.sum()
    per_flow = np.maximum(1, np.round(weights * config.packets)).astype(np.int64)

    # Assign each flow a distinct "source IP" in 10.0.0.0/8.
    flow_ips = (0x0A000000 + rng.choice(
        np.arange(1, 1 << 24), size=config.flows, replace=False
    )).astype(np.uint64)

    src_ips = np.repeat(flow_ips, per_flow)
    total = len(src_ips)

    # Packet sizes: bimodal (small ACK-ish + large MTU-ish), averaging
    # near mean_packet_bytes, like backbone traces.
    large = rng.random(total) < (config.mean_packet_bytes - 64) / (1500 - 64)
    sizes = np.where(large, 1500, 64).astype(np.uint32)

    # Random interleaving with uniform arrivals across the window.
    order = rng.permutation(total)
    src_ips = src_ips[order].astype(np.uint32)
    sizes = sizes[order]
    times = np.sort(rng.random(total)) * config.duration_us

    return Trace(times_us=times, src_ips=src_ips, sizes=sizes)


@dataclass
class Microburst:
    """One congestion event: a burst of elevated utilization."""

    start_us: float
    duration_us: float
    utilization: float


def microburst_schedule(
    horizon_us: float = 1_000_000.0,
    bursts_per_second: float = 2_000.0,
    short_fraction: float = 0.9,
    short_max_us: float = 200.0,
    long_max_us: float = 5_000.0,
    seed: int = 7,
) -> list:
    """Synthetic congestion-event schedule matching the paper's
    motivation: "90% of continuous periods of high utilization lasted
    for less than 200 us" [57].

    Returns a list of :class:`Microburst` sorted by start time.
    """
    rng = np.random.default_rng(seed)
    count = max(1, int(horizon_us / 1e6 * bursts_per_second))
    starts = np.sort(rng.random(count)) * horizon_us
    bursts = []
    for start in starts.tolist():
        if rng.random() < short_fraction:
            duration = rng.uniform(10.0, short_max_us)
        else:
            duration = rng.uniform(short_max_us, long_max_us)
        bursts.append(
            Microburst(start, duration, rng.uniform(0.8, 1.0))
        )
    return bursts


def trace_stats(trace: Trace) -> dict:
    """Summary statistics (used by tests and EXPERIMENTS.md)."""
    totals = trace.true_flow_sizes()
    sizes = np.array(sorted(totals.values()))
    top_1pct = sizes[int(len(sizes) * 0.99):].sum()
    return {
        "packets": len(trace),
        "flows": len(totals),
        "bytes": int(trace.sizes.sum()),
        "top1pct_byte_share": float(top_1pct / sizes.sum()),
    }
