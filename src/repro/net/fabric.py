"""The per-switch fabric layer: switches, ports, links, faults.

One :class:`FabricSwitch` owns everything local to a switch -- port
states with lazy pull-based queue accounting, attached hosts, peer
wiring, the packet path through its :class:`~repro.system.MantisSystem`
ASIC, and the vectorized burst traffic-manager tail (:class:`_BurstTM`).
:class:`Link` models an inter-switch cable (binary kill plus stacked
:class:`LinkFaultModel` lossy degradation).

Scaling contract (the fleet-scale refactor): every per-packet-event
operation here is O(1) in fabric size.  Port state is a dict lookup on
the owning switch, peer handoff is a dict lookup on the egress port,
and queue accounting is *lazy* -- a monotone departure deque per port,
drained only when that port's depth is read or written, so idle ports
cost nothing no matter how many switches or links the fabric carries.

The fabric facade (:class:`repro.net.sim.NetworkSim`) composes these
into an N-switch topology on one shared
:class:`~repro.runtime.Scheduler` timeline; every public name here is
re-exported from :mod:`repro.net.sim` for import compatibility.
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.runtime import AgentActor
from repro.switch.compiled import _tables_in
from repro.switch.packet import Packet
from repro.system import MantisSystem

try:  # numpy backs the vectorized burst tail; optional like columnar
    import numpy as np
except ImportError:  # pragma: no cover - burst TM then runs per lane
    np = None  # type: ignore[assignment]


@dataclass
class PortConfig:
    """Link parameters of one switch port."""

    bandwidth_gbps: float = 25.0
    latency_us: float = 1.0
    queue_capacity_pkts: int = 256

    def serialization_us(self, size_bytes: int) -> float:
        return size_bytes * 8 / (self.bandwidth_gbps * 1000.0)


@dataclass
class LinkFaultModel:
    """Seeded degradation of one link: probabilistic drops and bit
    corruption (the LinkGuardian-style lossy-link failure mode, as
    opposed to the binary cable kill of :attr:`Link.up`).

    Attach to an inter-switch :class:`Link` (both directions) or to a
    host-facing :class:`_PortState` (``FabricSwitch.set_port_fault``).
    Every decision is drawn from seeded per-direction RNG streams, so
    the drop/corrupt sequence for a given packet stream is a pure
    function of ``(seed, direction, packet order)`` -- bit-identical
    across per-packet and coalesced-burst delivery and across pipeline
    engines (burst coalescing may reorder *foreign* events around a
    burst, but never packets within one direction of one link, which
    is why the streams are per-direction).

    ``window_us`` bounds the degradation to a simulated-time interval
    (gated on each packet's wire arrival instant, which is float-exact
    across delivery paths); ``active`` is the on/off switch that
    :meth:`NetworkSim.install_link_fault` toggles through scheduled
    events.  ``max_drops``/``max_corrupts`` cap the damage so
    randomized fault plans are guaranteed to go quiet.

    Corruption flips one bit (``corrupt_mask``, or a random bit below
    32 when ``None``) in one packet field drawn from
    ``corrupt_fields`` -- by default any non-``standard_metadata``
    field (wire corruption cannot touch switch-local intrinsic
    metadata).  The corrupted packet continues; drops vanish and are
    counted here, and only here (exactly-once accounting).
    """

    seed: int
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    corrupt_fields: Optional[Tuple[str, ...]] = None
    corrupt_mask: Optional[int] = None
    window_us: Optional[Tuple[float, float]] = None
    max_drops: Optional[int] = None
    max_corrupts: Optional[int] = None
    name: str = ""
    active: bool = True
    dropped: int = 0
    corrupted: int = 0
    # (time_us, direction, kind, detail) -- the deterministic event
    # log the seeded-determinism tests compare bit-for-bit.
    events: List[Tuple[float, str, str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rngs: Dict[str, random.Random] = {}

    def _rng(self, direction: str) -> random.Random:
        rng = self._rngs.get(direction)
        if rng is None:
            rng = random.Random(
                self.seed * 0x9E3779B1 + zlib.crc32(direction.encode())
            )
            self._rngs[direction] = rng
        return rng

    def set_active(self, active: bool) -> None:
        self.active = active

    def admit(self, packet: Packet, now_us: float, direction: str) -> Optional[str]:
        """Roll this packet's fate: ``"drop"``, ``"corrupt"`` (fields
        already flipped in place), or ``None`` (unharmed)."""
        if not self.active:
            return None
        if self.window_us is not None:
            start, end = self.window_us
            if not start <= now_us <= end:
                return None
        rng = self._rng(direction)
        if self.drop_rate > 0.0 and (
            self.max_drops is None or self.dropped < self.max_drops
        ):
            if rng.random() < self.drop_rate:
                self.dropped += 1
                self.events.append((now_us, direction, "drop", ""))
                return "drop"
        if self.corrupt_rate > 0.0 and (
            self.max_corrupts is None or self.corrupted < self.max_corrupts
        ):
            if rng.random() < self.corrupt_rate:
                return self._corrupt(packet, now_us, direction, rng)
        return None

    def _corrupt(
        self, packet: Packet, now_us: float, direction: str,
        rng: random.Random,
    ) -> Optional[str]:
        eligible = self.corrupt_fields
        if eligible is None:
            eligible = tuple(sorted(
                key for key in packet.fields
                if not key.startswith("standard_metadata.")
            ))
        if not eligible:
            return None
        field_name = eligible[rng.randrange(len(eligible))]
        mask = self.corrupt_mask
        if mask is None:
            mask = 1 << rng.randrange(32)
        packet.fields[field_name] = packet.fields.get(field_name, 0) ^ mask
        self.corrupted += 1
        self.events.append(
            (now_us, direction, "corrupt", f"{field_name}^0x{mask:x}")
        )
        return "corrupt"


@dataclass
class _PortState:
    config: PortConfig
    busy_until: float = 0.0
    queued: int = 0
    up: bool = True
    tx_packets: int = 0
    tx_bytes: int = 0
    dropped: int = 0
    # Host->switch wire losses: packets sent toward a down ingress
    # port, or arriving after it went down mid-flight.  Kept separate
    # from ``dropped`` (egress-side losses) so every lost packet lands
    # in exactly one bucket (see NetworkSim.drop_totals).
    rx_dropped: int = 0
    # Optional lossy-link model for the host-facing cable (both
    # directions); inter-switch cables carry theirs on the Link.
    fault: Optional[LinkFaultModel] = None
    # bits-per-us denominator, precomputed once: serialization on the
    # per-packet path is then ``size * 8 / rate_bits_per_us`` -- the
    # same float operations (hence bit-identical results) as
    # PortConfig.serialization_us, without re-deriving the rate from
    # bandwidth_gbps on every send.
    rate_bits_per_us: float = 0.0
    # Pending departure times, monotonically non-decreasing (each
    # departure is max(now, busy_until) + serialization).  Drained
    # lazily by _drain_port instead of one scheduled event per packet.
    departs: Deque[float] = field(default_factory=deque)

    def __post_init__(self) -> None:
        self.rate_bits_per_us = self.config.bandwidth_gbps * 1000.0


@dataclass
class Link:
    """A cable between two switch ports.

    ``up`` kills the whole cable (both directions) -- the fabric-level
    failure the multi-hop scenarios inject; the per-port ``up`` flag
    of :meth:`FabricSwitch.set_link_up` still models one-sided port
    shutdown (the Figure 16 'switch API that disables ports')."""

    switch_a: "FabricSwitch"
    port_a: int
    switch_b: "FabricSwitch"
    port_b: int
    up: bool = True
    # Degradation models applied (in order) to every packet crossing
    # the cable in either direction; the first "drop" verdict wins.
    fault_models: List[LinkFaultModel] = field(default_factory=list)

    def endpoints(self) -> Tuple[Tuple["FabricSwitch", int],
                                 Tuple["FabricSwitch", int]]:
        return (self.switch_a, self.port_a), (self.switch_b, self.port_b)

    @property
    def name(self) -> str:
        return (
            f"{self.switch_a.name}:{self.port_a}"
            f"<->{self.switch_b.name}:{self.port_b}"
        )

    @property
    def fault_dropped(self) -> int:
        return sum(model.dropped for model in self.fault_models)

    @property
    def fault_corrupted(self) -> int:
        return sum(model.corrupted for model in self.fault_models)

    def admit(self, packet: Packet, now_us: float, direction: str) -> Optional[str]:
        """Run the packet through every fault model on the cable."""
        verdict = None
        for model in self.fault_models:
            result = model.admit(packet, now_us, direction)
            if result == "drop":
                return "drop"
            if result is not None:
                verdict = result
        return verdict


def _prim_touches(prim, field_name: str) -> bool:
    """Conservative: does the primitive mention this standard-metadata
    field at all?"""
    for arg in prim.args:
        ref = getattr(arg, "header", None)
        if ref == "standard_metadata" and getattr(
            arg, "field", None
        ) == field_name:
            return True
    return False


def _burst_vec_ok(system: MantisSystem) -> bool:
    """Static gate for the vectorized burst traffic manager.

    The batched tail commits enqueues at the TM point, *before* the
    egress sweeps run; that reorder is unobservable only when no
    reachable egress action can drop and nothing anywhere can
    recirculate (a recirculated packet would re-enter ingress instead
    of staying enqueued).  The program is fixed at load and the
    control plane can only select among declared actions, so the scan
    over every table's action list (plus defaults) covers all runtime
    behavior."""
    program = system.asic.program

    def reachable_actions(control_name: str):
        decl = program.controls.get(control_name)
        names: set = set()
        if decl is None:
            return names
        for table_name in _tables_in(decl.body):
            table = program.tables.get(table_name)
            if table is None:
                return None
            names.update(table.action_names)
            if table.default_action is not None:
                names.add(table.default_action[0])
        return names

    ingress = reachable_actions("ingress")
    egress = reachable_actions("egress")
    if ingress is None or egress is None:
        return False
    for name in ingress | egress:
        action = program.actions.get(name)
        if action is None:
            return False
        for prim in action.body:
            if prim.name == "recirculate" or _prim_touches(
                prim, "recirculate_flag"
            ):
                return False
            if name in egress and (
                prim.name == "drop"
                or _prim_touches(prim, "drop_flag")
            ):
                return False
    return True


class _BurstTM:
    """Columnar traffic-manager tail for one coalesced burst.

    Passed to :meth:`SwitchAsic.process_batch` instead of the
    per-packet ``sink`` when :func:`_burst_vec_ok` holds for the
    switch's program.  ``admit`` performs, for all live lanes at once,
    exactly the state transitions the scalar sink interleaves per
    packet -- lazy departure drains, depth reads, capacity drops,
    the busy-until serialization chain, departure-deque appends, port
    counters, and delivery-event scheduling in lane order -- so burst
    delivery is bit-identical to the scalar path.  Per port the depth
    accounting runs as a prefix sum over arrival instants whenever the
    port stays continuously busy; otherwise that port's lanes replay
    the per-lane loop (still with the pipeline fully vectorized
    above)."""

    __slots__ = ("switch", "packets", "times")

    def __init__(self, switch: "FabricSwitch", packets, times):
        self.switch = switch
        self.packets = packets
        self.times = times

    # ---- scalar fallback (engine bailed out of the columnar tail) ----

    def sink(self, index: int, result) -> None:
        if result is not None:
            egress_port, packet = result
            self.switch._enqueue(egress_port, packet, self.times[index])

    # ---- batched traffic manager -------------------------------------

    def admit(self, lanes, ports_arr, times, sizes):
        """Enqueue the live lanes (``lanes is None`` = all) headed to
        ``ports_arr`` and return the queue depth each lane observed at
        its own arrival instant."""
        switch = self.switch
        times_arr = np.asarray(times, np.float64)
        if lanes is None:
            lane_idx = np.arange(len(ports_arr), dtype=np.int64)
        else:
            lane_idx = lanes
        t_all = times_arr[lane_idx]
        m = len(ports_arr)
        depths = np.zeros(m, np.int64)
        # (lane, arrival, egress_port, packet): deliveries are
        # scheduled after all ports commit, sorted by lane, so event
        # insertion order matches the scalar per-lane interleaving.
        pending: List[Tuple[int, float, int, Packet]] = []
        for port_index in np.unique(ports_arr).tolist():
            sel = np.nonzero(ports_arr == port_index)[0]
            self._admit_port(
                int(port_index), sel, lane_idx[sel], t_all[sel],
                sizes[sel], depths, pending,
            )
        pending.sort(key=lambda entry: entry[0])
        events = switch.events
        deliver = switch._deliver
        for _lane, arrival, port_index, packet in pending:
            events.schedule(
                arrival,
                lambda now2, p=packet, port_=port_index: deliver(
                    port_, p, now2
                ),
            )
        return depths

    def _admit_port(
        self, port_index, sel, lane_sel, t, sizes, depths, pending
    ) -> None:
        switch = self.switch
        port = switch._port(port_index)
        k = len(sel)
        old = (
            np.asarray(port.departs, np.float64)
            if port.departs else np.empty(0, np.float64)
        )
        old_live = len(old) - np.searchsorted(old, t, side="right")
        peer = switch.peers.get(port_index)
        down = not port.up or (peer is not None and not peer[2].up)
        rate = port.rate_bits_per_us
        capacity = port.config.queue_capacity_pkts
        if down:
            # The depth reads (and their drains) still happen; every
            # enqueue is then refused on the dead link.
            depths[sel] = old_live
            port.dropped += k
            self._commit(port_index, port, old, float(t[-1]), None)
            return
        ser = sizes * 8 / rate
        if rate > 0 and bool((sizes > 0).all()) and (
            k == 1 or bool((np.diff(t) >= 0).all())
        ):
            # Continuously-busy chain: depart[j] = depart[j-1] + ser[j]
            # degenerates to a prefix sum (np.cumsum accumulates left
            # to right, so the doubles match the scalar loop exactly).
            first = max(float(t[0]), port.busy_until) + float(ser[0])
            departs = np.cumsum(np.concatenate(([first], ser[1:])))
            busy_chain = k == 1 or bool(
                (t[1:] <= departs[:-1]).all()
            )
            if busy_chain:
                burst_live = np.arange(k) - np.searchsorted(
                    departs, t, side="right"
                )
                port_depths = old_live + burst_live
                if not bool((port_depths >= capacity).any()):
                    depths[sel] = port_depths
                    self._commit(
                        port_index, port, old, float(t[-1]), departs
                    )
                    port.busy_until = float(departs[-1])
                    port.tx_packets += k
                    port.tx_bytes += int(sizes.sum())
                    latency = port.config.latency_us
                    packets = self.packets
                    for pos in range(k):
                        pending.append((
                            int(lane_sel[pos]),
                            float(departs[pos]) + latency,
                            port_index,
                            packets[int(lane_sel[pos])],
                        ))
                    return
        # Generic per-lane replay: non-monotone arrivals, an idle gap
        # in the busy chain, or a capacity hit -- exact scalar
        # semantics, delivery still deferred to the sorted pass.
        self._admit_port_scalar(
            port_index, port, sel, lane_sel, t, sizes, depths, pending
        )

    def _admit_port_scalar(
        self, port_index, port, sel, lane_sel, t, sizes, depths, pending
    ) -> None:
        switch = self.switch
        drain = switch._drain_port
        capacity = port.config.queue_capacity_pkts
        rate = port.rate_bits_per_us
        latency = port.config.latency_us
        packets = self.packets
        for pos in range(len(sel)):
            now = float(t[pos])
            if port.departs:
                drain(port_index, port, now)
            depths[sel[pos]] = port.queued
            if port.queued >= capacity:
                port.dropped += 1
                continue
            size = int(sizes[pos])
            serialization = size * 8 / rate
            depart = max(now, port.busy_until) + serialization
            port.busy_until = depart
            port.queued += 1
            port.departs.append(depart)
            switch._departing.add(port_index)
            port.tx_packets += 1
            port.tx_bytes += size
            lane = int(lane_sel[pos])
            pending.append(
                (lane, depart + latency, port_index, packets[lane])
            )
        asic_ports = switch.system.asic.ports
        if port_index < len(asic_ports):
            asic_ports[port_index].queue_depth = port.queued

    def _commit(self, port_index, port, old, t_last, departs) -> None:
        """Fold a whole-port fast path into the lazy-queue state:
        retire everything due by the last arrival, splice the new
        departures on, republish the snapshot."""
        switch = self.switch
        keep_old = old[old > t_last]
        remaining = deque(keep_old.tolist())
        if departs is not None:
            remaining.extend(departs[departs > t_last].tolist())
        port.departs = remaining
        port.queued = len(remaining)
        if remaining:
            switch._departing.add(port_index)
        else:
            switch._departing.discard(port_index)
        asic_ports = switch.system.asic.ports
        if port_index < len(asic_ports):
            asic_ports[port_index].queue_depth = port.queued


class FabricSwitch:
    """One emulated Mantis switch inside a fabric.

    Owns the per-switch world: port states and their lazy queue
    accounting, attached hosts, switch-to-switch peer wiring, and the
    packet path into and out of its :class:`MantisSystem`'s ASIC.
    Hosts bind against this object (it exposes ``clock``, ``events``,
    ``send_to_switch``/``send_burst_to_switch``), so endpoint code is
    identical whether the switch stands alone or inside an N-switch
    topology.
    """

    def __init__(
        self,
        fabric: "NetworkSim",
        name: str,
        system: MantisSystem,
        default_port: Optional[PortConfig] = None,
    ):
        self.fabric = fabric
        self.name = name
        self.system = system
        self.clock = system.clock
        # Bound once: _ingress runs per delivered packet, and the
        # attribute chain through system.asic would be re-walked on the
        # simulator's hottest edge.  The ASIC's compiled pipeline is
        # likewise built once at load, so the whole per-packet path is
        # allocation- and lookup-free.
        self._process = system.asic.process
        self._process_batch = system.asic.process_batch
        self.events = fabric.scheduler.events
        self.default_port = default_port or PortConfig()
        self.ports: Dict[int, _PortState] = {}
        self.hosts: Dict[int, "HostLike"] = {}
        # port -> (peer switch, peer ingress port, link) for
        # switch-to-switch cables.
        self.peers: Dict[int, Tuple["FabricSwitch", int, Link]] = {}
        self.switch_drops = 0
        self.delivered = 0
        self.forwarded = 0  # packets handed to a peer switch
        # Ports with pending lazy departures; lets depth reads for
        # port A skip draining B's deque.
        self._departing: Set[int] = set()
        # The ASIC pulls live depths (lazy-drained to the exact packet
        # timestamp) instead of relying on pushed snapshots.
        system.asic.queue_model = self._queue_depth_at
        # Static per-program gate for the vectorized burst tail: when
        # no egress action can drop and nothing recirculates, burst
        # delivery runs through _BurstTM instead of a per-packet sink.
        self._burst_vec = np is not None and _burst_vec_ok(system)
        # The agent as a schedulable actor; armed by the fabric's
        # run_until(agent=True).
        self.agent_actor = AgentActor(system.agent, name=f"{name}.agent")
        fabric.scheduler.spawn(self.agent_actor)
        fabric.scheduler.cancel(self.agent_actor)  # armed per run

    # ---- wiring ----------------------------------------------------------

    def configure_port(self, port: int, config: PortConfig) -> None:
        self.ports[port] = _PortState(config)

    def _port(self, port: int) -> _PortState:
        if port not in self.ports:
            self.ports[port] = _PortState(self.default_port)
        return self.ports[port]

    def attach_host(self, host: "HostLike", port: int) -> None:
        if port in self.hosts:
            raise SimulationError(
                f"{self.name}: port {port} already has a host"
            )
        if port in self.peers:
            raise SimulationError(
                f"{self.name}: port {port} is an inter-switch link"
            )
        self.hosts[port] = host
        host.bind(self, port)

    def set_link_up(self, port: int, up: bool) -> None:
        """Fault injection: disable/enable a port's link (the
        Figure 16 experiment's 'switch API that disables ports')."""
        self._port(port).up = up

    def set_port_fault(
        self, port: int, model: Optional[LinkFaultModel]
    ) -> Optional[LinkFaultModel]:
        """Attach (or clear, with ``None``) a lossy-link model to a
        host-facing port; applies to both directions of that cable."""
        self._port(port).fault = model
        return model

    def _add_peer(self, port: int, peer: "FabricSwitch", peer_port: int,
                  link: Link) -> None:
        if port in self.hosts:
            raise SimulationError(
                f"{self.name}: port {port} already has a host"
            )
        if port in self.peers:
            raise SimulationError(
                f"{self.name}: port {port} already linked to "
                f"{self.peers[port][0].name}"
            )
        self.peers[port] = (peer, peer_port, link)

    # ---- queue accounting -------------------------------------------------

    def _drain_port(self, port_index: int, port: _PortState, now: float) -> None:
        """Retire departures due at or before ``now`` and republish the
        depth to the ASIC's port snapshot (kept for callers that read
        ``asic.ports[i].queue_depth`` directly)."""
        departs = port.departs
        while departs and departs[0] <= now:
            departs.popleft()
            port.queued -= 1
        if not departs:
            self._departing.discard(port_index)
        asic_ports = self.system.asic.ports
        if port_index < len(asic_ports):
            asic_ports[port_index].queue_depth = port.queued

    def _queue_depth_at(self, port_index: int, now: float) -> int:
        """``asic.queue_model``: the live depth of one port at ``now``."""
        port = self._port(port_index)
        if port.departs:
            self._drain_port(port_index, port, now)
        return port.queued

    # ---- packet path -------------------------------------------------------

    def send_to_switch(
        self, packet: Packet, ingress_port: int, delay_us: float = 0.0
    ) -> None:
        """A host puts a packet on the wire toward the switch."""
        port = self._port(ingress_port)
        if not port.up:
            port.rx_dropped += 1  # link down: the packet never arrives
            return
        arrival = (
            self.clock.now
            + delay_us
            + port.config.latency_us
            + packet.size_bytes * 8 / port.rate_bits_per_us
        )
        if (
            port.fault is not None
            and port.fault.admit(packet, arrival, "in") == "drop"
        ):
            return  # lost on the wire; counted by the fault model
        packet.fields["standard_metadata.ingress_port"] = ingress_port
        self.events.schedule(
            arrival, lambda now, p=packet, ps=port: self._arrive(ps, p, now)
        )

    def _arrive(self, port: _PortState, packet: Packet, now: float) -> None:
        """Wire arrival of one host packet: re-check the ingress port
        (it may have gone down mid-flight) before pipeline entry."""
        if not port.up:
            port.rx_dropped += 1
            return
        self._ingress(packet, now)

    def send_burst_to_switch(
        self,
        packets: Sequence[Packet],
        ingress_port: int,
        spacing_us: float = 0.0,
        delay_us: float = 0.0,
    ) -> None:
        """A host puts a burst on the wire as ONE event.

        Send times step by ``spacing_us`` (repeated addition, matching
        the per-packet accumulation a scalar sender would do); each
        packet's arrival adds the link latency and its own
        serialization.  The whole burst runs through
        :meth:`SwitchAsic.process_batch` when the first packet's
        arrival is due, with per-packet notional timestamps, so
        timestamps, queue depths, and drop decisions are identical to
        sending the packets individually.  The coalescing trade-off:
        foreign events with timestamps inside the burst window run
        after the burst instead of interleaved with it.
        """
        if not packets:
            return
        port = self._port(ingress_port)
        if not port.up:
            port.rx_dropped += len(packets)
            return
        latency = port.config.latency_us
        rate = port.rate_bits_per_us
        fault = port.fault
        times: List[float] = []
        batch: List[Packet] = []
        send = self.clock.now + delay_us
        for packet in packets:
            arrival = send + latency + packet.size_bytes * 8 / rate
            send += spacing_us
            # Same arrival-time gating and per-direction RNG order as
            # the scalar path, so drop decisions are bit-identical.
            if fault is not None and fault.admit(packet, arrival, "in") == "drop":
                continue
            packet.fields["standard_metadata.ingress_port"] = ingress_port
            times.append(arrival)
            batch.append(packet)
        if not batch:
            return
        self.events.schedule(
            times[0],
            lambda _now, b=batch, t=times, ps=port: self._ingress_burst(
                b, t, ps
            ),
        )

    def _ingress(self, packet: Packet, now: float) -> None:
        result = self._process(packet)
        if result is None:
            self.switch_drops += 1
            return
        egress_port, packet = result
        self._enqueue(egress_port, packet, now)

    def _ingress_burst(
        self,
        packets: List[Packet],
        times: List[float],
        port: Optional[_PortState] = None,
    ) -> None:
        if port is not None and not port.up:
            # The ingress port went down between send and arrival; the
            # whole in-flight burst is lost on the wire.
            port.rx_dropped += len(packets)
            return
        if self._burst_vec:
            # Batched traffic manager: the columnar engine keeps its
            # vectorized tail (causal depths as a per-port prefix sum)
            # and scalar engines use the same object's per-lane sink.
            results = self._process_batch(
                packets, times=times, tm=_BurstTM(self, packets, times)
            )
            self.switch_drops += sum(
                1 for result in results if result is None
            )
            return
        # The sink keeps queue accounting causal (packet i enqueued
        # before i+1 reads depths), which also pins the columnar engine
        # to its scalar traffic-manager tail: vectorized ingress sweeps
        # still run, only the per-packet delivery loop stays scalar.
        def sink(index: int, result) -> None:
            if result is None:
                self.switch_drops += 1
                return
            egress_port, packet = result
            self._enqueue(egress_port, packet, times[index])

        self._process_batch(packets, times=times, sink=sink)

    def _enqueue(self, egress_port: int, packet: Packet, now: float) -> None:
        port = self._port(egress_port)
        if not port.up:
            port.dropped += 1
            return
        peer = self.peers.get(egress_port)
        if peer is not None and not peer[2].up:
            port.dropped += 1  # dead cable: lost on the wire
            return
        if port.departs:
            self._drain_port(egress_port, port, now)
        if port.queued >= port.config.queue_capacity_pkts:
            port.dropped += 1
            return
        serialization = packet.size_bytes * 8 / port.rate_bits_per_us
        depart = max(now, port.busy_until) + serialization
        port.busy_until = depart
        port.queued += 1
        port.departs.append(depart)
        self._departing.add(egress_port)
        asic_ports = self.system.asic.ports
        if egress_port < len(asic_ports):
            asic_ports[egress_port].queue_depth = port.queued
        arrival = depart + port.config.latency_us
        self.events.schedule(
            arrival, lambda now2, p=packet, port_=egress_port: self._deliver(
                port_, p, now2
            )
        )
        port.tx_packets += 1
        port.tx_bytes += packet.size_bytes

    def _deliver(self, port_index: int, packet: Packet, now: float) -> None:
        peer = self.peers.get(port_index)
        if peer is not None:
            peer_switch, peer_port, link = peer
            if not link.up or not peer_switch._port(peer_port).up:
                self._port(port_index).dropped += 1
                return
            if link.fault_models:
                direction = "a2b" if link.switch_a is self else "b2a"
                if link.admit(packet, now, direction) == "drop":
                    return  # lost on the wire; the fault model counts it
            # Next hop: the wire traversal (serialization + latency)
            # was already paid at this switch's egress queue, so the
            # packet enters the peer's pipeline at the arrival instant.
            self.forwarded += 1
            packet.fields["standard_metadata.ingress_port"] = peer_port
            peer_switch._ingress(packet, now)
            return
        port_state = self._port(port_index)
        if (
            port_state.fault is not None
            and port_state.fault.admit(packet, now, "out") == "drop"
        ):
            return  # lost on the last hop toward the host
        self.delivered += 1
        host = self.hosts.get(port_index)
        if host is not None:
            host.receive(packet, now)

    # ---- inspection ------------------------------------------------------

    def packet_stats(self) -> Dict[str, int]:
        """Per-switch event/packet ledger for fleet-run summaries."""
        tx_packets = tx_bytes = egress_dropped = rx_dropped = 0
        for port in self.ports.values():
            tx_packets += port.tx_packets
            tx_bytes += port.tx_bytes
            egress_dropped += port.dropped
            rx_dropped += port.rx_dropped
        return {
            "delivered": self.delivered,
            "forwarded": self.forwarded,
            "switch_drops": self.switch_drops,
            "tx_packets": tx_packets,
            "tx_bytes": tx_bytes,
            "egress_dropped": egress_dropped,
            "rx_dropped": rx_dropped,
        }

    def queue_depth(self, port: int) -> int:
        port_state = self._port(port)
        if port_state.departs:
            self._drain_port(port, port_state, self.clock.now)
        return port_state.queued

    def port_stats(self, port: int) -> _PortState:
        return self._port(port)

    def __repr__(self) -> str:
        return (
            f"FabricSwitch({self.name!r}, hosts={sorted(self.hosts)}, "
            f"links={sorted(self.peers)})"
        )


class HostLike:
    """Interface for simulation endpoints (see :mod:`repro.net.hosts`).

    ``bind`` receives the sending surface -- a :class:`FabricSwitch`
    (or the legacy :class:`NetworkSim` shim, which forwards to its one
    switch); both expose ``clock``, ``events``, ``send_to_switch`` and
    ``send_burst_to_switch``."""

    def bind(self, sim: "FabricSwitch", port: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def receive(self, packet: Packet, now: float) -> None:  # pragma: no cover
        raise NotImplementedError
