"""Static fabric routing: shortest paths over a :class:`FabricSpec`,
installed as table entries on every switch of a built fabric.

``equal_cost_ports`` computes, per switch, the set of egress ports on
*all* shortest paths to every addressed destination -- the ECMP group.
``install_routes`` writes them into the data plane in one of three
modes:

- ``hashed``    -- multi-port destinations are steered through the
  program's hashing action into a bucket-indexed select table (the
  Mantis-rebalanceable path: the hash inputs are malleable fields).
  Single-port destinations forward directly and tag the sentinel
  bucket so the select stage passes them through untouched.
- ``round_robin`` -- each multi-port destination is pinned to one port,
  rotating through its group in address order (deterministic spread,
  no per-packet hashing).
- ``random``    -- each multi-port destination is pinned to a port
  drawn from a per-switch seeded RNG (deterministic per seed).

The table/action names parameterize so any program with the
forward/hash/skip idiom can be routed; the defaults match
``repro.apps.fabric_lb.FABRIC_P4R``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

import networkx as nx

from repro.errors import SimulationError
from repro.net.fabric_builder import BuiltFabric, FabricSpec

#: ``forward`` writes this bucket so the select table skips hashing.
SENTINEL_BUCKET = 0xFFFF

ROUTE_MODES = ("hashed", "round_robin", "random")


def equal_cost_ports(
    spec: FabricSpec,
    switch_name: str,
    extra_dests: Optional[Dict[int, str]] = None,
) -> Dict[int, List[int]]:
    """Address -> sorted list of egress ports on all shortest paths.

    ``extra_dests`` maps additional addresses (service aliases) onto
    existing host nodes; they route exactly like the host's primary
    address.
    """
    view = spec.switch_view(switch_name)
    graph = view.graph
    dests: Dict[int, str] = {}
    for host in spec.hosts.values():
        if host.addr is not None:
            dests[host.addr] = host.name
    for addr, node in (extra_dests or {}).items():
        if node not in graph:
            raise SimulationError(f"alias target {node!r} not in fabric")
        dests[addr] = node
    routes: Dict[int, List[int]] = {}
    for addr in sorted(dests):
        node = dests[addr]
        if node == switch_name:
            continue
        try:
            paths = nx.all_shortest_paths(graph, switch_name, node)
            ports = sorted({
                view.port_map[path[1]] for path in paths if len(path) > 1
            })
        except nx.NetworkXNoPath:
            ports = []
        if ports:
            routes[addr] = ports
    return routes


def install_routes(
    built: BuiltFabric,
    mode: str = "hashed",
    seed: int = 0,
    extra_dests: Optional[Dict[int, str]] = None,
    table: str = "route",
    forward_action: str = "forward",
    hash_action: str = "to_upper",
    select_table: str = "up_select",
    skip_action: str = "skip",
    num_buckets: int = 4,
) -> Dict[str, Dict[str, object]]:
    """Install shortest-path routes on every switch of ``built``.

    Returns a per-switch summary: route count, direct count, and the
    ECMP group (hashed mode).  In ``hashed`` mode every multi-port
    destination on a given switch must share one port group (true on
    fat-trees and leaf-spines, where the group is always the full
    uplink set) because the program carries a single select table.
    """
    if mode not in ROUTE_MODES:
        raise SimulationError(
            f"unknown routing mode {mode!r} (choose from {ROUTE_MODES})"
        )
    summary: Dict[str, Dict[str, object]] = {}
    for name, switch in built.switches.items():
        driver = switch.system.driver
        routes = equal_cost_ports(built.spec, name, extra_dests)
        rng = random.Random(f"{seed}:{name}")
        group: Optional[List[int]] = None
        direct = 0
        rr_next = 0
        for addr in sorted(routes):
            ports = routes[addr]
            if len(ports) == 1:
                driver.add_entry(table, [addr], forward_action, [ports[0]])
                direct += 1
            elif mode == "hashed":
                if group is None:
                    group = ports
                elif group != ports:
                    raise SimulationError(
                        f"{name}: hashed mode needs one ECMP group per "
                        f"switch, got {group} and {ports} "
                        f"(use round_robin/random)"
                    )
                driver.add_entry(table, [addr], hash_action, [])
            elif mode == "round_robin":
                driver.add_entry(
                    table, [addr], forward_action,
                    [ports[rr_next % len(ports)]],
                )
                rr_next += 1
            else:  # random
                driver.add_entry(
                    table, [addr], forward_action, [rng.choice(ports)]
                )
        if group is not None:
            for bucket in range(num_buckets):
                driver.add_entry(
                    select_table, [bucket], forward_action,
                    [group[bucket % len(group)]],
                )
        # Every directly-forwarded packet carries the sentinel bucket;
        # the select stage must pass it through on every switch.
        driver.add_entry(select_table, [SENTINEL_BUCKET], skip_action, [])
        summary[name] = {
            "routes": len(routes),
            "direct": direct,
            "ecmp_group": list(group) if group else [],
        }
    return summary
