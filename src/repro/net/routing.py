"""Static fabric routing: shortest paths over a :class:`FabricSpec`,
installed as table entries on every switch of a built fabric.

``equal_cost_ports`` computes, per switch, the set of egress ports on
*all* shortest paths to every addressed destination -- the ECMP group.
``install_routes`` writes them into the data plane in one of three
modes:

- ``hashed``    -- multi-port destinations are steered through the
  program's hashing action into a bucket-indexed select table (the
  Mantis-rebalanceable path: the hash inputs are malleable fields).
  Single-port destinations forward directly and tag the sentinel
  bucket so the select stage passes them through untouched.
- ``round_robin`` -- each multi-port destination is pinned to one port,
  rotating through its group in address order (deterministic spread,
  no per-packet hashing).
- ``random``    -- each multi-port destination is pinned to a port
  drawn from a per-switch seeded RNG (deterministic per seed).

Scaling: route computation shares one BFS distance map per
*destination* across every switch (a neighbor ``n`` of switch ``s``
is on a shortest path to ``d`` iff ``dist(d, n) == dist(d, s) - 1``),
so a FatTree(k=8) fleet costs ``O(dests * edges)`` instead of
``O(switches * dests * paths)``.  Installation streams all of a
switch's entries through :meth:`Driver.write_batch` DMA-burst
transactions by default (``bulk=True``), which is what keeps an
80-switch k=8 install sub-second; ``bulk=False`` restores one driver
op per entry.

The table/action names parameterize so any program with the
forward/hash/skip idiom can be routed; the defaults match
``repro.apps.fabric_lb.FABRIC_P4R``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import SimulationError
from repro.net.fabric_builder import BuiltFabric, FabricSpec

#: ``forward`` writes this bucket so the select table skips hashing.
SENTINEL_BUCKET = 0xFFFF

ROUTE_MODES = ("hashed", "round_robin", "random")


def _dest_map(
    spec: FabricSpec,
    graph,
    extra_dests: Optional[Dict[int, str]],
) -> Dict[int, str]:
    """Address -> destination node, hosts plus service aliases."""
    dests: Dict[int, str] = {}
    for host in spec.hosts.values():
        if host.addr is not None:
            dests[host.addr] = host.name
    for addr, node in (extra_dests or {}).items():
        if node not in graph:
            raise SimulationError(f"alias target {node!r} not in fabric")
        dests[addr] = node
    return dests


def compute_fabric_routes(
    spec: FabricSpec,
    switch_names: Sequence[str],
    extra_dests: Optional[Dict[int, str]] = None,
) -> Dict[str, Dict[int, List[int]]]:
    """ECMP groups for every switch in one sweep.

    One BFS per *destination node* (shared by all switches) replaces
    the per-(switch, dest) all-shortest-paths enumeration: a neighbor
    lies on a shortest path exactly when it is one hop closer to the
    destination.
    """
    switch_names = list(switch_names)
    if not switch_names:
        return {}
    views = {name: spec.switch_view(name) for name in switch_names}
    shared_graph = views[switch_names[0]].graph
    dests = _dest_map(spec, shared_graph, extra_dests)
    distance: Dict[str, Dict[str, int]] = {}
    for node in set(dests.values()):
        distance[node] = nx.single_source_shortest_path_length(
            shared_graph, node
        )
    routes: Dict[str, Dict[int, List[int]]] = {}
    for name in switch_names:
        view = views[name]
        graph = view.graph
        neighbors = list(graph.neighbors(name)) if name in graph else []
        switch_routes: Dict[int, List[int]] = {}
        for addr in sorted(dests):
            node = dests[addr]
            if node == name:
                continue
            dist = distance[node]
            here = dist.get(name)
            if here is None:
                continue  # unreachable (severed fabric)
            ports = sorted({
                view.port_map[neighbor]
                for neighbor in neighbors
                if dist.get(neighbor) == here - 1
            })
            if ports:
                switch_routes[addr] = ports
        routes[name] = switch_routes
    return routes


def equal_cost_ports(
    spec: FabricSpec,
    switch_name: str,
    extra_dests: Optional[Dict[int, str]] = None,
) -> Dict[int, List[int]]:
    """Address -> sorted list of egress ports on all shortest paths.

    ``extra_dests`` maps additional addresses (service aliases) onto
    existing host nodes; they route exactly like the host's primary
    address.
    """
    return compute_fabric_routes(spec, [switch_name], extra_dests)[
        switch_name
    ]


def _plan_switch_entries(
    routes: Dict[int, List[int]],
    mode: str,
    rng: random.Random,
    table: str,
    forward_action: str,
    hash_action: str,
    select_table: str,
    skip_action: str,
    num_buckets: int,
    switch_name: str,
) -> Tuple[List[Tuple], int, Optional[List[int]]]:
    """The full ordered entry list for one switch as bulk-op tuples."""
    ops: List[Tuple] = []
    group: Optional[List[int]] = None
    direct = 0
    rr_next = 0
    for addr in sorted(routes):
        ports = routes[addr]
        if len(ports) == 1:
            ops.append(("add", table, [addr], forward_action, [ports[0]]))
            direct += 1
        elif mode == "hashed":
            if group is None:
                group = ports
            elif group != ports:
                raise SimulationError(
                    f"{switch_name}: hashed mode needs one ECMP group per "
                    f"switch, got {group} and {ports} "
                    f"(use round_robin/random)"
                )
            ops.append(("add", table, [addr], hash_action, []))
        elif mode == "round_robin":
            ops.append((
                "add", table, [addr], forward_action,
                [ports[rr_next % len(ports)]],
            ))
            rr_next += 1
        else:  # random
            ops.append(
                ("add", table, [addr], forward_action, [rng.choice(ports)])
            )
    if group is not None:
        for bucket in range(num_buckets):
            ops.append((
                "add", select_table, [bucket], forward_action,
                [group[bucket % len(group)]],
            ))
    # Every directly-forwarded packet carries the sentinel bucket;
    # the select stage must pass it through on every switch.
    ops.append(("add", select_table, [SENTINEL_BUCKET], skip_action, []))
    return ops, direct, group


def install_routes(
    built: BuiltFabric,
    mode: str = "hashed",
    seed: int = 0,
    extra_dests: Optional[Dict[int, str]] = None,
    table: str = "route",
    forward_action: str = "forward",
    hash_action: str = "to_upper",
    select_table: str = "up_select",
    skip_action: str = "skip",
    num_buckets: int = 4,
    bulk: bool = True,
    channel: str = "bulk-loader",
) -> Dict[str, Dict[str, object]]:
    """Install shortest-path routes on every switch of ``built``.

    Returns a per-switch summary: route count, direct count, the ECMP
    group (hashed mode), and the install's driver op accounting
    (``driver_ops`` logical entries, ``bulk_txns`` coalesced
    transactions -- 0 when ``bulk=False``).  In ``hashed`` mode every
    multi-port destination on a given switch must share one port group
    (true on fat-trees and leaf-spines, where the group is always the
    full uplink set) because the program carries a single select table.
    """
    if mode not in ROUTE_MODES:
        raise SimulationError(
            f"unknown routing mode {mode!r} (choose from {ROUTE_MODES})"
        )
    all_routes = compute_fabric_routes(
        built.spec, list(built.switches), extra_dests
    )
    summary: Dict[str, Dict[str, object]] = {}
    for name, switch in built.switches.items():
        driver = switch.system.driver
        routes = all_routes[name]
        rng = random.Random(f"{seed}:{name}")
        ops, direct, group = _plan_switch_entries(
            routes, mode, rng, table, forward_action, hash_action,
            select_table, skip_action, num_buckets, name,
        )
        txns_before = driver.bulk_txns
        sim_before = driver.clock.now
        if bulk:
            driver.write_batch(ops, channel=channel)
        else:
            for op in ops:
                _, op_table, key, action, args = op[:5]
                driver.add_entry(op_table, key, action, args, channel=channel)
        summary[name] = {
            "routes": len(routes),
            "direct": direct,
            "ecmp_group": list(group) if group else [],
            "driver_ops": len(ops),
            "bulk_txns": driver.bulk_txns - txns_before,
            "bulk": bulk,
            "install_sim_us": driver.clock.now - sim_before,
        }
    return summary
