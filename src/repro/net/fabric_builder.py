"""Declarative fabric construction: describe a whole topology once,
instantiate it as a :class:`repro.net.sim.NetworkSim` fleet.

The original growth path built topologies twice -- once as a networkx
graph for the control plane (:mod:`repro.net.topology`) and once as
imperative ``add_switch``/``connect`` calls for the data plane.  A
:class:`FabricSpec` is the single source of truth for both: it holds
switches, links, and hosts declaratively, derives the per-switch
:class:`~repro.net.topology.SwitchTopology` views the route managers
consume (``switch_view``), and materializes the whole fabric as one
``NetworkSim`` with one :class:`~repro.system.MantisSystem` per switch
on a shared clock (``build``).

:class:`FatTree` is the canonical multi-stage instance: the standard
k-ary fat-tree (Al-Fares et al.) with ``k`` pods, ``k/2`` edge and
``k/2`` aggregation switches per pod, ``(k/2)^2`` cores, and ``k/2``
hosts per edge switch -- ``FatTree(4)`` is the 20-switch / 16-host
fleet the scaling benchmarks run on.

Parallel links (same unordered switch pair cabled more than once)
cannot live on a simple ``nx.Graph`` edge, so the derived graph routes
each such link through an intermediate node -- the historical
``fabric_pair`` encoding, now generalized (``link_node`` controls the
naming so legacy wrappers stay bit-identical).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

import networkx as nx

from repro.errors import SimulationError
from repro.net.sim import FabricSwitch, Link, NetworkSim, PortConfig
from repro.net.topology import SwitchTopology
from repro.p4r.parser import parse_p4r
from repro.switch.clock import SimClock
from repro.system import MantisSystem

LinkNodeNamer = Callable[[str, str, int], str]


def _default_link_node(a: str, b: str, index: int) -> str:
    return f"{a}={b}.{index}"


@dataclass
class SwitchSpec:
    """One switch: a name, a topology role, and its ECMP uplinks."""

    name: str
    role: str = "switch"
    uplink_ports: Tuple[int, ...] = ()


@dataclass
class LinkSpec:
    """One cable: ``a``'s ``a_port`` to ``b``'s ``b_port``."""

    a: str
    a_port: int
    b: str
    b_port: int

    @property
    def pair(self) -> frozenset:
        return frozenset((self.a, self.b))


@dataclass
class HostSpec:
    """One host hanging off ``switch`` at ``port``.

    ``addr`` is the host's routable address (``None`` for hosts whose
    addressing is scenario-private, e.g. the legacy pair wrappers).
    """

    name: str
    switch: str
    port: int
    addr: Optional[int] = None


class FabricSpec:
    """Declarative description of a multi-switch fabric."""

    def __init__(self, name: str = "fabric"):
        self.name = name
        self.switches: Dict[str, SwitchSpec] = {}
        self.links: List[LinkSpec] = []
        self.hosts: Dict[str, HostSpec] = {}

    # ---- declaration ----------------------------------------------------

    def add_switch(
        self, name: str, role: str = "switch",
        uplink_ports: Tuple[int, ...] = (),
    ) -> SwitchSpec:
        if name in self.switches or name in self.hosts:
            raise SimulationError(f"duplicate fabric node {name!r}")
        spec = SwitchSpec(name, role, tuple(uplink_ports))
        self.switches[name] = spec
        return spec

    def add_link(self, a: str, a_port: int, b: str, b_port: int) -> LinkSpec:
        for end, port in ((a, a_port), (b, b_port)):
            if end not in self.switches:
                raise SimulationError(f"link endpoint {end!r} is not a switch")
            if self._port_taken(end, port):
                raise SimulationError(f"{end}: port {port} already cabled")
        link = LinkSpec(a, a_port, b, b_port)
        self.links.append(link)
        return link

    def add_host(
        self, name: str, switch: str, port: int, addr: Optional[int] = None
    ) -> HostSpec:
        if name in self.hosts or name in self.switches:
            raise SimulationError(f"duplicate fabric node {name!r}")
        if switch not in self.switches:
            raise SimulationError(f"host switch {switch!r} is not a switch")
        if self._port_taken(switch, port):
            raise SimulationError(f"{switch}: port {port} already cabled")
        if addr is not None:
            for other in self.hosts.values():
                if other.addr == addr:
                    raise SimulationError(
                        f"address {addr:#x} already assigned to {other.name}"
                    )
        spec = HostSpec(name, switch, port, addr)
        self.hosts[name] = spec
        return spec

    def _port_taken(self, switch: str, port: int) -> bool:
        for link in self.links:
            if (link.a == switch and link.a_port == port) or (
                link.b == switch and link.b_port == port
            ):
                return True
        return any(
            host.switch == switch and host.port == port
            for host in self.hosts.values()
        )

    # ---- derived views --------------------------------------------------

    def _link_nodes(
        self, link_node: Optional[LinkNodeNamer] = None
    ) -> List[Tuple[LinkSpec, Optional[str]]]:
        """Each link with its intermediate graph node (``None`` when the
        link is the only cable between its switch pair and can be a
        direct edge)."""
        namer = link_node or _default_link_node
        counts: Dict[frozenset, int] = {}
        for link in self.links:
            counts[link.pair] = counts.get(link.pair, 0) + 1
        seen: Dict[frozenset, int] = {}
        out: List[Tuple[LinkSpec, Optional[str]]] = []
        for link in self.links:
            if counts[link.pair] == 1:
                out.append((link, None))
                continue
            index = seen.get(link.pair, 0)
            seen[link.pair] = index + 1
            out.append((link, namer(link.a, link.b, index)))
        return out

    def graph(
        self,
        include_hosts: bool = True,
        link_node: Optional[LinkNodeNamer] = None,
    ) -> nx.Graph:
        """The control-plane graph.

        Edge insertion order follows declaration order (links first,
        then hosts) so shortest-path tie-breaking is deterministic and
        matches the historical imperative builders.
        """
        graph = nx.Graph()
        for name in self.switches:
            graph.add_node(name)
        for link, node in self._link_nodes(link_node):
            if node is None:
                graph.add_edge(link.a, link.b)
            else:
                graph.add_edge(link.a, node)
                graph.add_edge(node, link.b)
        if include_hosts:
            for host in self.hosts.values():
                graph.add_edge(host.switch, host.name)
        return graph

    def switch_view(
        self,
        name: str,
        link_node: Optional[LinkNodeNamer] = None,
        graph: Optional[nx.Graph] = None,
    ) -> SwitchTopology:
        """The fabric as seen from one switch: the shared graph plus
        this switch's neighbor->port and address->node maps (the inputs
        of :class:`repro.apps.failover.RouteManager`).

        Pass ``graph`` to share one derived graph object across several
        views (it must come from :meth:`graph` with the same
        ``link_node`` namer)."""
        if name not in self.switches:
            raise SimulationError(f"unknown switch {name!r}")
        if graph is None:
            graph = self.graph(link_node=link_node)
        port_map: Dict[str, int] = {}
        for link, node in self._link_nodes(link_node):
            if link.a == name:
                port_map[node or link.b] = link.a_port
            elif link.b == name:
                port_map[node or link.a] = link.b_port
        dest_map: Dict[int, str] = {}
        for host in self.hosts.values():
            if host.switch == name:
                port_map[host.name] = host.port
            if host.addr is not None:
                dest_map[host.addr] = host.name
        view = SwitchTopology(graph, name, port_map, dest_map)
        view.validate()
        return view

    # ---- materialization ------------------------------------------------

    def build(
        self,
        source_or_program,
        clock: Optional[SimClock] = None,
        default_port: Optional[PortConfig] = None,
        **system_kwargs,
    ) -> "BuiltFabric":
        """Instantiate the fabric: one ``MantisSystem`` per switch on a
        shared clock, all cables connected.

        String sources are parsed once and compiled per switch (each
        switch needs private mutable artifacts)."""
        if not self.switches:
            raise SimulationError(f"fabric {self.name!r} has no switches")
        program = (
            parse_p4r(source_or_program)
            if isinstance(source_or_program, str)
            else source_or_program
        )
        clock = clock or SimClock()
        fabric = NetworkSim(clock=clock, default_port=default_port)
        switches: Dict[str, FabricSwitch] = {}
        for name in self.switches:
            system = MantisSystem.from_source(
                program, clock=clock, **system_kwargs
            )
            switches[name] = fabric.add_switch(system, name)
        links: Dict[Tuple[str, int], Link] = {}
        for link in self.links:
            wire = fabric.connect(
                switches[link.a], link.a_port, switches[link.b], link.b_port
            )
            links[(link.a, link.a_port)] = wire
            links[(link.b, link.b_port)] = wire
        return BuiltFabric(self, fabric, switches, links)


@dataclass
class BuiltFabric:
    """A materialized :class:`FabricSpec`: the live ``NetworkSim`` plus
    name-indexed switch and link handles."""

    spec: FabricSpec
    fabric: NetworkSim
    switches: Dict[str, FabricSwitch]
    links: Dict[Tuple[str, int], Link] = field(default_factory=dict)

    @property
    def clock(self) -> SimClock:
        return self.fabric.clock

    def switch(self, name: str) -> FabricSwitch:
        if name not in self.switches:
            raise SimulationError(f"unknown switch {name!r}")
        return self.switches[name]

    def system(self, name: str) -> MantisSystem:
        return self.switch(name).system

    def attach_host(self, host_name: str, host) -> HostSpec:
        """Bind a live host object at the port the spec declared for
        ``host_name``; returns the spec entry (with the address)."""
        if host_name not in self.spec.hosts:
            raise SimulationError(f"unknown host {host_name!r}")
        entry = self.spec.hosts[host_name]
        self.switches[entry.switch].attach_host(host, entry.port)
        return entry

    def link(self, switch: str, port: int) -> Link:
        key = (switch, port)
        if key not in self.links:
            raise SimulationError(f"no link at {switch}:{port}")
        return self.links[key]


class FatTree(FabricSpec):
    """The standard k-ary fat-tree.

    ``k`` pods (``k`` even), each with ``k/2`` edge switches
    (``e<pod>_<i>``) and ``k/2`` aggregation switches (``a<pod>_<j>``);
    ``(k/2)^2`` core switches (``c<x>``); ``k/2`` hosts per edge
    (``h<pod>_<i>_<m>``).  Port convention on edge and aggregation
    switches: ports ``0..k/2-1`` are uplinks, ports ``k/2..k-1`` face
    down (hosts or edges).  Core switch port ``p`` faces pod ``p``.
    Aggregation switch ``j`` uplinks to core group ``j`` (cores
    ``j*k/2 .. j*k/2+k/2-1``).

    Host addresses encode position: ``0x0A000000 | pod<<16 | edge<<8 |
    (host+2)`` -- the 10.pod.edge.host convention of the fat-tree
    paper.
    """

    def __init__(self, k: int = 4):
        if k < 2 or k % 2:
            raise SimulationError("fat-tree k must be even and >= 2")
        super().__init__(name=f"fat-tree-{k}")
        self.k = k
        half = k // 2
        self.half = half
        uplinks = tuple(range(half))
        for x in range(half * half):
            self.add_switch(f"c{x}", role="core")
        for pod in range(k):
            for j in range(half):
                self.add_switch(f"a{pod}_{j}", role="agg", uplink_ports=uplinks)
            for i in range(half):
                self.add_switch(f"e{pod}_{i}", role="edge",
                                uplink_ports=uplinks)
        for pod in range(k):
            for i in range(half):
                for j in range(half):
                    self.add_link(f"e{pod}_{i}", j, f"a{pod}_{j}", half + i)
            for j in range(half):
                for y in range(half):
                    self.add_link(f"a{pod}_{j}", y, f"c{j * half + y}", pod)
        for pod in range(k):
            for i in range(half):
                for m in range(half):
                    self.add_host(
                        f"h{pod}_{i}_{m}", f"e{pod}_{i}", half + m,
                        self.host_addr(pod, i, m),
                    )

    def host_addr(self, pod: int, edge: int, host: int) -> int:
        return 0x0A000000 | (pod << 16) | (edge << 8) | (host + 2)

    def host_name(self, pod: int, edge: int, host: int) -> str:
        return f"h{pod}_{edge}_{host}"

    def pod_hosts(self, pod: int) -> List[HostSpec]:
        return [
            host for host in self.hosts.values()
            if host.addr is not None and (host.addr >> 16) & 0xFF == pod
        ]
