"""Topology builders for use-case scenarios.

Thin wrappers over networkx graphs that also carry the mapping from
the Mantis switch's ports to neighbor nodes and from destination
addresses to nodes -- the inputs of
:class:`repro.apps.failover.RouteManager`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import networkx as nx

from repro.errors import SimulationError


@dataclass
class SwitchTopology:
    """A topology as seen from one Mantis switch (``switch_node``)."""

    graph: nx.Graph
    switch_node: str
    port_map: Dict[str, int] = field(default_factory=dict)  # neighbor -> port
    dest_map: Dict[int, str] = field(default_factory=dict)  # addr -> node

    def neighbors(self) -> Dict[str, int]:
        return dict(self.port_map)

    def validate(self) -> None:
        for neighbor in self.port_map:
            if not self.graph.has_edge(self.switch_node, neighbor):
                raise SimulationError(
                    f"port map names non-adjacent neighbor {neighbor!r}"
                )
        for node in self.dest_map.values():
            if node not in self.graph:
                raise SimulationError(f"destination node {node!r} not in graph")


def star(n_neighbors: int, base_addr: int = 0x0A000100) -> SwitchTopology:
    """A switch with ``n_neighbors`` leaves and no detours."""
    graph = nx.Graph()
    graph.add_node("s0")
    topology = SwitchTopology(graph, "s0")
    for index in range(n_neighbors):
        node = f"n{index}"
        graph.add_edge("s0", node)
        topology.port_map[node] = index
        topology.dest_map[base_addr + index] = node
    topology.validate()
    return topology


def ring_of_neighbors(
    n_neighbors: int, base_addr: int = 0x0A000100
) -> SwitchTopology:
    """A star whose leaves also form a ring, so every destination has
    a one-hop detour when its direct link fails (the Figure 16
    topology)."""
    topology = star(n_neighbors, base_addr)
    for index in range(n_neighbors):
        topology.graph.add_edge(
            f"n{index}", f"n{(index + 1) % n_neighbors}"
        )
    topology.validate()
    return topology


def fabric_pair(n_links: int = 2) -> Tuple[SwitchTopology, SwitchTopology]:
    """Two switches joined by ``n_links`` parallel links, one host each.

    .. deprecated:: since the fleet-scale refactor this is a thin
       wrapper over :class:`repro.net.fabric_builder.FabricSpec`; new
       scenarios should declare a spec directly (and get ``build()``
       and routing for free).  Kept because the two-switch failover
       golden runs pin its exact node naming and edge order.

    A simple ``nx.Graph`` cannot carry parallel edges, so each physical
    link ``i`` is an intermediate node ``l<i>`` on the path
    ``s0 - l<i> - s1``: shortest-path routing then distinguishes the
    links, and failing one (removing the ``s0 - l<i>`` edge) leaves the
    detour through the others.  Hosts ``h0``/``h1`` hang off ``s0``/
    ``s1``.  Ports ``0..n_links-1`` face the links on both switches;
    port ``n_links`` faces the local host.

    Returns the two per-switch views of the shared graph (the inputs
    of two :class:`repro.apps.failover.RouteManager` instances).
    """
    from repro.net.fabric_builder import FabricSpec

    if n_links < 2:
        raise SimulationError("fabric_pair needs >= 2 links for a detour")
    spec = FabricSpec("fabric-pair")
    spec.add_switch("s0")
    spec.add_switch("s1")
    for index in range(n_links):
        spec.add_link("s0", index, "s1", index)
    spec.add_host("h0", "s0", n_links)
    spec.add_host("h1", "s1", n_links)

    def link_node(a: str, b: str, index: int) -> str:
        return f"l{index}"

    graph = spec.graph(link_node=link_node)
    view0 = spec.switch_view("s0", link_node=link_node, graph=graph)
    view1 = spec.switch_view("s1", link_node=link_node, graph=graph)
    return view0, view1


def leaf_spine(
    n_leaves: int, n_spines: int, base_addr: int = 0x0A000100
) -> SwitchTopology:
    """The Mantis switch as one leaf of a leaf-spine fabric.

    .. deprecated:: thin wrapper over
       :class:`repro.net.fabric_builder.FabricSpec` -- new scenarios
       should declare a spec directly.  The destination addresses live
       on the *other leaves themselves* (scenario-level addressing), so
       the dest map is grafted onto the derived view here rather than
       declared as spec hosts.

    Ports 0..n_spines-1 face the spines; destinations live under the
    *other* leaves and are reachable through any spine.
    """
    from repro.net.fabric_builder import FabricSpec

    if n_leaves < 2:
        raise SimulationError("leaf_spine needs at least 2 leaves")
    spec = FabricSpec("leaf-spine")
    leaves = ["s0"] + [f"leaf{index}" for index in range(1, n_leaves)]
    spines = [f"sp{index}" for index in range(n_spines)]
    for leaf in leaves:
        spec.add_switch(leaf, role="leaf",
                        uplink_ports=tuple(range(n_spines)))
    for spine in spines:
        spec.add_switch(spine, role="spine")
    for leaf_index, leaf in enumerate(leaves):
        for spine_index, spine in enumerate(spines):
            spec.add_link(leaf, spine_index, spine, leaf_index)
    topology = spec.switch_view("s0")
    for index, leaf in enumerate(leaves[1:]):
        topology.dest_map[base_addr + index] = leaf
    topology.validate()
    return topology
