"""Network simulation substrate.

Stands in for the paper's hardware testbed (Wedge switch + servers on
25 Gbps links):

- :mod:`repro.net.events` -- discrete-event queue sharing the switch's
  simulated clock; driver operations interleave with packet arrivals at
  operation granularity, so control-plane/data-plane concurrency is
  faithful.
- :mod:`repro.net.sim` -- the network: the emulated switch, per-port
  output queues with finite capacity, links, and attached hosts.
- :mod:`repro.net.hosts` -- traffic endpoints: sinks, UDP senders
  (the DoS flood), heartbeat generators (the gray-failure detector).
- :mod:`repro.net.tcp` -- simplified window-based TCP with ECN/DCTCP
  response, enough to reproduce the congestion-and-recovery shapes of
  Figures 15 and the RL use case.
- :mod:`repro.net.flows` -- synthetic CAIDA-like heavy-tailed traces
  for the Figure 14 estimation experiment.
"""

from repro.net.events import EventQueue
from repro.net.flows import TraceConfig, synthetic_trace
from repro.net.hosts import HeartbeatGenerator, Host, SinkHost, UdpSender
from repro.net.sim import NetworkSim, PortConfig
from repro.net.tcp import TcpFlow

__all__ = [
    "EventQueue",
    "HeartbeatGenerator",
    "Host",
    "NetworkSim",
    "PortConfig",
    "SinkHost",
    "TcpFlow",
    "TraceConfig",
    "UdpSender",
    "synthetic_trace",
]
