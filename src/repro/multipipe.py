"""Multi-pipeline switches.

Section 4: "if there are multiple line cards with distinct register
state, a separate instance of the Mantis agent will run for each";
Section 6: "if the switch contains multiple disjoint linecards or
pipelines, these can be handled by spawning multiple Mantis agent
threads, each handling its own component."

:class:`MultiPipelineSwitch` instantiates one compiled program N times
-- each pipeline gets its own ASIC state (tables, registers, ports),
driver, and agent -- on a single shared simulated clock.  Agent
"threads" are modelled by interleaving dialogue iterations round-robin
(each iteration advances the shared clock by its own cost; with a real
multicore CPU they would overlap, so the interleaved model is a
conservative latency bound).

Mantis deliberately provides no cross-pipeline isolation (Section 5);
the tests demonstrate both the per-pipeline guarantees and the absence
of cross-pipeline ones.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from repro.agent.agent import MantisAgent, ReactionContext
from repro.compiler.spec import CompiledArtifacts
from repro.compiler.transform import CompilerOptions, compile_p4r
from repro.errors import AgentError
from repro.p4r.ast import P4RProgram
from repro.switch.asic import SwitchAsic
from repro.switch.clock import SimClock
from repro.switch.driver import Driver, DriverCostModel


class Pipeline:
    """One pipeline: private ASIC + driver + agent."""

    def __init__(
        self,
        index: int,
        artifacts: CompiledArtifacts,
        clock: SimClock,
        num_ports: int,
        cost_model: Optional[DriverCostModel],
        pacing_sleep_us: float,
        execution_mode: Optional[str] = None,
        poll_batching: bool = False,
    ):
        self.index = index
        # Each pipeline owns its program instance so runtime state
        # (entries, registers) is fully disjoint.
        program = artifacts.p4.clone()
        self.asic = SwitchAsic(
            program, clock=clock, num_ports=num_ports, seed=index,
            execution_mode=execution_mode,
        )
        self.driver = Driver(self.asic, model=cost_model)
        self.agent = MantisAgent(
            artifacts, self.driver, pacing_sleep_us=pacing_sleep_us,
            poll_batching=poll_batching,
        )

    def process_batch(self, packets, times=None, sink=None):
        """Burst-mode entry point for this pipeline's private ASIC."""
        return self.asic.process_batch(packets, times=times, sink=sink)


class MultiPipelineSwitch:
    """N pipelines of one program on a shared clock."""

    def __init__(
        self,
        artifacts: CompiledArtifacts,
        n_pipelines: int = 2,
        num_ports: int = 32,
        cost_model: Optional[DriverCostModel] = None,
        pacing_sleep_us: float = 0.0,
        clock: Optional[SimClock] = None,
        execution_mode: Optional[str] = None,
        poll_batching: bool = False,
    ):
        if n_pipelines < 1:
            raise AgentError("need at least one pipeline")
        self.artifacts = artifacts
        self.clock = clock or SimClock()
        self.pipelines: List[Pipeline] = [
            Pipeline(
                index, artifacts, self.clock, num_ports,
                cost_model, pacing_sleep_us,
                execution_mode=execution_mode,
                poll_batching=poll_batching,
            )
            for index in range(n_pipelines)
        ]

    @classmethod
    def from_source(
        cls,
        source_or_program: Union[str, P4RProgram],
        n_pipelines: int = 2,
        options: Optional[CompilerOptions] = None,
        **kwargs,
    ) -> "MultiPipelineSwitch":
        artifacts = compile_p4r(source_or_program, options)
        return cls(artifacts, n_pipelines=n_pipelines, **kwargs)

    def __len__(self) -> int:
        return len(self.pipelines)

    def __getitem__(self, index: int) -> Pipeline:
        return self.pipelines[index]

    def prologue(self) -> None:
        """Run every pipeline's agent prologue."""
        for pipeline in self.pipelines:
            pipeline.agent.prologue()

    def attach_python(
        self,
        reaction_name: str,
        factory: Callable[[Pipeline], Callable[[ReactionContext], None]],
    ) -> None:
        """Attach per-pipeline reaction implementations.

        ``factory(pipeline)`` builds one callable per pipeline, so each
        agent instance carries its own closure state (the per-line-card
        agent instances of Section 4).
        """
        for pipeline in self.pipelines:
            pipeline.agent.attach_python(reaction_name, factory(pipeline))

    def run_round(self) -> float:
        """One round-robin pass: each agent runs one dialogue
        iteration.  Returns the total busy time of the round."""
        total = 0.0
        for pipeline in self.pipelines:
            total += pipeline.agent.run_iteration()
        return total

    def run_rounds(self, rounds: int) -> None:
        for _ in range(rounds):
            self.run_round()

    # ---- cross-pipeline synchronization (the paper's future work) ----

    def run_round_synchronized(self) -> float:
        """One round with *approximately synchronized* commits across
        pipelines -- an exploration of the cross-pipeline consistency
        the paper explicitly leaves as future work (Section 5).

        Measurement and reaction execution run per pipeline as usual,
        but every vv commit is deferred and then issued back to back,
        shrinking the cross-pipeline inconsistency window from a full
        round (many tens of microseconds) to roughly one master-init
        write per pipeline.  Returns the skew window: the simulated
        time between the first and the last commit.
        """
        for pipeline in self.pipelines:
            pipeline.agent.run_iteration(commit=False)
        first_commit = self.clock.now
        for pipeline in self.pipelines:
            pipeline.agent.commit()
        return self.clock.now - first_commit
