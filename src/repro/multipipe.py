"""Multi-pipeline switches.

Section 4: "if there are multiple line cards with distinct register
state, a separate instance of the Mantis agent will run for each";
Section 6: "if the switch contains multiple disjoint linecards or
pipelines, these can be handled by spawning multiple Mantis agent
threads, each handling its own component."

:class:`MultiPipelineSwitch` instantiates one compiled program N times
-- each pipeline is a full :class:`~repro.system.MantisSystem` (its own
ASIC state, driver, fault injector, agent) on a single shared simulated
clock, so every system-level knob (``retry_policy``, ``fault_plan``,
``verify_commits``, ``record_timeline``, ``seed``) works per pipeline
exactly as it does on a single-pipeline switch.  Agent "threads" are
modelled by interleaving dialogue iterations round-robin (each
iteration advances the shared clock by its own cost; with a real
multicore CPU they would overlap, so the interleaved model is a
conservative latency bound) -- or, via :meth:`spawn_agents`, as actors
on a :class:`~repro.runtime.Scheduler` timeline shared with packet
events and other switches.

Mantis deliberately provides no cross-pipeline isolation (Section 5);
the tests demonstrate both the per-pipeline guarantees and the absence
of cross-pipeline ones.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Mapping, Optional, Union

from repro.agent.agent import ReactionContext
from repro.compiler.spec import CompiledArtifacts
from repro.compiler.transform import CompilerOptions, compile_p4r
from repro.errors import AgentError
from repro.p4r.ast import P4RProgram
from repro.runtime import AgentActor, Scheduler
from repro.switch.clock import SimClock
from repro.switch.driver import DriverCostModel, RetryPolicy
from repro.system import MantisSystem


class Pipeline:
    """One pipeline: a private :class:`MantisSystem` on the shared clock.

    Construction delegates to :class:`MantisSystem` -- the single
    source of component wiring -- rather than re-assembling ASIC,
    driver, and agent by hand; ``asic``/``driver``/``agent`` remain
    direct attributes for the established call sites.
    """

    def __init__(
        self,
        index: int,
        artifacts: CompiledArtifacts,
        clock: SimClock,
        num_ports: int,
        cost_model: Optional[DriverCostModel],
        pacing_sleep_us: float,
        execution_mode: Optional[str] = None,
        poll_batching: bool = False,
        seed: Optional[int] = None,
        record_timeline: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan=None,
        verify_commits: bool = False,
    ):
        self.index = index
        # Each pipeline owns its program instance so runtime state
        # (entries, registers) is fully disjoint; the rest of the
        # artifact bundle (spec, sources) is immutable and shared.
        self.system = MantisSystem(
            replace(artifacts, p4=artifacts.p4.clone()),
            clock=clock,
            num_ports=num_ports,
            cost_model=cost_model,
            pacing_sleep_us=pacing_sleep_us,
            record_timeline=record_timeline,
            seed=index if seed is None else seed,
            execution_mode=execution_mode,
            retry_policy=retry_policy,
            fault_plan=fault_plan,
            verify_commits=verify_commits,
            poll_batching=poll_batching,
        )
        self.asic = self.system.asic
        self.driver = self.system.driver
        self.agent = self.system.agent
        self.fault_injector = self.system.fault_injector

    def process_batch(self, packets, times=None, sink=None):
        """Burst-mode entry point for this pipeline's private ASIC."""
        return self.asic.process_batch(packets, times=times, sink=sink)


class MultiPipelineSwitch:
    """N pipelines of one program on a shared clock.

    ``fault_plan`` may be a single :class:`~repro.faults.FaultPlan`
    (armed on every pipeline -- injector state lives outside the plan,
    so sharing is safe) or a mapping ``{pipeline index: plan}`` to
    target specific pipelines.  ``seed`` offsets the per-pipeline ASIC
    seeds (pipeline ``i`` gets ``seed + i``), keeping the historical
    default of seed-by-index at ``seed=0``.
    """

    def __init__(
        self,
        artifacts: CompiledArtifacts,
        n_pipelines: int = 2,
        num_ports: int = 32,
        cost_model: Optional[DriverCostModel] = None,
        pacing_sleep_us: float = 0.0,
        clock: Optional[SimClock] = None,
        execution_mode: Optional[str] = None,
        poll_batching: bool = False,
        seed: int = 0,
        record_timeline: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan=None,
        verify_commits: bool = False,
    ):
        if n_pipelines < 1:
            raise AgentError("need at least one pipeline")
        self.artifacts = artifacts
        self.clock = clock or SimClock()
        self.pipelines: List[Pipeline] = [
            Pipeline(
                index, artifacts, self.clock, num_ports,
                cost_model, pacing_sleep_us,
                execution_mode=execution_mode,
                poll_batching=poll_batching,
                seed=seed + index,
                record_timeline=record_timeline,
                retry_policy=retry_policy,
                fault_plan=self._plan_for(fault_plan, index),
                verify_commits=verify_commits,
            )
            for index in range(n_pipelines)
        ]

    @staticmethod
    def _plan_for(fault_plan, index: int):
        if fault_plan is None:
            return None
        if isinstance(fault_plan, Mapping):
            return fault_plan.get(index)
        return fault_plan

    @classmethod
    def from_source(
        cls,
        source_or_program: Union[str, P4RProgram],
        n_pipelines: int = 2,
        options: Optional[CompilerOptions] = None,
        **kwargs,
    ) -> "MultiPipelineSwitch":
        artifacts = compile_p4r(source_or_program, options)
        return cls(artifacts, n_pipelines=n_pipelines, **kwargs)

    def __len__(self) -> int:
        return len(self.pipelines)

    def __getitem__(self, index: int) -> Pipeline:
        return self.pipelines[index]

    def prologue(self) -> None:
        """Run every pipeline's agent prologue."""
        for pipeline in self.pipelines:
            pipeline.agent.prologue()

    def attach_python(
        self,
        reaction_name: str,
        factory: Callable[[Pipeline], Callable[[ReactionContext], None]],
    ) -> None:
        """Attach per-pipeline reaction implementations.

        ``factory(pipeline)`` builds one callable per pipeline, so each
        agent instance carries its own closure state (the per-line-card
        agent instances of Section 4).
        """
        for pipeline in self.pipelines:
            pipeline.agent.attach_python(reaction_name, factory(pipeline))

    def run_round(self) -> float:
        """One round-robin pass: each agent runs one dialogue
        iteration.  Returns the total busy time of the round."""
        total = 0.0
        for pipeline in self.pipelines:
            total += pipeline.agent.run_iteration()
        return total

    def run_rounds(self, rounds: int) -> None:
        for _ in range(rounds):
            self.run_round()

    def spawn_agents(
        self,
        scheduler: Scheduler,
        period_us: Optional[float] = None,
    ) -> List[AgentActor]:
        """Register every pipeline's agent as an actor on ``scheduler``.

        The scheduler must share this switch's clock.  With
        ``period_us=None`` each agent busy-loops (per-pipeline threads
        of Section 6, interleaved by timestamp); a period paces them.
        """
        if scheduler.clock is not self.clock:
            raise AgentError(
                "scheduler must share the switch clock; build it with "
                "Scheduler(clock=switch.clock)"
            )
        actors = []
        for pipeline in self.pipelines:
            actor = AgentActor(
                pipeline.agent, period_us=period_us,
                name=f"pipeline{pipeline.index}.agent",
            )
            scheduler.spawn(actor)
            actors.append(actor)
        return actors

    # ---- cross-pipeline synchronization (the paper's future work) ----

    def run_round_synchronized(self) -> float:
        """One round with *approximately synchronized* commits across
        pipelines -- an exploration of the cross-pipeline consistency
        the paper explicitly leaves as future work (Section 5).

        Measurement and reaction execution run per pipeline as usual,
        but every vv commit is deferred and then issued back to back,
        shrinking the cross-pipeline inconsistency window from a full
        round (many tens of microseconds) to roughly one master-init
        write per pipeline.  Returns the skew window: the simulated
        time from the completion of the first commit to the completion
        of the last (0.0 with a single pipeline) -- the span during
        which pipelines disagree about the active version.
        """
        for pipeline in self.pipelines:
            pipeline.agent.run_iteration(commit=False)
        first_done: Optional[float] = None
        for pipeline in self.pipelines:
            pipeline.agent.commit()
            if first_done is None:
                first_done = self.clock.now
        return self.clock.now - (first_done or self.clock.now)
