"""Event-driven fabric runtime.

One :class:`Scheduler` hosts the shared clock and event queue; agents,
host timers, and link events interleave on its single timeline.  See
:mod:`repro.runtime.scheduler` for the concurrency model.
"""

from repro.runtime.scheduler import (
    Actor,
    AgentActor,
    CallbackActor,
    DEFAULT_MAX_ITERATIONS,
    Scheduler,
)

__all__ = [
    "Actor",
    "AgentActor",
    "CallbackActor",
    "DEFAULT_MAX_ITERATIONS",
    "Scheduler",
]
