"""The fabric runtime: one scheduler, one timeline, many actors.

The paper's agents are independent per-component threads (Sections
4-6): one Mantis agent per pipeline/line card, each busy-looping its
dialogue against its own driver while the data plane keeps moving.
The reproduction models that concurrency on a single simulated
timeline: a :class:`Scheduler` owns the shared
:class:`~repro.switch.clock.SimClock` and the discrete-event
:class:`~repro.net.events.EventQueue`, and interleaves *actors* --
periodic control-plane work such as agent dialogue iterations -- with
the packet events of the queue.

Actors and events split the timeline by role:

- **events** (the :class:`EventQueue`) are the data plane plus
  anything needing *exact* timestamps: packet arrivals, departures,
  host timers, and the control-plane service's op applies/completions
  (``repro.ctrl``).  They run whenever the clock passes their
  timestamp -- including *mid-actor*, because every clock advance
  (each driver operation inside an agent iteration) notifies the
  queue via a clock listener.  This is how a table update can commit
  between two packets of the same burst, and how a pipelined driver
  op can complete (and a live legacy client can arrive) in the middle
  of an agent iteration.
- **actors** are the control plane: an actor's :meth:`Actor.fire`
  runs once at its scheduled time and returns the absolute time of its
  next turn (or ``None`` to retire).  An agent actor fires one
  dialogue iteration -- which advances the clock by the iteration's
  own driver/CPU cost, plus any pacing sleep -- and reschedules itself
  at the new ``clock.now``, reproducing the hardware agent's
  busy-loop; a paced agent naturally yields the gap to other actors
  and to packet events.

Determinism: actors due at the same instant fire in arming order
(FIFO), and the event queue keeps its own FIFO contract, so an
N-switch fabric run is a pure function of its inputs.

Scalability: every per-event operation is O(1) in the number of
registered actors.  Actor records live in a dict keyed by actor
identity (``arm``/``cancel`` do one hash lookup, not a scan), and
actors due at the same instant fire as one *batched wakeup*: the run
loop advances the clock once, pops the whole equal-timestamp cohort
off the heap in FIFO order, and fires it back to back -- with 20 or
200 switches armed at t=0 the scheduler does one advance and one heap
sweep, not N interleaved peek/advance cycles.  Per-actor fire counts
(:meth:`Scheduler.actor_stats`) make fleet runs debuggable without
rerunning.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.switch.clock import SimClock

_INFINITY = float("inf")

#: Per-run iteration ceiling for agent actors -- same guard as the
#: legacy ``MantisAgent.run_until`` busy-loop, so a zero-cost dialogue
#: cannot wedge the scheduler.
DEFAULT_MAX_ITERATIONS = 10_000_000


class Actor:
    """Schedulable unit of control-plane work.

    Subclasses implement :meth:`fire`; the scheduler calls it with the
    current simulated time and expects the absolute time of the next
    turn, or ``None`` to stop being scheduled.
    """

    def fire(self, now_us: float) -> Optional[float]:  # pragma: no cover
        raise NotImplementedError

    def on_armed(self, at_us: float) -> None:
        """Hook invoked when the scheduler (re)arms this actor --
        e.g. to reset a per-run iteration budget."""


class CallbackActor(Actor):
    """Adapter: a plain callable as an actor.

    ``fn(now_us)`` may return the next absolute fire time; with
    ``period_us`` set, a ``None`` return reschedules at
    ``now + period_us`` instead of retiring.
    """

    def __init__(
        self,
        fn: Callable[[float], Optional[float]],
        period_us: Optional[float] = None,
        name: str = "callback",
    ):
        self.fn = fn
        self.period_us = period_us
        self.name = name

    def fire(self, now_us: float) -> Optional[float]:
        result = self.fn(now_us)
        if result is not None:
            return result
        if self.period_us is not None:
            return now_us + self.period_us
        return None


class AgentActor(Actor):
    """One Mantis agent as a scheduled actor.

    Each turn runs one dialogue iteration; the iteration itself
    advances the shared clock by its measured cost (driver operations,
    interpreted reaction expressions, pacing sleep), and the actor
    reschedules at the resulting ``clock.now`` -- i.e. at
    ``fire_time + iteration_cost + pacing``.  With ``period_us`` set
    the agent instead runs at a fixed cadence (turns are skipped-free:
    the next turn is ``max(now, previous_turn + period)``).

    ``max_iterations`` bounds the iterations of one arming (one
    ``run_until`` call), mirroring the legacy busy-loop's guard.

    ``resilient=True`` absorbs :class:`~repro.errors.DriverError`
    raised by an iteration (counted in :attr:`errors`) instead of
    letting it unwind the whole fabric run -- the hardware agent's
    stance under fault injection: log, stay scheduled, retry next
    turn.  Other exceptions still propagate.
    """

    def __init__(
        self,
        agent,
        period_us: Optional[float] = None,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        name: str = "agent",
        resilient: bool = False,
    ):
        self.agent = agent
        self.period_us = period_us
        self.max_iterations = max_iterations
        self.name = name
        self.resilient = resilient
        self.errors = 0
        self._budget = max_iterations
        self._armed_at = 0.0

    def on_armed(self, at_us: float) -> None:
        self._budget = self.max_iterations
        self._armed_at = at_us

    def fire(self, now_us: float) -> Optional[float]:
        if self._budget <= 0:
            return None
        self._budget -= 1
        if self.resilient:
            from repro.errors import DriverError

            try:
                self.agent.run_iteration()
            except DriverError:
                self.errors += 1
        else:
            self.agent.run_iteration()
        clock_now = self.agent.driver.clock.now
        if self._budget <= 0:
            return None
        if self.period_us is not None:
            return max(clock_now, now_us + self.period_us)
        return clock_now


class Scheduler:
    """Shared timeline for an N-switch fabric.

    Owns the :class:`SimClock` and the :class:`EventQueue`, registers
    the clock listener that drains due events after every advance
    (preserving the per-driver-op interleaving of the single-switch
    simulator), and runs actors in timestamp order with FIFO
    tie-breaking.
    """

    def __init__(self, clock: Optional[SimClock] = None):
        # Local import: repro.net's package init pulls in the host and
        # simulator modules, which import this runtime layer back.
        from repro.net.events import EventQueue

        self.clock = clock or SimClock()
        self.events = EventQueue()
        self.clock.add_listener(self._on_clock)
        # Actor heap entries are (time, seq, record); a record whose
        # entry field no longer matches the popped triple is stale
        # (re-armed or cancelled) and skipped lazily.
        self._heap: List[Tuple[float, int, "_ActorRecord"]] = []
        self._seq = itertools.count()
        # Indexed by actor identity: arm/cancel are one dict lookup
        # regardless of fleet size (records hold a strong reference,
        # so an id is never reused while registered).
        self._records: Dict[int, "_ActorRecord"] = {}
        self.actor_fires = 0

    # ---- events ------------------------------------------------------------

    def _on_clock(self, now_us: float) -> None:
        self.events.drain(now_us)

    def at(self, time_us: float, fn: Callable[[float], None]) -> None:
        """One-shot event at an absolute time (link failures, horizon
        markers, scripted scenario steps)."""
        self.events.schedule(time_us, fn)

    def after(self, delay_us: float, fn: Callable[[float], None]) -> None:
        """One-shot event ``delay_us`` from now."""
        if delay_us < 0:
            raise SimulationError(f"cannot schedule {delay_us} us in the past")
        self.events.schedule(self.clock.now + delay_us, fn)

    def call_soon(self, fn: Callable[[float], None]) -> None:
        """One-shot event at the current instant, deferred to the next
        event drain -- lets code running inside an event callback (a
        control-plane completion, a backpressure drain notification)
        queue follow-up work without re-entering mid-callback."""
        self.events.schedule(self.clock.now, fn)

    # ---- actors ------------------------------------------------------------

    def spawn(self, actor: Actor, at_us: Optional[float] = None) -> Actor:
        """Register an actor and arm it (default: fire at ``now``).

        Spawning an already-registered actor just re-arms it."""
        if id(actor) not in self._records:
            self._records[id(actor)] = _ActorRecord(actor)
        self.arm(actor, self.clock.now if at_us is None else at_us)
        return actor

    def _record_for(self, actor: Actor) -> "_ActorRecord":
        record = self._records.get(id(actor))
        if record is None:
            raise SimulationError(f"actor {actor!r} was never spawned")
        return record

    def arm(self, actor: Actor, at_us: Optional[float] = None) -> None:
        """(Re)schedule an actor's next turn; resets its per-run
        state via :meth:`Actor.on_armed`."""
        record = self._record_for(actor)
        time_us = self.clock.now if at_us is None else at_us
        entry = (time_us, next(self._seq), record)
        record.entry = entry
        heapq.heappush(self._heap, entry)
        actor.on_armed(time_us)

    def cancel(self, actor: Actor) -> None:
        """Retire an actor (its pending turn becomes a no-op)."""
        record = self._record_for(actor)
        record.entry = None

    def actor_stats(self) -> Dict[str, int]:
        """Per-actor fire counts keyed by actor name (fires summed
        when names collide) -- the ``run-fabric`` debuggability hook."""
        stats: Dict[str, int] = {}
        for record in self._records.values():
            name = getattr(record.actor, "name", None) or repr(record.actor)
            stats[name] = stats.get(name, 0) + record.fires
        return stats

    def _peek_actor(self) -> Tuple[float, Optional["_ActorRecord"]]:
        heap = self._heap
        while heap:
            time_us, seq, record = heap[0]
            if record.entry is not None and record.entry[1] == seq:
                return time_us, record
            heapq.heappop(heap)  # stale: re-armed or cancelled
        return _INFINITY, None

    def _pop_batch(
        self, time_us: float
    ) -> List[Tuple[float, int, "_ActorRecord"]]:
        """Pop every live entry due at exactly ``time_us`` (FIFO by
        arming sequence -- the heap yields equal times in seq order)."""
        heap = self._heap
        batch: List[Tuple[float, int, "_ActorRecord"]] = []
        while heap and heap[0][0] == time_us:
            entry = heapq.heappop(heap)
            record = entry[2]
            if record.entry is not None and record.entry[1] == entry[1]:
                batch.append(entry)
        return batch

    def _fire_record(self, record: "_ActorRecord") -> None:
        """Fire one actor whose heap entry is already popped."""
        record.entry = None
        record.fires += 1
        self.actor_fires += 1
        next_time = record.actor.fire(self.clock.now)
        if next_time is None:
            return
        if next_time < self.clock.now:
            next_time = self.clock.now
        entry = (next_time, next(self._seq), record)
        record.entry = entry
        heapq.heappush(self._heap, entry)

    # ---- the run loop ------------------------------------------------------

    def run_until(
        self, horizon_us: Optional[float] = None, actors: bool = True
    ) -> None:
        """Advance the fabric to ``horizon_us``.

        Actors fire while their turn time is strictly *before* the
        horizon (matching the legacy agent busy-loop's
        ``while now < T``); packet events run up to and including it,
        plus any events the final actor turn dragged past it (the
        legacy overshoot-then-drain tail).  ``actors=False`` freezes
        the control plane and runs only packet events -- the
        "no reactive agent" baseline.  ``horizon_us=None`` runs to
        quiescence: until no actor wants a turn and no event is
        pending.
        """
        clock, events = self.clock, self.events
        horizon = _INFINITY if horizon_us is None else horizon_us
        while True:
            if actors:
                actor_time, record = self._peek_actor()
            else:
                actor_time, record = _INFINITY, None
            event_time = events.peek_time()
            event_time = _INFINITY if event_time is None else event_time
            if record is not None and actor_time < horizon \
                    and actor_time <= event_time:
                if actor_time > clock.now:
                    clock.advance_to(actor_time)  # listener drains en route
                # Batched wakeup: one clock advance, then the whole
                # equal-timestamp cohort fires back to back in arming
                # order.  A member cancelled or re-armed by an earlier
                # member is skipped via the entry-identity check; an
                # event a member scheduled *behind* the batch instant
                # runs before the next member, exactly as the
                # one-at-a-time loop would have interleaved it.
                for entry in self._pop_batch(actor_time):
                    batch_record = entry[2]
                    if batch_record.entry is None \
                            or batch_record.entry[1] != entry[1]:
                        continue  # cancelled/re-armed mid-batch
                    straggler = events.peek_time()
                    if straggler is not None and straggler < actor_time:
                        events.drain(clock.now)
                    self._fire_record(batch_record)
                continue
            if event_time <= horizon and event_time < _INFINITY:
                if event_time > clock.now:
                    clock.advance_to(event_time)  # listener runs the event
                else:
                    events.drain(clock.now)
                continue
            break
        if horizon < _INFINITY and clock.now < horizon:
            clock.advance_to(horizon)
        events.drain(clock.now)


class _ActorRecord:
    """Scheduler-internal actor bookkeeping."""

    __slots__ = ("actor", "entry", "fires")

    def __init__(self, actor: Actor):
        self.actor = actor
        self.entry: Optional[Tuple[float, int, "_ActorRecord"]] = None
        self.fires = 0

    def __lt__(self, other: "_ActorRecord") -> bool:  # heap tie-break safety
        return id(self) < id(other)
