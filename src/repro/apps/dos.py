"""Use case #1: flow-size estimation and DoS mitigation (Section 8.3.1).

The setup mirrors Poseidon's per-sender statistics and rate-limiting
defense:

- the data plane exports the current packet's source IP (an ``ing``
  field argument) and a running total byte counter (a ``reg``
  argument);
- the reaction attributes the marginal byte-count increase to the
  sampled source, estimates its rate as (bytes so far) / (now - first
  seen), and blocks senders exceeding a threshold after a minimum
  observation duration;
- blocking installs a drop rule into the malleable ``blocklist``
  table through the three-phase protocol, so mitigation is atomic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.agent.agent import ReactionContext
from repro.net.sim import NetworkSim, PortConfig
from repro.switch.asic import STANDARD_METADATA_P4
from repro.system import MantisSystem

DOS_P4R = STANDARD_METADATA_P4 + """
header_type ipv4_t {
    fields { srcAddr : 32; dstAddr : 32; proto : 8; }
}
header ipv4_t ipv4;
header_type tcp_t { fields { seq : 32; } }
header tcp_t tcp;
header_type acct_t { fields { total : 32; } }
metadata acct_t acct;

register total_bytes { width : 32; instance_count : 1; }

action allow() { no_op(); }
action block() { drop(); }

malleable table blocklist {
    reads { ipv4.srcAddr : exact; }
    actions { allow; block; }
    default_action : allow();
    size : 1024;
}

action account() {
    register_read(acct.total, total_bytes, 0);
    add(acct.total, acct.total, standard_metadata.packet_length);
    register_write(total_bytes, 0, acct.total);
}
table accounting {
    actions { account; }
    default_action : account();
}

action forward(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
table route {
    reads { ipv4.dstAddr : exact; }
    actions { forward; _drop; }
    default_action : _drop();
    size : 256;
}

control ingress {
    apply(blocklist);
    apply(accounting);
    apply(route);
}

reaction estimate_and_block(ing ipv4.srcAddr, reg total_bytes[0:0]) {
    // Body implemented host-side (attached as a Python callable, the
    // reproduction's equivalent of the paper's dynamically loaded C):
    // it needs a growable hash table of sources.
}
"""


@dataclass
class SenderStats:
    first_seen_us: float
    bytes_attributed: int = 0
    blocked: bool = False

    def rate_gbps(self, now_us: float) -> float:
        elapsed = now_us - self.first_seen_us
        if elapsed <= 0:
            return 0.0
        return self.bytes_attributed * 8 / (elapsed * 1000.0)


class DosMitigationApp:
    """Wires the DoS P4R program to its reaction and exposes the
    per-sender estimates."""

    def __init__(
        self,
        system: Optional[MantisSystem] = None,
        threshold_gbps: float = 1.0,
        min_duration_us: float = 20.0,
        num_ports: int = 64,
    ):
        self.system = system or MantisSystem.from_source(
            DOS_P4R, num_ports=num_ports
        )
        self.threshold_gbps = threshold_gbps
        self.min_duration_us = min_duration_us
        self.senders: Dict[int, SenderStats] = {}
        self.block_times: Dict[int, float] = {}
        self._prev_total = 0
        self._wrap_mask = (1 << 32) - 1
        self.samples = 0

        self.system.agent.attach_python(
            "estimate_and_block", self._reaction
        )

    def prologue(self) -> None:
        self.system.agent.prologue()

    def add_route(self, dst_addr: int, port: int) -> None:
        self.system.driver.add_entry("route", [dst_addr], "forward", [port])

    def estimate(self, src_addr: int) -> int:
        stats = self.senders.get(src_addr)
        return stats.bytes_attributed if stats else 0

    def is_blocked(self, src_addr: int) -> bool:
        stats = self.senders.get(src_addr)
        return bool(stats and stats.blocked)

    # ---- the reaction ------------------------------------------------------

    def _reaction(self, ctx: ReactionContext) -> None:
        src = ctx.args["ipv4_srcAddr"]
        total = ctx.args["total_bytes"][0]
        self.samples += 1
        marginal = (total - self._prev_total) & self._wrap_mask
        self._prev_total = total
        if src == 0 or marginal == 0:
            return
        stats = self.senders.get(src)
        if stats is None:
            stats = SenderStats(first_seen_us=ctx.now)
            self.senders[src] = stats
        stats.bytes_attributed += marginal
        if stats.blocked:
            return
        age = ctx.now - stats.first_seen_us
        if age < self.min_duration_us:
            return
        if stats.rate_gbps(ctx.now) > self.threshold_gbps:
            ctx.table("blocklist").add([src], "block")
            stats.blocked = True
            self.block_times[src] = ctx.now


def build_dos_scenario(
    n_benign: int = 25,
    benign_rate_gbps: float = 0.08,
    attack_rate_gbps: float = 25.0,
    bottleneck_gbps: float = 10.0,
    threshold_gbps: float = 1.0,
    queue_pkts: int = 96,
    min_duration_us: float = 300.0,
    burst_size: int = 1,
    sim_factory=None,
):
    """Build the Figure 15 topology: ``n_benign`` TCP senders plus one
    UDP flooder sharing a bottleneck to a common destination.

    Benign flows are application-paced to ``benign_rate_gbps`` each
    (low-rate flows at microsecond RTTs cannot be window-limited below
    one packet per RTT).  The paper uses 250 flows at 20% of 10 Gbps;
    scale ``n_benign`` up for the full-size run.  ``burst_size > 1``
    coalesces the flooder's sends into burst events (one event-queue
    entry and one batched pipeline call per burst).

    ``sim_factory(system)`` overrides how the switch joins a network --
    e.g. ``lambda s: NetworkSim(clock=s.clock).add_switch(s)`` places
    it explicitly inside a fabric; the default is the legacy
    single-switch constructor.  The return value only needs the
    port/host attachment surface (``configure_port``/``attach_host``).
    """
    from repro.net.hosts import UdpSender
    from repro.net.tcp import TcpFlow, TcpSink

    app = DosMitigationApp(
        threshold_gbps=threshold_gbps,
        min_duration_us=min_duration_us,
        num_ports=n_benign + 8,
    )
    if sim_factory is None:
        sim = NetworkSim(app.system)
    else:
        sim = sim_factory(app.system)
    dst_port = 1
    sim.configure_port(
        dst_port,
        PortConfig(bandwidth_gbps=bottleneck_gbps, queue_capacity_pkts=queue_pkts),
    )
    dst_addr = 0x0A00FFFF
    app.add_route(dst_addr, dst_port)

    sink = TcpSink("victim")
    sim.attach_host(sink, dst_port)

    flows = []
    for index in range(n_benign):
        src_addr = 0x0A000001 + index
        # One 1500 B packet per pace interval = the target flow rate.
        pace_us = 1500 * 8 / (benign_rate_gbps * 1000.0)
        flow = TcpFlow(
            f"benign{index}",
            {"ipv4.srcAddr": src_addr, "ipv4.dstAddr": dst_addr},
            pace_interval_us=pace_us,
        )
        sink.register_flow(src_addr, flow)
        sim.attach_host(flow, 2 + index)
        flows.append(flow)

    attacker = UdpSender(
        "attacker",
        {"ipv4.srcAddr": 0x0AFF0001, "ipv4.dstAddr": dst_addr},
        rate_gbps=attack_rate_gbps,
        burst_size=burst_size,
    )
    sim.attach_host(attacker, 2 + n_benign)
    return app, sim, flows, sink, attacker
