"""Flow-size estimators (Figure 14).

Four estimators over the same packet stream, as in the paper:

- :class:`SFlowEstimator` -- control-plane sampling at 1:30000 (the
  Facebook-reported production rate), scaling samples by the rate;
- :class:`HashTableEstimator` -- a data-plane hash-indexed counter
  array (collisions merge flows);
- :class:`CountMinSketch` -- a 2-stage count-min sketch (collisions
  only ever over-count; the min reduces but does not eliminate it);
- :class:`MantisSamplingEstimator` -- the paper's reaction: the data
  plane exports the current packet's source and a total byte counter;
  every dialogue iteration attributes the *marginal* byte-count
  increase to the sampled source.  Inaccuracy is bounded by sampling
  error rather than collisions.

All estimators are vectorized with numpy so Figure 14 can run on
multi-million-packet traces; the Mantis estimator is additionally
wired into the live agent in :mod:`repro.apps.dos` (integration path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.net.flows import Trace
from repro.switch.asic import STANDARD_METADATA_P4

# Data-plane companion of :class:`CountMinSketch`: a 2-row count-min
# sketch updated per packet (two independent hash families indexing two
# counter rows), exported to the agent through a register mirror.  The
# numpy estimators above stay the vectorized path for multi-million
# packet traces; this program is the live-pipeline path, sized so both
# can be cross-checked on the same stream.
SKETCH_P4R = STANDARD_METADATA_P4 + """
header_type ipv4_t {
    fields { srcAddr : 32; dstAddr : 32; proto : 8; }
}
header ipv4_t ipv4;
header_type cm_t { fields { idx0 : 16; idx1 : 16; val0 : 32; val1 : 32; } }
metadata cm_t cm;

register cm_row0 { width : 32; instance_count : 64; }
register cm_row1 { width : 32; instance_count : 64; }

field_list cm_fl { ipv4.srcAddr; }
field_list_calculation cm_hash0 {
    input { cm_fl; }
    algorithm : crc16;
    output_width : 16;
}
field_list_calculation cm_hash1 {
    input { cm_fl; }
    algorithm : crc32_lsb;
    output_width : 16;
}

action cm_update() {
    modify_field_with_hash_based_offset(cm.idx0, 0, cm_hash0, 64);
    modify_field_with_hash_based_offset(cm.idx1, 0, cm_hash1, 64);
    register_read(cm.val0, cm_row0, cm.idx0);
    add(cm.val0, cm.val0, standard_metadata.packet_length);
    register_write(cm_row0, cm.idx0, cm.val0);
    register_read(cm.val1, cm_row1, cm.idx1);
    add(cm.val1, cm.val1, standard_metadata.packet_length);
    register_write(cm_row1, cm.idx1, cm.val1);
}
table cm_sketch {
    actions { cm_update; }
    default_action : cm_update();
}

action forward(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
table route {
    reads { ipv4.dstAddr : exact; }
    actions { forward; _drop; }
    default_action : _drop();
    size : 256;
}

control ingress {
    apply(cm_sketch);
    apply(route);
}

reaction cm_watch(reg cm_row0[0:63]) {
    // Host-side implementation: read the sketch rows, take the min.
}
"""


def _hash_ips(ips: np.ndarray, entries: int, seed: int) -> np.ndarray:
    """Deterministic 32-bit integer hash (splitmix-style), mod table."""
    mixer = (seed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ips.astype(np.uint64) + np.uint64(mixer)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    x = x ^ (x >> np.uint64(31))
    return (x % np.uint64(entries)).astype(np.int64)


class HashTableEstimator:
    """Hash-indexed byte counters; colliding flows share a counter."""

    def __init__(self, entries: int = 8192, seed: int = 1):
        self.entries = entries
        self.seed = seed
        self.counters = np.zeros(entries, dtype=np.int64)

    def process(self, trace: Trace) -> None:
        slots = _hash_ips(trace.src_ips, self.entries, self.seed)
        np.add.at(self.counters, slots, trace.sizes.astype(np.int64))

    def estimate(self, src_ip: int) -> int:
        slot = _hash_ips(np.array([src_ip], dtype=np.uint32),
                         self.entries, self.seed)[0]
        return int(self.counters[slot])


class CountMinSketch:
    """Multi-stage count-min sketch (paper uses 2 stages)."""

    def __init__(self, entries: int = 8192, stages: int = 2, seed: int = 1):
        self.entries = entries
        self.stages = stages
        self.seed = seed
        self.counters = np.zeros((stages, entries), dtype=np.int64)

    def process(self, trace: Trace) -> None:
        sizes = trace.sizes.astype(np.int64)
        for stage in range(self.stages):
            slots = _hash_ips(trace.src_ips, self.entries,
                              self.seed + 101 * stage)
            np.add.at(self.counters[stage], slots, sizes)

    def estimate(self, src_ip: int) -> int:
        ip = np.array([src_ip], dtype=np.uint32)
        return int(
            min(
                self.counters[stage][
                    _hash_ips(ip, self.entries, self.seed + 101 * stage)[0]
                ]
                for stage in range(self.stages)
            )
        )


class SFlowEstimator:
    """Uniform packet sampling at 1:N, scaled back up by N."""

    def __init__(self, sample_rate: int = 30000, seed: int = 1):
        self.sample_rate = sample_rate
        self.seed = seed
        self.sampled_bytes: Dict[int, int] = {}

    def process(self, trace: Trace) -> None:
        rng = np.random.default_rng(self.seed)
        picks = rng.random(len(trace)) < (1.0 / self.sample_rate)
        for src, size in zip(
            trace.src_ips[picks].tolist(), trace.sizes[picks].tolist()
        ):
            self.sampled_bytes[src] = self.sampled_bytes.get(src, 0) + size

    def estimate(self, src_ip: int) -> int:
        return self.sampled_bytes.get(src_ip, 0) * self.sample_rate


class MantisSamplingEstimator:
    """The paper's reaction-based estimator.

    Each dialogue iteration polls (current packet's source, total byte
    counter) and attributes the marginal byte increase to that source.
    ``poll_every`` models the achieved sampling granularity (~1 in 5
    packets at the paper's ~10 us loop on their traffic).

    The vectorized `process` is equivalent to running the reaction at
    a fixed packet stride; the live-agent integration is exercised in
    :mod:`repro.apps.dos` and its tests.
    """

    def __init__(self, poll_every: int = 5, phase: int = 0):
        self.poll_every = poll_every
        self.phase = phase
        self.flow_bytes: Dict[int, int] = {}

    def process(self, trace: Trace) -> None:
        sizes = trace.sizes.astype(np.int64)
        cumulative = np.cumsum(sizes)
        picks = np.arange(self.phase, len(sizes), self.poll_every)
        if len(picks) == 0:
            return
        previous_total = 0
        for index in picks.tolist():
            total = int(cumulative[index])
            src = int(trace.src_ips[index])
            self.flow_bytes[src] = self.flow_bytes.get(src, 0) + (
                total - previous_total
            )
            previous_total = total

    def estimate(self, src_ip: int) -> int:
        return self.flow_bytes.get(src_ip, 0)


@dataclass
class ErrorBucket:
    """Average relative estimation error for flows in a size bucket."""

    lo_bytes: int
    hi_bytes: int
    flows: int
    avg_rel_error: float


def estimation_errors(
    estimator, trace: Trace, bucket_edges=None
) -> list:
    """Per-size-bucket average relative error (the Figure 14 series)."""
    if bucket_edges is None:
        bucket_edges = [0, 1_000, 10_000, 100_000, 1_000_000, 10**12]
    truth = trace.true_flow_sizes()
    buckets = []
    for lo, hi in zip(bucket_edges[:-1], bucket_edges[1:]):
        errors = []
        for src, true_bytes in truth.items():
            if lo <= true_bytes < hi:
                estimate = estimator.estimate(src)
                errors.append(abs(estimate - true_bytes) / true_bytes)
        if errors:
            buckets.append(
                ErrorBucket(lo, hi, len(errors), sum(errors) / len(errors))
            )
    return buckets


def overall_error(estimator, trace: Trace) -> float:
    """Mean relative error over all flows."""
    truth = trace.true_flow_sizes()
    errors = [
        abs(estimator.estimate(src) - true_bytes) / true_bytes
        for src, true_bytes in truth.items()
    ]
    return sum(errors) / len(errors)
