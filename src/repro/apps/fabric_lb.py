"""Fleet-scale ECMP rebalancing on a fat-tree (Section 8.3.3 at
fabric scale).

Every edge and aggregation switch of a :class:`~repro.net.fabric_builder.FatTree`
runs the same Mantis program: destinations resolve in a ``route``
table whose multi-path entries hash into an uplink select table, and
the hash inputs are malleable fields a per-switch agent can shift at
runtime.  The workload is adversarially polarized -- every flow's
service address is chosen (by CRC search) to collide into one hash
bucket -- so static hashing pushes all inter-pod traffic through a
single core and the hot links run at ~4x the balanced load.  Each
switch's agent independently detects the imbalance (MAD over its
uplink egress counters, exactly the single-switch
:class:`~repro.apps.ecmp.HashPolarizationApp` loop) and shifts its
hash inputs to a flow-varying configuration; the per-flow source
ports are pre-searched so the shifted hash spreads the same flows
evenly.  One :class:`~repro.runtime.Scheduler` drives all ~20 agents
against the shared fabric timeline.

``run_fattree_rebalance`` compares ``max`` inter-switch link
utilization with and without the reactive agents -- the headline
number of ``BENCH_fabric.json``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.agent.agent import ReactionContext
from repro.analysis.stats import mean, mean_absolute_deviation
from repro.errors import SimulationError
from repro.net.fabric_builder import BuiltFabric, FatTree
from repro.net.hosts import Host, SinkHost
from repro.net.routing import install_routes
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.hashing import compute_hash
from repro.switch.packet import Packet
from repro.system import MantisSystem

NUM_BUCKETS = 4
DATA_PROTO = 17
SERVICE_BASE = 0x0B000000

FABRIC_P4R = STANDARD_METADATA_P4 + """
header_type ipv4_t {
    fields { srcAddr : 32; dstAddr : 32; proto : 8; }
}
header ipv4_t ipv4;
header_type l4_t { fields { sport : 16; dport : 16; } }
header l4_t l4;
header_type lb_t { fields { bucket : 16; cnt : 32; } }
metadata lb_t lb;

register egr_count { width : 32; instance_count : 16; }

malleable field hash_in1 {
    width : 32; init : ipv4.dstAddr;
    alts { ipv4.dstAddr, ipv4.srcAddr }
}
malleable field hash_in2 {
    width : 32; init : ipv4.proto;
    alts { ipv4.proto, l4.sport }
}

field_list fab_fl { ${hash_in1}; ${hash_in2}; }
field_list_calculation fab_hash {
    input { fab_fl; }
    algorithm : crc16;
    output_width : 16;
}

action forward(port) {
    modify_field(standard_metadata.egress_spec, port);
    modify_field(lb.bucket, 0xffff);
}
action to_upper() {
    modify_field_with_hash_based_offset(lb.bucket, 0, fab_hash, 4);
}
action _drop() { drop(); }
action skip() { no_op(); }

table route {
    reads { ipv4.dstAddr : exact; }
    actions { forward; to_upper; _drop; }
    default_action : _drop();
    size : 256;
}
table up_select {
    reads { lb.bucket : exact; }
    actions { forward; skip; _drop; }
    default_action : _drop();
    size : 16;
}

action count_egress() {
    register_read(lb.cnt, egr_count, standard_metadata.egress_port);
    add(lb.cnt, lb.cnt, 1);
    register_write(egr_count, standard_metadata.egress_port, lb.cnt);
}
table egress_counter {
    actions { count_egress; }
    default_action : count_egress();
}

control ingress {
    apply(route);
    apply(up_select);
}
control egress {
    apply(egress_counter);
}

reaction fab_watch(reg egr_count[0:15]) {
    // Host side: MAD over the uplink marginals + hash-input shifting.
}
"""


def _hash_bucket(in1: int, in2: int) -> int:
    """The bucket ``to_upper`` computes: malleable inputs are hashed at
    their container width (32), whatever the active alt's native
    width."""
    return compute_hash("crc16", [(in1, 32), (in2, 32)], 16) % NUM_BUCKETS


def find_colliding_addr(base: int, proto: int = DATA_PROTO,
                        bucket: int = 0, limit: int = 1 << 16) -> int:
    """Smallest ``base + n`` whose (dstAddr, proto) hash lands in
    ``bucket`` -- the adversarial service-address search."""
    for offset in range(limit):
        addr = base + offset
        if _hash_bucket(addr, proto) == bucket:
            return addr
    raise SimulationError(f"no colliding address under {base:#x}")


def find_spreading_sport(dst_addr: int, bucket: int, base: int = 1024,
                         limit: int = 1 << 16) -> int:
    """Smallest sport >= ``base`` whose (dstAddr, sport) hash lands in
    ``bucket`` -- so the *shifted* configuration spreads the flows."""
    for offset in range(limit):
        sport = base + offset
        if _hash_bucket(dst_addr, sport) == bucket:
            return sport
    raise SimulationError(f"no spreading sport for {dst_addr:#x}")


@dataclass
class BalanceSample:
    time_us: float
    marginals: List[int]
    imbalance: float


class FabricLbApp:
    """Per-switch MAD-driven hash rebalancer (one per fabric agent)."""

    def __init__(
        self,
        system: MantisSystem,
        uplink_ports: Tuple[int, ...],
        imbalance_threshold: float = 0.5,
        persistence: int = 2,
        min_window_packets: int = 8,
        name: str = "switch",
    ):
        self.system = system
        self.name = name
        self.uplink_ports = list(uplink_ports)
        self.imbalance_threshold = imbalance_threshold
        self.persistence = persistence
        self.min_window_packets = min_window_packets
        self._prev_counts: Dict[int, int] = {}
        self._bad_iterations = 0
        self.samples: List[BalanceSample] = []
        self.shift_times: List[float] = []
        spec = system.spec
        alts1 = len(spec.fields["hash_in1"].alts)
        alts2 = len(spec.fields["hash_in2"].alts)
        self.configs = list(itertools.product(range(alts1), range(alts2)))
        self.config_index = 0
        system.agent.attach_python("fab_watch", self._reaction)

    def _reaction(self, ctx: ReactionContext) -> None:
        if len(self.uplink_ports) < 2:
            return
        counts = ctx.args["egr_count"]
        marginals = []
        for port in self.uplink_ports:
            current = counts.get(port, 0)
            marginals.append(
                (current - self._prev_counts.get(port, 0)) & 0xFFFFFFFF
            )
            self._prev_counts[port] = current
        if sum(marginals) < self.min_window_packets:
            return
        average = mean(marginals)
        imbalance = (
            mean_absolute_deviation(marginals) / average if average else 0.0
        )
        self.samples.append(BalanceSample(ctx.now, marginals, imbalance))
        if imbalance > self.imbalance_threshold:
            self._bad_iterations += 1
        else:
            self._bad_iterations = 0
        if self._bad_iterations >= self.persistence:
            self.config_index = (self.config_index + 1) % len(self.configs)
            alt1, alt2 = self.configs[self.config_index]
            ctx.write("hash_in1", alt1)
            ctx.write("hash_in2", alt2)
            self.shift_times.append(ctx.now)
            self._bad_iterations = 0


class MultiFlowSender(Host):
    """Open-loop host carrying several constant-rate flows on one
    port (a server with multiple outgoing connections)."""

    def __init__(self, name: str):
        super().__init__(name)
        self.flows: List[Dict[str, object]] = []
        self.tx_packets = 0
        self._running = False

    def add_flow(self, fields: Dict[str, int], rate_gbps: float,
                 size_bytes: int = 1000) -> None:
        self.flows.append({
            "fields": dict(fields),
            "size_bytes": size_bytes,
            "interval_us": size_bytes * 8 / (rate_gbps * 1000.0),
        })

    def start(self, at_us: Optional[float] = None) -> None:
        self._running = True
        start = self.sim.clock.now if at_us is None else at_us
        for flow in self.flows:
            self.sim.events.schedule(
                start, lambda now, f=flow: self._tick(f, now)
            )

    def stop(self) -> None:
        self._running = False

    def _tick(self, flow: Dict[str, object], now: float) -> None:
        if not self._running:
            return
        packet = Packet(dict(flow["fields"]), size_bytes=flow["size_bytes"])
        self.sim.send_to_switch(packet, self.port)
        self.tx_packets += 1
        self.sim.events.schedule(now + flow["interval_us"], self._tick_for(flow))

    def _tick_for(self, flow):
        return lambda now: self._tick(flow, now)


@dataclass
class FatTreeScenario:
    """A wired FatTree(k) rebalancing run, ready to drive."""

    spec: FatTree
    built: BuiltFabric
    apps: Dict[str, FabricLbApp]
    senders: List[MultiFlowSender]
    sinks: Dict[str, SinkHost]
    aliases: Dict[int, str] = field(default_factory=dict)
    route_summary: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def fabric(self):
        return self.built.fabric


def build_fattree_rebalance(
    k: int = 4,
    mode: str = "hashed",
    flows_per_host: int = 4,
    rate_gbps_per_flow: float = 1.0,
    imbalance_threshold: float = 0.5,
    persistence: int = 2,
    min_window_packets: int = 8,
    seed: int = 0,
    route_bulk: bool = True,
) -> FatTreeScenario:
    """FatTree(k) with the polarized inter-pod traffic matrix.

    Hosts in the first ``k/2`` pods each run ``flows_per_host`` flows
    to the service alias of their positional partner in the upper
    pods.  Every alias is CRC-searched to collide into hash bucket 0
    (total polarization under the initial (dstAddr, proto) inputs);
    every flow's sport is CRC-searched so the shifted
    (dstAddr, sport) inputs spread the flows round-robin across all
    buckets.
    """
    spec = FatTree(k)
    built = spec.build(FABRIC_P4R)
    half = spec.half

    apps: Dict[str, FabricLbApp] = {}
    for name, switch_spec in spec.switches.items():
        apps[name] = FabricLbApp(
            built.system(name),
            switch_spec.uplink_ports,
            imbalance_threshold=imbalance_threshold,
            persistence=persistence,
            min_window_packets=min_window_packets,
            name=name,
        )

    # Service aliases: partner host's alias collides into bucket 0.
    aliases: Dict[int, str] = {}
    alias_of: Dict[str, int] = {}
    for pod in range(half, k):
        for i in range(half):
            for m in range(half):
                host = spec.host_name(pod, i, m)
                index = (pod * half + i) * half + m
                alias = find_colliding_addr(
                    SERVICE_BASE + (index << 8), bucket=0
                )
                aliases[alias] = host
                alias_of[host] = alias

    # Prologue every agent, then install routes (static driver writes),
    # then commit the initial malleable configuration on every agent.
    for app in apps.values():
        app.system.agent.prologue()
    route_summary = install_routes(
        built, mode=mode, seed=seed, extra_dests=aliases,
        num_buckets=NUM_BUCKETS, bulk=route_bulk,
    )
    for app in apps.values():
        app.system.agent.run_iteration()

    senders: List[MultiFlowSender] = []
    sinks: Dict[str, SinkHost] = {}
    flow_index = 0
    for pod in range(half):
        for i in range(half):
            for m in range(half):
                src_name = spec.host_name(pod, i, m)
                dst_name = spec.host_name(pod + half, i, m)
                alias = alias_of[dst_name]
                sender = MultiFlowSender(src_name)
                for f in range(flows_per_host):
                    sport = find_spreading_sport(
                        alias, bucket=flow_index % NUM_BUCKETS,
                        base=1024 + 64 * flow_index,
                    )
                    sender.add_flow(
                        {
                            "ipv4.srcAddr": spec.host_addr(pod, i, m),
                            "ipv4.dstAddr": alias,
                            "ipv4.proto": DATA_PROTO,
                            "l4.sport": sport,
                            "l4.dport": 443,
                        },
                        rate_gbps=rate_gbps_per_flow,
                    )
                    flow_index += 1
                built.attach_host(src_name, sender)
                senders.append(sender)
    for pod in range(half, k):
        for i in range(half):
            for m in range(half):
                name = spec.host_name(pod, i, m)
                sink = SinkHost(name)
                built.attach_host(name, sink)
                sinks[name] = sink

    return FatTreeScenario(
        spec=spec, built=built, apps=apps, senders=senders, sinks=sinks,
        aliases=aliases, route_summary=route_summary,
    )


def run_fattree_rebalance(
    k: int = 4,
    duration_us: float = 1500.0,
    mantis: bool = True,
    mode: str = "hashed",
    flows_per_host: int = 4,
    rate_gbps_per_flow: float = 1.0,
    seed: int = 0,
    route_bulk: bool = True,
) -> Dict[str, object]:
    """One fat-tree run; returns the JSON-able summary.

    ``mantis=False`` freezes the control plane after route install --
    the static-hashing baseline the reactive fleet is measured
    against."""
    scenario = build_fattree_rebalance(
        k=k, mode=mode, flows_per_host=flows_per_host,
        rate_gbps_per_flow=rate_gbps_per_flow, seed=seed,
        route_bulk=route_bulk,
    )
    fabric = scenario.fabric
    start = fabric.clock.now
    for sender in scenario.senders:
        sender.start()
    fabric.run_until(start + duration_us, agent=mantis)

    sent = sum(sender.tx_packets for sender in scenario.senders)
    received = sum(sink.rx_packets for sink in scenario.sinks.values())
    utilizations = fabric.link_utilizations(duration_us)
    shifts = {
        name: list(app.shift_times)
        for name, app in scenario.apps.items() if app.shift_times
    }
    return {
        "scenario": "fattree-rebalance",
        "k": k,
        "mode": mode,
        "mantis": mantis,
        "switches": len(scenario.built.switches),
        "hosts": len(scenario.spec.hosts),
        "flows": sum(len(s.flows) for s in scenario.senders),
        "start_us": start,
        "duration_us": duration_us,
        "end_us": fabric.clock.now,
        "sent_packets": sent,
        "received_packets": received,
        "delivery_rate": received / sent if sent else 0.0,
        "max_link_utilization": max(utilizations.values()) if utilizations
        else 0.0,
        "mean_link_utilization": (
            mean(list(utilizations.values())) if utilizations else 0.0
        ),
        "hot_links": sorted(
            utilizations, key=utilizations.get, reverse=True
        )[:4],
        "shifting_switches": len(shifts),
        "total_shifts": sum(len(times) for times in shifts.values()),
        "first_shift_us": min(
            (times[0] for times in shifts.values()), default=None
        ),
        "agent_actor_fires": fabric.scheduler.actor_fires,
        "per_agent_fires": fabric.scheduler.actor_stats() if mantis else {},
        "per_switch": fabric.switch_summaries(),
        "route_summary": scenario.route_summary,
        # Install-path op accounting: logical entries vs coalesced
        # DMA-burst transactions actually issued per mode.
        "route_install": {
            "mode": mode,
            "bulk": route_bulk,
            "driver_ops": sum(
                s["driver_ops"] for s in scenario.route_summary.values()
            ),
            "bulk_txns": sum(
                s["bulk_txns"] for s in scenario.route_summary.values()
            ),
        },
        "drop_totals": fabric.drop_totals(),
    }


def compare_fattree(
    k: int = 4,
    duration_us: float = 1500.0,
    flows_per_host: int = 4,
    rate_gbps_per_flow: float = 1.0,
) -> Dict[str, object]:
    """Static hashing vs the Mantis fleet, same workload -- the
    rebalancing headline."""
    static = run_fattree_rebalance(
        k=k, duration_us=duration_us, mantis=False,
        flows_per_host=flows_per_host,
        rate_gbps_per_flow=rate_gbps_per_flow,
    )
    mantis = run_fattree_rebalance(
        k=k, duration_us=duration_us, mantis=True,
        flows_per_host=flows_per_host,
        rate_gbps_per_flow=rate_gbps_per_flow,
    )
    static_max = static["max_link_utilization"]
    mantis_max = mantis["max_link_utilization"]
    return {
        "scenario": "fattree-rebalance-compare",
        "k": k,
        "duration_us": duration_us,
        "static": static,
        "mantis": mantis,
        "static_max_utilization": static_max,
        "mantis_max_utilization": mantis_max,
        "improvement": (
            (static_max - mantis_max) / static_max if static_max else 0.0
        ),
    }
