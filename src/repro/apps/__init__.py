"""The paper's four use cases (Table 1 / Section 8.3), implemented on
the Mantis stack, plus the baselines they are compared against.

- :mod:`repro.apps.sketch` -- flow-size estimators: the Mantis
  sampling estimator and the sFlow / hash-table / count-min-sketch
  baselines of Figure 14.
- :mod:`repro.apps.dos` -- use case #1: flow-size estimation and DoS
  mitigation (Poseidon-style per-sender rate limiting).
- :mod:`repro.apps.failover` -- use case #2: gray-failure detection
  and route recomputation.
- :mod:`repro.apps.ecmp` -- use case #3: hash-polarization mitigation
  via runtime reconfiguration of the ECMP hash inputs (MAD-driven).
- :mod:`repro.apps.rl` -- use case #4: reinforcement learning
  (epsilon-greedy Q-learning) tuning of the DCTCP ECN marking threshold.
- :mod:`repro.apps.linkguard` -- use case #6: LinkGuardian-style
  lossy-link detection (sequence-gap probe counters) and protection
  (reroute to the parallel link / disable the lossy port).
"""

from repro.apps.sketch import (
    CountMinSketch,
    HashTableEstimator,
    MantisSamplingEstimator,
    SFlowEstimator,
    estimation_errors,
)

__all__ = [
    "CountMinSketch",
    "HashTableEstimator",
    "MantisSamplingEstimator",
    "SFlowEstimator",
    "estimation_errors",
]
