"""Use case #4: reinforcement learning in the reaction loop
(Section 8.3.4).

The DCTCP ECN marking threshold is a malleable value; the egress
pipeline marks packets whose queue depth exceeds it.  Each dialogue
iteration the agent:

1. measures state ``s_i`` (discretized queue depth) from polled
   registers,
2. receives reward ``r_i = utilization - lambda * queue_depth``
   computed from a per-port packet counter and the depth register,
3. updates ``Q(s, a)`` with off-policy TD (Q-learning, per Sutton &
   Barto), and
4. picks the next threshold with an epsilon-greedy policy and writes
   it to the malleable value.

As the paper notes, the point is not this particular model but that a
feedback loop with arbitrary CPU-side computation (here a Q table;
easily a neural network) fits the reaction abstraction directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.agent.agent import ReactionContext
from repro.net.sim import NetworkSim, PortConfig
from repro.switch.asic import STANDARD_METADATA_P4
from repro.system import MantisSystem

RL_P4R = STANDARD_METADATA_P4 + """
header_type ipv4_t { fields { srcAddr : 32; dstAddr : 32; } }
header ipv4_t ipv4;
header_type tcp_t { fields { seq : 32; } }
header tcp_t tcp;
header_type obs_t { fields { cnt : 32; } }
metadata obs_t obs;

register egr_pkts { width : 32; instance_count : 4; }
register egr_depth { width : 32; instance_count : 4; }

malleable value ecn_thresh { width : 16; init : 20; }

action forward(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
table route {
    reads { ipv4.dstAddr : exact; }
    actions { forward; _drop; }
    default_action : _drop();
    size : 16;
}
control ingress { apply(route); }

action observe() {
    register_read(obs.cnt, egr_pkts, 0);
    add(obs.cnt, obs.cnt, 1);
    register_write(egr_pkts, 0, obs.cnt);
    register_write(egr_depth, 0, standard_metadata.deq_qdepth);
}
action mark() { mark_ecn(); }
table observer {
    actions { observe; }
    default_action : observe();
}
table marker {
    actions { mark; }
    default_action : mark();
}
control egress {
    apply(observer);
    if (standard_metadata.deq_qdepth > ${ecn_thresh}) {
        apply(marker);
    }
}

reaction q_learn(reg egr_pkts[0:0], reg egr_depth[0:0]) {
    // Host-side implementation: the Q table lives on the CPU.
}
"""

# Candidate marking thresholds (packets of queue depth).
THRESHOLD_ACTIONS = [2, 5, 10, 20, 40, 80]


@dataclass
class QLearningConfig:
    alpha: float = 0.3  # learning rate
    gamma: float = 0.8  # discount
    epsilon: float = 0.1  # exploration
    depth_penalty: float = 0.04  # lambda in the reward
    depth_buckets: int = 8
    depth_bucket_width: int = 8  # packets per state bucket
    seed: int = 7


class QLearningEcnApp:
    """epsilon-greedy Q-learning over the ECN threshold."""

    def __init__(
        self,
        config: Optional[QLearningConfig] = None,
        system: Optional[MantisSystem] = None,
    ):
        self.system = system or MantisSystem.from_source(RL_P4R)
        self.config = config or QLearningConfig()
        self.rng = random.Random(self.config.seed)
        self.q = np.zeros(
            (self.config.depth_buckets, len(THRESHOLD_ACTIONS))
        )
        self._prev_pkts = 0
        self._prev_state: Optional[int] = None
        self._prev_action: Optional[int] = None
        self._prev_time: Optional[float] = None
        self.rewards: List[float] = []
        self.action_history: List[int] = []
        self.explorations = 0
        self.system.agent.attach_python("q_learn", self._reaction)

    def prologue(self) -> None:
        self.system.agent.prologue()

    def add_route(self, dst_addr: int, port: int) -> None:
        self.system.driver.add_entry("route", [dst_addr], "forward", [port])

    # ---- RL machinery ----------------------------------------------------------

    def _discretize(self, depth: int) -> int:
        bucket = depth // self.config.depth_bucket_width
        return min(self.config.depth_buckets - 1, bucket)

    def _reward(self, pkts_delta: int, elapsed_us: float, depth: int) -> float:
        rate = pkts_delta / elapsed_us if elapsed_us > 0 else 0.0
        return rate - self.config.depth_penalty * depth

    def _reaction(self, ctx: ReactionContext) -> None:
        pkts = ctx.args["egr_pkts"][0]
        depth = ctx.args["egr_depth"][0]
        now = ctx.now
        state = self._discretize(depth)

        if self._prev_state is not None:
            elapsed = now - (self._prev_time or now)
            pkts_delta = (pkts - self._prev_pkts) & 0xFFFFFFFF
            reward = self._reward(pkts_delta, elapsed, depth)
            self.rewards.append(reward)
            # Off-policy TD update (Q-learning).
            best_next = float(np.max(self.q[state]))
            q_prev = self.q[self._prev_state][self._prev_action]
            self.q[self._prev_state][self._prev_action] = q_prev + (
                self.config.alpha * (reward + self.config.gamma * best_next - q_prev)
            )

        # epsilon-greedy action selection.
        if self.rng.random() < self.config.epsilon:
            action = self.rng.randrange(len(THRESHOLD_ACTIONS))
            self.explorations += 1
        else:
            action = int(np.argmax(self.q[state]))
        ctx.write("ecn_thresh", THRESHOLD_ACTIONS[action])
        self.action_history.append(action)

        self._prev_pkts = pkts
        self._prev_state = state
        self._prev_action = action
        self._prev_time = now

    @property
    def current_threshold(self) -> int:
        return self.system.agent.read_malleable("ecn_thresh")

    def greedy_threshold(self, depth: int = 0) -> int:
        """The currently learned best threshold for a queue state."""
        state = self._discretize(depth)
        return THRESHOLD_ACTIONS[int(np.argmax(self.q[state]))]


def build_rl_scenario(
    n_flows: int = 8,
    bottleneck_gbps: float = 2.0,
    queue_pkts: int = 128,
):
    """DCTCP flows sharing one bottleneck, marking governed by the
    malleable threshold."""
    from repro.net.tcp import TcpFlow, TcpSink

    app = QLearningEcnApp()
    sim = NetworkSim(app.system)
    dst_port = 0
    sim.configure_port(
        dst_port,
        PortConfig(bandwidth_gbps=bottleneck_gbps, queue_capacity_pkts=queue_pkts),
    )
    dst_addr = 0x0B0000FF
    app.add_route(dst_addr, dst_port)
    sink = TcpSink("receiver")
    sim.attach_host(sink, dst_port)
    flows = []
    for index in range(n_flows):
        src = 0x0A000001 + index
        flow = TcpFlow(
            f"dctcp{index}",
            {"ipv4.srcAddr": src, "ipv4.dstAddr": dst_addr},
            use_dctcp=True,
        )
        sink.register_flow(src, flow)
        sim.attach_host(flow, 1 + index)
        flows.append(flow)
    return app, sim, flows, sink
