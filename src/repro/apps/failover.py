"""Use case #2: route recomputation on gray failures (Section 8.3.2).

Every neighbor of the switch runs a heartbeat generator emitting
high-priority packets every ``T_s`` (1 us in the paper's tests).  The
data plane accumulates a per-port heartbeat count; the reaction polls
the counts (serializably) and compares the marginal count of each port
against the expectation ``delta = floor(eta * T_d / T_s)`` where
``T_d`` is the time since the last dialogue.  Two consecutive
violations mark the link as down, trigger a (networkx) route
recomputation on the control plane, and install the new routes into
the malleable routing table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.agent.agent import ReactionContext
from repro.net import topology as topo
from repro.net.hosts import HeartbeatGenerator, SinkHost, UdpSender
from repro.net.sim import NetworkSim
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.clock import SimClock
from repro.system import MantisSystem

HEARTBEAT_PROTO = 253
MAX_WATCHED_PORTS = 16

# Multi-hop scenario addressing: data flows h0 -> s0 -> s1 -> h1;
# heartbeat probes are addressed to the *terminating* switch, one sink
# address per (switch, inter-switch link) pair, so each switch's
# hb_filter counts exactly the probes that end on it and forwards the
# rest (a transit switch must not eat its neighbor's probes).
H1_ADDR = 0x0A000001
HB_SINK_BASE = 0x0AFE0000


def hb_sink_addr(switch_index: int, link_index: int) -> int:
    """The probe sink address terminating at ``switch_index`` after
    crossing inter-switch link ``link_index``."""
    return HB_SINK_BASE + (switch_index << 8) + link_index

FAILOVER_P4R = STANDARD_METADATA_P4 + """
header_type ipv4_t {
    fields { srcAddr : 32; dstAddr : 32; proto : 8; }
}
header ipv4_t ipv4;
header_type tmp_t { fields { cnt : 32; } }
metadata tmp_t tmp;

register hb_count { width : 32; instance_count : 16; }

action count_hb() {
    register_read(tmp.cnt, hb_count, standard_metadata.ingress_port);
    add(tmp.cnt, tmp.cnt, 1);
    register_write(hb_count, standard_metadata.ingress_port, tmp.cnt);
    drop();
}
action skip() { no_op(); }
table hb_filter {
    reads { ipv4.proto : exact; ipv4.dstAddr : exact; }
    actions { count_hb; skip; }
    default_action : skip();
    size : 16;
}

action forward(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
malleable table route {
    reads { ipv4.dstAddr : exact; }
    actions { forward; _drop; }
    default_action : _drop();
    size : 256;
}

control ingress {
    apply(hb_filter);
    apply(route);
}

reaction hb_watch(reg hb_count[0:15]) {
    // Host-side implementation (Python): threshold comparison and
    // route recomputation need floating division and graph search.
}
"""


@dataclass
class PortWatch:
    """Detector state for one watched port."""

    prev_count: int = 0
    violations: int = 0
    down: bool = False


class RouteManager:
    """Control-plane routing: shortest paths over a networkx graph.

    ``port_map`` maps neighbor node -> local switch port;
    ``dest_map`` maps destination address -> destination node.
    """

    def __init__(
        self,
        graph: nx.Graph,
        switch_node: str,
        port_map: Dict[str, int],
        dest_map: Dict[int, str],
    ):
        self.graph = graph
        self.switch_node = switch_node
        self.port_map = dict(port_map)
        self.dest_map = dict(dest_map)
        self.failed_ports: set = set()

    def fail_port(self, port: int) -> None:
        self.failed_ports.add(port)

    def compute_routes(self) -> Dict[int, Optional[int]]:
        """dst address -> egress port (None if unreachable)."""
        graph = self.graph.copy()
        for neighbor, port in self.port_map.items():
            if port in self.failed_ports and graph.has_edge(
                self.switch_node, neighbor
            ):
                graph.remove_edge(self.switch_node, neighbor)
        routes: Dict[int, Optional[int]] = {}
        for dst_addr, dst_node in self.dest_map.items():
            try:
                path = nx.shortest_path(graph, self.switch_node, dst_node)
            except nx.NetworkXNoPath:
                routes[dst_addr] = None
                continue
            first_hop = path[1] if len(path) > 1 else dst_node
            routes[dst_addr] = self.port_map.get(first_hop)
        return routes


class GrayFailureApp:
    """The full detector + reroute loop of Section 8.3.2."""

    def __init__(
        self,
        route_manager: RouteManager,
        watched_ports: List[int],
        heartbeat_period_us: float = 1.0,
        eta: float = 0.5,
        consecutive_violations: int = 2,
        system: Optional[MantisSystem] = None,
        hb_sink_addrs: Sequence[int] = (0,),
        static_routes: Optional[Dict[int, int]] = None,
    ):
        self.system = system or MantisSystem.from_source(FAILOVER_P4R)
        self.routes = route_manager
        self.watched_ports = list(watched_ports)
        self.heartbeat_period_us = heartbeat_period_us
        self.eta = eta
        self.consecutive_violations = consecutive_violations
        # Heartbeat destinations that terminate at THIS switch; probes
        # for other switches fall through hb_filter and get routed.
        self.hb_sink_addrs = list(hb_sink_addrs)
        # dst -> egress port entries pinned outside the recompute loop
        # (per-link probe routes: when the link dies the probes should
        # die on the wire, not detour around the failure).
        self.static_routes = dict(static_routes or {})
        self.watch: Dict[int, PortWatch] = {
            port: PortWatch() for port in watched_ports
        }
        self._last_poll_us: Optional[float] = None
        self._route_entries: Dict[int, int] = {}  # dst -> user entry id
        self.detected_ports: Dict[int, float] = {}
        self.reroute_times: Dict[int, float] = {}
        self.recomputations = 0
        self.system.agent.attach_python("hb_watch", self._reaction)

    def prologue(self) -> None:
        self.system.agent.prologue()
        for sink_addr in self.hb_sink_addrs:
            self.system.driver.add_entry(
                "hb_filter", [HEARTBEAT_PROTO, sink_addr], "count_hb"
            )
        handle = self.system.agent.table("route")
        for dst_addr, port in self.static_routes.items():
            handle.add([dst_addr], "forward", [port])
        for dst_addr, port in self.routes.compute_routes().items():
            if port is None:
                continue
            self._route_entries[dst_addr] = handle.add(
                [dst_addr], "forward", [port]
            )
        self.system.agent.run_iteration()  # commit initial routes

    # ---- the reaction -------------------------------------------------------

    def _reaction(self, ctx: ReactionContext) -> None:
        counts = ctx.args["hb_count"]
        now = ctx.now
        if self._last_poll_us is None:
            self._last_poll_us = now
            for port in self.watched_ports:
                self.watch[port].prev_count = counts.get(port, 0)
            return
        dialogue_gap = now - self._last_poll_us
        self._last_poll_us = now
        # delta = floor(eta * T_d / T_s), clamped to >= 1: with a
        # dialogue gap shorter than T_s/eta the paper's formula gives
        # 0 and the detector would be blind; requiring at least one
        # heartbeat per window keeps it live (deviation documented in
        # EXPERIMENTS.md).
        delta = max(
            1,
            math.floor(self.eta * dialogue_gap / self.heartbeat_period_us),
        )
        failed: List[int] = []
        for port in self.watched_ports:
            watch = self.watch[port]
            if watch.down:
                continue
            marginal = (counts.get(port, 0) - watch.prev_count) & 0xFFFFFFFF
            watch.prev_count = counts.get(port, 0)
            if marginal < delta:
                watch.violations += 1
            else:
                watch.violations = 0
            if watch.violations >= self.consecutive_violations:
                watch.down = True
                failed.append(port)
                self.detected_ports[port] = now
        if failed:
            self._reroute(ctx, failed)

    def _reroute(self, ctx: ReactionContext, failed_ports: List[int]) -> None:
        for port in failed_ports:
            self.routes.fail_port(port)
        self.recomputations += 1
        handle = ctx.table("route")
        for dst_addr, port in self.routes.compute_routes().items():
            entry = self._route_entries.get(dst_addr)
            if port is None:
                if entry is not None:
                    handle.delete(entry)
                    self._route_entries.pop(dst_addr, None)
                continue
            if entry is None:
                self._route_entries[dst_addr] = handle.add(
                    [dst_addr], "forward", [port]
                )
            else:
                handle.modify(entry, args=[port])
        for port in failed_ports:
            # New rules are prepared now and commit at this iteration's
            # vv flip, ~one table update later.
            self.reroute_times[port] = ctx.now


@dataclass
class MultiHopScenario:
    """The wired-up two-switch failover scenario (Section 8.3.2 scaled
    to a fabric): everything needed to drive and inspect the run."""

    fabric: NetworkSim
    apps: Tuple[GrayFailureApp, GrayFailureApp]
    sender: UdpSender
    sink: SinkHost
    generators: List[HeartbeatGenerator]

    @property
    def clock(self) -> SimClock:
        return self.fabric.clock


def build_multihop_failover(
    heartbeat_period_us: float = 1.0,
    eta: float = 0.5,
    data_rate_gbps: float = 4.0,
    data_burst_size: int = 1,
    sink_window_us: float = 20.0,
) -> MultiHopScenario:
    """Two Mantis switches, two parallel inter-switch links, data
    flowing h0 -> s0 -> s1 -> h1 over link 0.

    Both switches run the gray-failure detector against per-link
    heartbeat probes crossing the fabric in both directions; cutting
    link 0 starves the probes on both sides, each agent independently
    detects the loss on its ingress port 0, and s0's reroute moves the
    data path onto link 1 -- multi-hop failover with *every* agent a
    scheduled actor on the one fabric timeline.
    """
    view0, view1 = topo.fabric_pair(n_links=2)
    clock = SimClock()
    fabric = NetworkSim(clock=clock)
    systems = [
        MantisSystem.from_source(FAILOVER_P4R, clock=clock)
        for _ in range(2)
    ]
    apps: List[GrayFailureApp] = []
    for index, (system, view) in enumerate(zip(systems, (view0, view1))):
        manager = RouteManager(
            view.graph, view.switch_node, view.port_map, {H1_ADDR: "h1"}
        )
        far = 1 - index
        apps.append(GrayFailureApp(
            manager,
            watched_ports=[0, 1],
            heartbeat_period_us=heartbeat_period_us,
            eta=eta,
            system=system,
            # Count probes addressed to me; pin probe routes to their
            # own link so a dead link's probes die on the wire instead
            # of detouring.
            hb_sink_addrs=[hb_sink_addr(index, 0), hb_sink_addr(index, 1)],
            static_routes={hb_sink_addr(far, 0): 0, hb_sink_addr(far, 1): 1},
        ))
    s0 = fabric.add_switch(systems[0], "s0")
    s1 = fabric.add_switch(systems[1], "s1")
    fabric.connect(s0, 0, s1, 0)
    fabric.connect(s0, 1, s1, 1)

    sender = UdpSender(
        "h0",
        {"ipv4.srcAddr": 0x0A000000, "ipv4.dstAddr": H1_ADDR,
         "ipv4.proto": 17},
        rate_gbps=data_rate_gbps,
        burst_size=data_burst_size,
    )
    s0.attach_host(sender, 2)
    sink = SinkHost("h1", window_us=sink_window_us)
    s1.attach_host(sink, 2)

    generators: List[HeartbeatGenerator] = []
    for source, far in ((s0, 1), (s1, 0)):
        for link_index in range(2):
            generator = HeartbeatGenerator(
                f"hb-{source.name}-l{link_index}",
                {"ipv4.proto": HEARTBEAT_PROTO,
                 "ipv4.srcAddr": 0x0A00FE00 + link_index,
                 "ipv4.dstAddr": hb_sink_addr(far, link_index)},
                period_us=heartbeat_period_us,
            )
            source.attach_host(generator, 3 + link_index)
            generators.append(generator)
    return MultiHopScenario(
        fabric=fabric,
        apps=(apps[0], apps[1]),
        sender=sender,
        sink=sink,
        generators=generators,
    )


def run_multihop_failover(
    duration_us: float = 600.0,
    fail_at_us: float = 200.0,
    heartbeat_period_us: float = 1.0,
    eta: float = 0.5,
    data_rate_gbps: float = 4.0,
) -> Dict[str, object]:
    """Run the two-switch failover end to end; returns a JSON-able
    summary (the ``run-fabric`` CLI artifact)."""
    scenario = build_multihop_failover(
        heartbeat_period_us=heartbeat_period_us,
        eta=eta,
        data_rate_gbps=data_rate_gbps,
    )
    fabric = scenario.fabric
    app0, app1 = scenario.apps
    app0.prologue()
    app1.prologue()
    start = fabric.clock.now
    for generator in scenario.generators:
        generator.start()
    scenario.sender.start()
    link0 = fabric.links[0]
    fail_time = start + fail_at_us
    fabric.fail_link_at(link0, fail_time)
    fabric.run_until(start + duration_us, agent=True)

    s0 = fabric.switch("s0")
    s1 = fabric.switch("s1")
    detected0 = app0.detected_ports.get(0)
    rerouted0 = app0.reroute_times.get(0)
    return {
        "scenario": "multihop-failover",
        "switches": [s.name for s in (s0, s1)],
        "start_us": start,
        "duration_us": duration_us,
        "fail_time_us": fail_time,
        "end_us": fabric.clock.now,
        "sender_tx_packets": scenario.sender.tx_packets,
        "sink_rx_packets": scenario.sink.rx_packets,
        "s0_forwarded": s0.forwarded,
        "s0_link0_dropped": s0.port_stats(0).dropped,
        "agent_actor_fires": fabric.scheduler.actor_fires,
        "agent_iterations": {
            "s0": app0.system.agent.iterations,
            "s1": app1.system.agent.iterations,
        },
        "agents": {
            name: {
                "healthy": health.healthy,
                "reaction_engine": health.reaction_engine,
                "commit_mode": health.commit_mode,
                "delta_polling": health.delta_polling,
                "dirty_diff_hit_rate": health.dirty_diff_hit_rate,
                "delta_poll_skip_rate": health.delta_poll_skip_rate,
                "total_failures": health.total_failures,
            }
            for name, health in (
                ("s0", app0.system.agent.health()),
                ("s1", app1.system.agent.health()),
            )
        },
        "detection": {
            "s0_port0_detected_us": detected0,
            "s1_port0_detected_us": app1.detected_ports.get(0),
            "s0_rerouted_us": rerouted0,
            "detection_latency_us": (
                None if detected0 is None else detected0 - fail_time
            ),
        },
        "recomputations": {
            "s0": app0.recomputations, "s1": app1.recomputations,
        },
        "rerouted": rerouted0 is not None,
        "sink_timeline_gbps": scenario.sink.timeline_gbps(fabric.clock.now),
        "links": fabric.link_fault_summary(),
        "drop_totals": fabric.drop_totals(),
        "per_switch": fabric.switch_summaries(),
        "per_agent_fires": fabric.scheduler.actor_stats(),
    }


def build_failover_scenario(
    n_neighbors: int = 4,
    heartbeat_period_us: float = 1.0,
    eta: float = 0.5,
) -> Tuple[GrayFailureApp, NetworkSim, Dict[int, HeartbeatGenerator]]:
    """A switch with ``n_neighbors`` neighbors in a ring (so every
    destination has a detour) plus one attached destination host per
    neighbor."""
    graph = nx.Graph()
    graph.add_node("s0")
    port_map: Dict[str, int] = {}
    dest_map: Dict[int, str] = {}
    for index in range(n_neighbors):
        node = f"n{index}"
        graph.add_edge("s0", node)
        port_map[node] = index
        dest_map[0x0A000100 + index] = node
    # Ring among neighbors: detours exist when a direct link fails.
    for index in range(n_neighbors):
        graph.add_edge(f"n{index}", f"n{(index + 1) % n_neighbors}")

    manager = RouteManager(graph, "s0", port_map, dest_map)
    app = GrayFailureApp(
        manager,
        watched_ports=list(range(n_neighbors)),
        heartbeat_period_us=heartbeat_period_us,
        eta=eta,
    )
    sim = NetworkSim(app.system)
    generators: Dict[int, HeartbeatGenerator] = {}
    for index in range(n_neighbors):
        generator = HeartbeatGenerator(
            f"hb{index}",
            {"ipv4.proto": HEARTBEAT_PROTO, "ipv4.srcAddr": index + 1,
             "ipv4.dstAddr": 0},
            period_us=heartbeat_period_us,
        )
        sim.attach_host(generator, index)
        generators[index] = generator
    return app, sim, generators
