"""Use case #3: hash-polarization mitigation (Section 8.3.3).

The ECMP hash inputs are malleable fields, each a runtime-shiftable
reference into the packet headers (the compiler lowers them with the
load-in-prior-stage optimization since they feed a ``field_list``).
The reaction polls per-egress packet counters, computes the Median
Absolute Deviation (MAD) of the per-port loads -- cheap on the CPU,
painful in a pipeline -- and, when imbalance persists, shifts the hash
inputs to the next configuration.

The demonstration workload is adversarially polarized: the initial
hash input is a header field that is constant across flows, so every
flow lands in one bucket; shifting to a varying field restores balance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.agent.agent import ReactionContext
from repro.analysis.stats import mean, mean_absolute_deviation
from repro.net.sim import NetworkSim
from repro.switch.asic import STANDARD_METADATA_P4
from repro.system import MantisSystem

NUM_PATHS = 4

ECMP_P4R = STANDARD_METADATA_P4 + """
header_type ipv4_t {
    fields { srcAddr : 32; dstAddr : 32; proto : 8; }
}
header ipv4_t ipv4;
header_type l4_t { fields { sport : 16; dport : 16; } }
header l4_t l4;
header_type lb_t { fields { bucket : 16; cnt : 32; } }
metadata lb_t lb;

register egr_count { width : 32; instance_count : 16; }

malleable field hash_in1 {
    width : 32; init : ipv4.dstAddr;
    alts { ipv4.dstAddr, ipv4.srcAddr }
}
malleable field hash_in2 {
    width : 32; init : ipv4.proto;
    alts { ipv4.proto, l4.sport, l4.dport }
}

field_list lb_fl { ${hash_in1}; ${hash_in2}; }
field_list_calculation lb_hash {
    input { lb_fl; }
    algorithm : crc16;
    output_width : 16;
}

action pick_path() {
    modify_field_with_hash_based_offset(lb.bucket, 0, lb_hash, 4);
}
table ecmp_hash {
    actions { pick_path; }
    default_action : pick_path();
}

action forward(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
table ecmp_select {
    reads { lb.bucket : exact; }
    actions { forward; _drop; }
    default_action : _drop();
    size : 8;
}

action count_egress() {
    register_read(lb.cnt, egr_count, standard_metadata.egress_port);
    add(lb.cnt, lb.cnt, 1);
    register_write(egr_count, standard_metadata.egress_port, lb.cnt);
}
table egress_counter {
    actions { count_egress; }
    default_action : count_egress();
}

control ingress {
    apply(ecmp_hash);
    apply(ecmp_select);
}
control egress {
    apply(egress_counter);
}

reaction lb_watch(reg egr_count[0:15]) {
    // Host-side implementation: MAD over port marginals + shifting.
}
"""


@dataclass
class BalanceSample:
    time_us: float
    marginals: List[int]
    imbalance: float


class HashPolarizationApp:
    """MAD-driven runtime reconfiguration of the ECMP hash inputs."""

    def __init__(
        self,
        imbalance_threshold: float = 0.5,
        persistence: int = 3,
        min_window_packets: int = 8,
        system: Optional[MantisSystem] = None,
        num_ports: int = 64,
    ):
        self.system = system or MantisSystem.from_source(
            ECMP_P4R, num_ports=num_ports
        )
        self.imbalance_threshold = imbalance_threshold
        self.persistence = persistence
        self.min_window_packets = min_window_packets
        self.watched_ports = list(range(NUM_PATHS))
        self._prev_counts: Dict[int, int] = {}
        self._bad_iterations = 0
        self.samples: List[BalanceSample] = []
        self.shift_times: List[float] = []
        spec = self.system.spec
        alts1 = len(spec.fields["hash_in1"].alts)
        alts2 = len(spec.fields["hash_in2"].alts)
        self.configs = list(itertools.product(range(alts1), range(alts2)))
        self.config_index = 0
        self.system.agent.attach_python("lb_watch", self._reaction)

    def prologue(self) -> None:
        agent = self.system.agent
        agent.prologue()
        for bucket in range(NUM_PATHS):
            self.system.driver.add_entry(
                "ecmp_select", [bucket], "forward", [self.watched_ports[bucket]]
            )
        agent.run_iteration()

    # ---- the reaction ---------------------------------------------------------

    def _reaction(self, ctx: ReactionContext) -> None:
        counts = ctx.args["egr_count"]
        marginals = []
        for port in self.watched_ports:
            current = counts.get(port, 0)
            marginals.append(
                (current - self._prev_counts.get(port, 0)) & 0xFFFFFFFF
            )
            self._prev_counts[port] = current
        window_total = sum(marginals)
        if window_total < self.min_window_packets:
            return
        average = mean(marginals)
        imbalance = (
            mean_absolute_deviation(marginals) / average if average else 0.0
        )
        self.samples.append(BalanceSample(ctx.now, marginals, imbalance))
        if imbalance > self.imbalance_threshold:
            self._bad_iterations += 1
        else:
            self._bad_iterations = 0
        if self._bad_iterations >= self.persistence:
            self._shift(ctx)
            self._bad_iterations = 0

    def _shift(self, ctx: ReactionContext) -> None:
        """Advance to the next hash-input configuration."""
        self.config_index = (self.config_index + 1) % len(self.configs)
        alt1, alt2 = self.configs[self.config_index]
        ctx.write("hash_in1", alt1)
        ctx.write("hash_in2", alt2)
        self.shift_times.append(ctx.now)

    # ---- metrics -----------------------------------------------------------------

    def recent_imbalance(self, samples: int = 5) -> float:
        if not self.samples:
            return 0.0
        window = self.samples[-samples:]
        return mean([s.imbalance for s in window])


def build_polarized_scenario(
    n_flows: int = 32, rate_gbps_per_flow: float = 0.4, burst_size: int = 1
):
    """Flows with varying srcAddr/sport but a single dstAddr -- the
    initial (dstAddr, proto) hash config polarizes them all onto one
    path.  ``burst_size > 1`` coalesces each sender's packets into
    burst events."""
    from repro.net.hosts import SinkHost, UdpSender

    app = HashPolarizationApp()
    sim = NetworkSim(app.system)
    sinks = []
    for path in range(NUM_PATHS):
        sink = SinkHost(f"path{path}")
        sim.attach_host(sink, path)
        sinks.append(sink)
    senders = []
    for index in range(n_flows):
        sender = UdpSender(
            f"flow{index}",
            {
                "ipv4.srcAddr": 0x0A000001 + index * 7919,
                "ipv4.dstAddr": 0x0B000001,
                "ipv4.proto": 6,
                "l4.sport": 1000 + index * 13,
                "l4.dport": 443,
            },
            rate_gbps=rate_gbps_per_flow,
            size_bytes=1000,
            burst_size=burst_size,
        )
        sim.attach_host(sender, NUM_PATHS + index)
        senders.append(sender)
    return app, sim, senders, sinks
