"""Use case #6: LinkGuardian-style lossy-link protection.

Gray failures are not only dead cables: a link can stay *up* while
silently dropping or corrupting a fraction of its packets (optical
degradation, marginal transceivers).  TCP recovers each loss by
timeout, so even a 1e-2 loss rate collapses throughput.  This app
detects such links from the data plane and reacts:

- **detection**: every link carries a sequence-numbered probe stream
  (:class:`~repro.net.hosts.SeqProbeGenerator`, one probe per
  microsecond by default).  The terminating switch's ``track_probe``
  action computes, per ingress port, the gap between each probe's
  sequence number and the previous one (``subtract``-based, entirely
  in the pipeline) and accumulates delivered-vs-missing counts in the
  ``rx_seen``/``rx_gaps`` registers.
- **reaction**: ``guard_watch`` polls both registers serializably,
  accumulates the marginals until at least ``min_window_probes``
  probes are represented, and estimates the effective loss rate
  ``gaps / (gaps + seen)``.  Above ``loss_threshold`` it flips the
  protection malleable: every monitored route whose primary egress is
  the lossy port is rewritten to the port's backup (the parallel link
  of the ``fabric_pair`` topology), or -- in ``protect_mode
  "disable"`` -- the port is administratively shut.  After
  ``clean_windows`` consecutive windows at or below
  ``restore_threshold`` the original routing is restored.

Measurement is symmetric: each side estimates the loss of a link from
the probe stream it *receives*, and the fault model degrades both
directions at the same rate, so the sender-side agent observes the
loss its own data path suffers (LinkGuardian's receiver-side detection
with its notification channel collapsed into the symmetric-loss
modeling assumption).

Corruption robustness: a corrupted probe sequence number can make the
32-bit gap arithmetic wrap to a huge value; the reaction clamps each
marginal gap to ``max(4 * (seen + 1), 64)`` so one flipped bit cannot
fake (or mask) a sustained loss signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.agent.agent import ReactionContext
from repro.net.hosts import SeqProbeGenerator, SinkHost, UdpSender
from repro.net.sim import Link, LinkFaultModel, NetworkSim
from repro.net.tcp import TcpFlow, TcpSink
from repro.switch.asic import STANDARD_METADATA_P4
from repro.switch.clock import SimClock
from repro.system import MantisSystem

GUARD_PROTO = 252
MASK32 = 0xFFFFFFFF

# Addressing: data flows h0 -> s0 -> s1 -> h1; probe streams terminate
# at the far switch, one sink address per (switch, link) pair, so each
# switch's probe_filter eats exactly the probes measuring its own
# ingress and routes the rest (same scheme as the failover app).
DATA_DST = 0x0B000001
GUARD_SINK_BASE = 0x0BFE0000


def guard_sink_addr(switch_index: int, link_index: int) -> int:
    """The probe sink address terminating at ``switch_index`` after
    crossing inter-switch link ``link_index``."""
    return GUARD_SINK_BASE + (switch_index << 8) + link_index


LINKGUARD_P4R = STANDARD_METADATA_P4 + """
header_type ipv4_t {
    fields { srcAddr : 32; dstAddr : 32; proto : 8; }
}
header ipv4_t ipv4;
header_type guard_t { fields { seq : 32; } }
header guard_t guard;
header_type scratch_t { fields { last : 32; gap : 32; acc : 32; } }
metadata scratch_t scratch;

register last_seq { width : 32; instance_count : 16; }
register rx_seen { width : 32; instance_count : 16; }
register rx_gaps { width : 32; instance_count : 16; }

action track_probe() {
    register_read(scratch.last, last_seq, standard_metadata.ingress_port);
    register_write(last_seq, standard_metadata.ingress_port, guard.seq);
    subtract(scratch.gap, guard.seq, scratch.last);
    subtract(scratch.gap, scratch.gap, 1);
    register_read(scratch.acc, rx_gaps, standard_metadata.ingress_port);
    add(scratch.acc, scratch.acc, scratch.gap);
    register_write(rx_gaps, standard_metadata.ingress_port, scratch.acc);
    register_read(scratch.acc, rx_seen, standard_metadata.ingress_port);
    add(scratch.acc, scratch.acc, 1);
    register_write(rx_seen, standard_metadata.ingress_port, scratch.acc);
    drop();
}
action skip() { no_op(); }
table probe_filter {
    reads { ipv4.proto : exact; ipv4.dstAddr : exact; }
    actions { track_probe; skip; }
    default_action : skip();
    size : 16;
}

action forward(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
malleable table route {
    reads { ipv4.dstAddr : exact; }
    actions { forward; _drop; }
    default_action : _drop();
    size : 256;
}

control ingress {
    apply(probe_filter);
    apply(route);
}

reaction guard_watch(reg rx_seen[0:15], reg rx_gaps[0:15]) {
    // Host-side implementation (Python): loss-rate estimation needs
    // floating division; protection flips the malleable route table.
}
"""


@dataclass
class GuardState:
    """Detector + protection state for one guarded ingress port."""

    backup_port: int
    prev_seen: Optional[int] = None
    prev_gaps: int = 0
    acc_seen: int = 0
    acc_gaps: int = 0
    protected: bool = False
    clean_streak: int = 0
    loss_estimate: float = 0.0


class LinkGuardApp:
    """The detector + protection loop around ``LINKGUARD_P4R``."""

    def __init__(
        self,
        guards: Dict[int, int],
        dst_routes: Dict[int, int],
        probe_sink_addrs: Tuple[int, ...] = (),
        static_routes: Optional[Dict[int, int]] = None,
        loss_threshold: float = 5e-3,
        restore_threshold: float = 1e-3,
        min_window_probes: int = 256,
        clean_windows: int = 3,
        protect_mode: str = "reroute",
        port_control: Optional[Callable[[int, bool], None]] = None,
        system: Optional[MantisSystem] = None,
    ):
        if protect_mode not in ("reroute", "disable"):
            raise ValueError(f"unknown protect_mode {protect_mode!r}")
        self.system = system or MantisSystem.from_source(LINKGUARD_P4R)
        # port -> backup port: the protection fabric (parallel link).
        self.guards: Dict[int, GuardState] = {
            port: GuardState(backup_port=backup)
            for port, backup in guards.items()
        }
        # Monitored routes: dst -> primary egress port.  Protection
        # rewrites every dst whose primary is the lossy port.
        self.dst_routes = dict(dst_routes)
        self.probe_sink_addrs = tuple(probe_sink_addrs)
        # Probe routes pinned per link: when a link degrades, its
        # probes must keep crossing it (they are the measurement).
        self.static_routes = dict(static_routes or {})
        self.loss_threshold = loss_threshold
        self.restore_threshold = restore_threshold
        self.min_window_probes = min_window_probes
        self.clean_windows = clean_windows
        self.protect_mode = protect_mode
        self.port_control = port_control
        self._route_entries: Dict[int, int] = {}  # dst -> user entry id
        self.protect_times: Dict[int, List[float]] = {}
        self.restore_times: Dict[int, List[float]] = {}
        self.loss_samples: List[Tuple[float, int, float]] = []
        self.system.agent.attach_python("guard_watch", self._reaction)

    def prologue(self) -> None:
        self.system.agent.prologue()
        for sink_addr in self.probe_sink_addrs:
            self.system.driver.add_entry(
                "probe_filter", [GUARD_PROTO, sink_addr], "track_probe"
            )
        handle = self.system.agent.table("route")
        for dst_addr, port in self.static_routes.items():
            handle.add([dst_addr], "forward", [port])
        for dst_addr, port in self.dst_routes.items():
            self._route_entries[dst_addr] = handle.add(
                [dst_addr], "forward", [port]
            )
        self.system.agent.run_iteration()  # commit initial routes

    # ---- the reaction -------------------------------------------------------

    def _reaction(self, ctx: ReactionContext) -> None:
        seen_reg = ctx.args["rx_seen"]
        gaps_reg = ctx.args["rx_gaps"]
        for port, state in self.guards.items():
            seen = seen_reg.get(port, 0)
            gaps = gaps_reg.get(port, 0)
            if state.prev_seen is None:
                state.prev_seen = seen
                state.prev_gaps = gaps
                continue
            d_seen = (seen - state.prev_seen) & MASK32
            d_gaps = (gaps - state.prev_gaps) & MASK32
            state.prev_seen = seen
            state.prev_gaps = gaps
            # Clamp corruption-induced wraparound (see module docs).
            cap = max(4 * (d_seen + 1), 64)
            if d_gaps > cap:
                d_gaps = cap
            state.acc_seen += d_seen
            state.acc_gaps += d_gaps
            total = state.acc_seen + state.acc_gaps
            if total < self.min_window_probes:
                continue
            loss = state.acc_gaps / total
            state.loss_estimate = loss
            state.acc_seen = 0
            state.acc_gaps = 0
            self.loss_samples.append((ctx.now, port, loss))
            if not state.protected:
                if loss > self.loss_threshold:
                    self._protect(ctx, port, state)
            elif loss <= self.restore_threshold:
                state.clean_streak += 1
                if state.clean_streak >= self.clean_windows:
                    self._restore(ctx, port, state)
            else:
                state.clean_streak = 0

    def _protect(self, ctx: ReactionContext, port: int,
                 state: GuardState) -> None:
        state.protected = True
        state.clean_streak = 0
        handle = ctx.table("route")
        for dst_addr, primary in self.dst_routes.items():
            if primary == port:
                handle.modify(
                    self._route_entries[dst_addr], args=[state.backup_port]
                )
        if self.protect_mode == "disable" and self.port_control is not None:
            self.port_control(port, False)
        self.protect_times.setdefault(port, []).append(ctx.now)

    def _restore(self, ctx: ReactionContext, port: int,
                 state: GuardState) -> None:
        state.protected = False
        state.clean_streak = 0
        handle = ctx.table("route")
        for dst_addr, primary in self.dst_routes.items():
            if primary == port:
                handle.modify(self._route_entries[dst_addr], args=[primary])
        if self.protect_mode == "disable" and self.port_control is not None:
            self.port_control(port, True)
        self.restore_times.setdefault(port, []).append(ctx.now)

    @property
    def protections(self) -> int:
        return sum(len(times) for times in self.protect_times.values())

    @property
    def restores(self) -> int:
        return sum(len(times) for times in self.restore_times.values())


@dataclass
class LinkGuardScenario:
    """The wired-up two-switch lossy-link scenario."""

    fabric: NetworkSim
    apps: Tuple[LinkGuardApp, LinkGuardApp]
    probes: List[SeqProbeGenerator]
    link0: Link
    link1: Link
    fault: Optional[LinkFaultModel]
    # transport endpoints (tcp: flow+tcp_sink; udp: sender+udp_sink)
    flow: Optional[TcpFlow] = None
    tcp_sink: Optional[TcpSink] = None
    sender: Optional[UdpSender] = None
    udp_sink: Optional[SinkHost] = None

    @property
    def clock(self) -> SimClock:
        return self.fabric.clock

    @property
    def systems(self) -> Tuple[MantisSystem, MantisSystem]:
        return (self.apps[0].system, self.apps[1].system)

    @property
    def delivered_packets(self) -> int:
        if self.flow is not None:
            return self.flow.acked
        return self.udp_sink.rx_packets

    @property
    def sent_packets(self) -> int:
        if self.flow is not None:
            return self.flow.tx_packets
        return self.sender.tx_packets


def build_linkguard_scenario(
    loss_rate: float,
    corrupt_rate: float = 0.0,
    fault_seed: int = 7,
    fault_from_us: Optional[float] = None,
    fault_until_us: Optional[float] = None,
    probe_period_us: float = 1.0,
    transport: str = "tcp",
    data_rate_gbps: float = 8.0,
    ack_latency_us: float = 25.0,
    transfer_packets: Optional[int] = 64,
    pacing_sleep_us: float = 0.0,
    loss_threshold: float = 5e-3,
    min_window_probes: int = 256,
    clean_windows: int = 3,
    system_kwargs: Optional[dict] = None,
) -> LinkGuardScenario:
    """Two Mantis switches, two parallel links, data h0 -> s0 -> s1 ->
    h1 over link 0, and a seeded :class:`LinkFaultModel` degrading
    link 0 at ``loss_rate``/``corrupt_rate`` (optionally windowed via
    ``fault_from_us``/``fault_until_us``).

    Each direction of each link carries one probe stream; both
    switches run :class:`LinkGuardApp` with the parallel link as the
    backup, so s0's agent reroutes the data path off the degraded
    link once its loss estimate crosses the threshold.
    """
    clock = SimClock()
    fabric = NetworkSim(clock=clock)
    kwargs = dict(system_kwargs or {})
    kwargs.setdefault("pacing_sleep_us", pacing_sleep_us)
    systems = [
        MantisSystem.from_source(LINKGUARD_P4R, clock=clock, **kwargs)
        for _ in range(2)
    ]
    apps: List[LinkGuardApp] = []
    for index in range(2):
        far = 1 - index
        apps.append(LinkGuardApp(
            guards={0: 1, 1: 0},
            # Only s0 steers the data flow; s1 delivers to its host.
            dst_routes={DATA_DST: 0 if index == 0 else 2},
            probe_sink_addrs=(
                guard_sink_addr(index, 0), guard_sink_addr(index, 1)
            ),
            static_routes={
                guard_sink_addr(far, 0): 0, guard_sink_addr(far, 1): 1,
            },
            loss_threshold=loss_threshold,
            min_window_probes=min_window_probes,
            clean_windows=clean_windows,
            system=systems[index],
        ))
    s0 = fabric.add_switch(systems[0], "s0")
    s1 = fabric.add_switch(systems[1], "s1")
    link0 = fabric.connect(s0, 0, s1, 0)
    link1 = fabric.connect(s0, 1, s1, 1)

    fault: Optional[LinkFaultModel] = None
    if loss_rate > 0.0 or corrupt_rate > 0.0:
        fault = LinkFaultModel(
            seed=fault_seed,
            drop_rate=loss_rate,
            corrupt_rate=corrupt_rate,
            name="link0-degrade",
        )
        fabric.install_link_fault(
            link0, fault, at_us=fault_from_us, until_us=fault_until_us
        )

    scenario = LinkGuardScenario(
        fabric=fabric,
        apps=(apps[0], apps[1]),
        probes=[],
        link0=link0,
        link1=link1,
        fault=fault,
    )
    if transport == "tcp":
        # A WAN-ish RTT makes the flow window-limited: per the Mathis
        # relation, sustained throughput then scales as 1/sqrt(loss),
        # so a lossy link visibly collapses it (the effect the
        # benchmark curves measure) instead of hiding behind the
        # link-bandwidth bottleneck.  max_cwnd stays below the egress
        # queue capacity so slow start cannot overflow the queue --
        # without that cap the overshoot's burst losses dominate every
        # run and drown the link-loss signal.
        flow = TcpFlow(
            "h0",
            {"ipv4.srcAddr": 0x0B000000, "ipv4.dstAddr": DATA_DST,
             "ipv4.proto": 6},
            ack_latency_us=ack_latency_us,
            max_cwnd=128.0,
            transfer_packets=transfer_packets,
        )
        s0.attach_host(flow, 2)
        tcp_sink = TcpSink("h1")
        tcp_sink.register_flow(0x0B000000, flow)
        s1.attach_host(tcp_sink, 2)
        scenario.flow = flow
        scenario.tcp_sink = tcp_sink
    elif transport == "udp":
        sender = UdpSender(
            "h0",
            {"ipv4.srcAddr": 0x0B000000, "ipv4.dstAddr": DATA_DST,
             "ipv4.proto": 17},
            rate_gbps=data_rate_gbps,
        )
        s0.attach_host(sender, 2)
        udp_sink = SinkHost("h1")
        s1.attach_host(udp_sink, 2)
        scenario.sender = sender
        scenario.udp_sink = udp_sink
    else:
        raise ValueError(f"unknown transport {transport!r}")

    for source, far in ((s0, 1), (s1, 0)):
        for link_index in range(2):
            probe = SeqProbeGenerator(
                f"probe-{source.name}-l{link_index}",
                {"ipv4.proto": GUARD_PROTO,
                 "ipv4.srcAddr": 0x0B00FE00 + link_index,
                 "ipv4.dstAddr": guard_sink_addr(far, link_index)},
                period_us=probe_period_us,
            )
            source.attach_host(probe, 3 + link_index)
            scenario.probes.append(probe)
    return scenario


def run_linkguard(
    loss_rate: float,
    protection: bool,
    duration_us: float = 4000.0,
    corrupt_rate: float = 0.0,
    fault_seed: int = 7,
    probe_period_us: float = 1.0,
    transport: str = "tcp",
    transfer_packets: Optional[int] = 64,
    **build_kwargs,
) -> Dict[str, object]:
    """One end-to-end run at one loss rate; ``protection=False`` is
    the no-reactive-control-plane baseline (agents frozen)."""
    scenario = build_linkguard_scenario(
        loss_rate,
        corrupt_rate=corrupt_rate,
        fault_seed=fault_seed,
        probe_period_us=probe_period_us,
        transport=transport,
        transfer_packets=transfer_packets,
        **build_kwargs,
    )
    fabric = scenario.fabric
    app0, app1 = scenario.apps
    app0.prologue()
    app1.prologue()
    start = fabric.clock.now
    for probe in scenario.probes:
        probe.start()
    if scenario.flow is not None:
        scenario.flow.start()
    else:
        scenario.sender.start()
    fabric.run_until(start + duration_us, agent=protection)

    delivered = scenario.delivered_packets
    size = (
        scenario.flow.size_bytes if scenario.flow is not None
        else scenario.sender.size_bytes
    )
    throughput_gbps = delivered * size * 8 / (duration_us * 1000.0)
    result: Dict[str, object] = {
        "loss_rate": loss_rate,
        "protection": protection,
        "duration_us": duration_us,
        "sent_packets": scenario.sent_packets,
        "delivered_packets": delivered,
        "throughput_gbps": throughput_gbps,
        "avg_fct_us": (
            scenario.flow.avg_fct_us if scenario.flow is not None else None
        ),
        "transfers_completed": (
            scenario.flow.transfers_completed
            if scenario.flow is not None else None
        ),
        "retransmits": (
            scenario.flow.retransmits if scenario.flow is not None else None
        ),
        "protections": app0.protections if protection else 0,
        "restores": app0.restores if protection else 0,
        "s0_loss_estimate": app0.guards[0].loss_estimate,
        "protect_time_us": (
            app0.protect_times.get(0, [None])[0] if protection else None
        ),
        "link_fault_dropped": scenario.link0.fault_dropped,
        "link_fault_corrupted": scenario.link0.fault_corrupted,
        "drop_totals": fabric.drop_totals(),
        "links": fabric.link_fault_summary(),
    }
    return result


def run_linkguard_sweep(
    loss_rates: Tuple[float, ...] = (1e-4, 1e-3, 1e-2, 1e-1),
    duration_us: float = 4000.0,
    gate_loss: float = 1e-2,
    **run_kwargs,
) -> Dict[str, object]:
    """The FCT/throughput-vs-loss-rate curves: no-protection baseline
    vs Mantis protection at each loss rate (``BENCH_linkguard.json``).

    The acceptance gate: at ``gate_loss`` the protected run must
    deliver >= 2x the baseline throughput or <= 0.5x its FCT.
    """
    points: Dict[str, Dict[str, object]] = {}
    for loss in loss_rates:
        baseline = run_linkguard(
            loss, protection=False, duration_us=duration_us, **run_kwargs
        )
        protected = run_linkguard(
            loss, protection=True, duration_us=duration_us, **run_kwargs
        )
        base_tput = baseline["throughput_gbps"]
        prot_tput = protected["throughput_gbps"]
        throughput_ratio = (
            prot_tput / base_tput if base_tput > 0 else float("inf")
        )
        base_fct = baseline["avg_fct_us"]
        prot_fct = protected["avg_fct_us"]
        fct_ratio = (
            prot_fct / base_fct
            if (base_fct and prot_fct) else None
        )
        points[repr(loss)] = {
            "baseline": baseline,
            "protected": protected,
            "throughput_ratio": throughput_ratio,
            "fct_ratio": fct_ratio,
        }
    gate_point = points.get(repr(gate_loss))
    gate: Dict[str, object] = {"loss_rate": gate_loss, "pass": None}
    if gate_point is not None:
        tput_ok = gate_point["throughput_ratio"] >= 2.0
        fct_ok = (
            gate_point["fct_ratio"] is not None
            and gate_point["fct_ratio"] <= 0.5
        )
        gate.update(
            throughput_ratio=gate_point["throughput_ratio"],
            fct_ratio=gate_point["fct_ratio"],
            throughput_pass=tput_ok,
            fct_pass=fct_ok,
        )
        gate["pass"] = bool(tput_ok or fct_ok)
    return {
        "bench": "linkguard",
        "duration_us": duration_us,
        "loss_rates": list(loss_rates),
        "points": points,
        "gate": gate,
    }
