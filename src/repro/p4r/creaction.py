"""Parser and interpreter for C-like reaction bodies.

The paper's compiler emits C reaction functions that are built with gcc
and dynamically loaded into the Mantis agent.  This reproduction
interprets the same C-like language directly:

- fixed-width unsigned/signed integer types (``uint16_t`` ...), ``int``,
  ``float``/``double``, ``bool``;
- ``static`` variables that persist across dialogue iterations (the
  paper's Section 6 "stateful dialogue");
- arrays, ``for``/``while``/``if``/``else``/``break``/``continue``/
  ``return``, the usual C operators including ``?:`` and compound
  assignment;
- ``${var}`` reads and writes of malleable values/fields (lowered by
  the real compiler to generated setter functions);
- method calls on malleable tables, e.g. ``t.addEntry(...)``;
- host "extern" functions registered by the embedding application
  (e.g. ``recompute_routes()`` in the gray-failure use case).

Execution environments are supplied by the Mantis agent, which binds
polled reaction arguments and malleable/table handles before each run.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ReactionError
from repro.p4.lexer import Lexer, Token, parse_int

# ---------------------------------------------------------------------------
# Types

_UNSIGNED_WIDTHS = {
    "uint8_t": 8,
    "uint16_t": 16,
    "uint32_t": 32,
    "uint64_t": 64,
    "unsigned": 32,
    "bool": 1,
}
_SIGNED_WIDTHS = {
    "int8_t": 8,
    "int16_t": 16,
    "int32_t": 32,
    "int64_t": 64,
    "int": 64,
    "long": 64,
}
_FLOAT_TYPES = {"float", "double"}
TYPE_KEYWORDS = frozenset(_UNSIGNED_WIDTHS) | frozenset(_SIGNED_WIDTHS) | _FLOAT_TYPES

# The single width-mask table shared by BOTH reaction engines (this
# interpreter and the exec codegen in repro.p4r.compiled_reaction):
# stores to a variable of type T apply TYPE_MASKS[T] when it is not
# None.  Signed types -- including `int`/`long`, whose nominal widths
# above exist only for layout accounting -- deliberately stay at
# Python's arbitrary precision (no wrap on overflow); float types are
# coerced with float() instead of a mask.  Any future change to
# integer semantics must happen here so the engines cannot drift.
TYPE_MASKS: Dict[str, Optional[int]] = {
    ctype: (1 << width) - 1 for ctype, width in _UNSIGNED_WIDTHS.items()
}
TYPE_MASKS.update({ctype: None for ctype in _SIGNED_WIDTHS})
TYPE_MASKS.update({ctype: None for ctype in _FLOAT_TYPES})


class _CVar:
    """A declared C variable: value plus the mask implied by its type."""

    __slots__ = ("value", "ctype")

    def __init__(self, value, ctype: str):
        self.ctype = ctype
        self.value = value

    def coerce(self, value):
        if self.ctype in _FLOAT_TYPES:
            return float(value)
        value = int(value)
        mask = TYPE_MASKS[self.ctype]
        if mask is not None:
            return value & mask
        return value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


# ---------------------------------------------------------------------------
# Environment


class ReactionEnv:
    """Execution environment a reaction body runs against.

    The Mantis agent builds one per dialogue iteration; tests may build
    them directly.  ``args`` maps parameter names to ints or lists of
    ints (register slices are exposed as dicts ``{index: value}`` so
    that ``qdepths[i]`` uses the original register indices).
    """

    def __init__(
        self,
        args: Optional[Dict[str, object]] = None,
        read_malleable: Optional[Callable[[str], int]] = None,
        write_malleable: Optional[Callable[[str, int], None]] = None,
        tables: Optional[Dict[str, object]] = None,
        externs: Optional[Dict[str, Callable]] = None,
        statics: Optional[Dict[str, object]] = None,
    ):
        self.args = dict(args or {})
        self.read_malleable = read_malleable or self._no_malleables
        self.write_malleable = write_malleable or self._no_malleables
        self.tables = dict(tables or {})
        self.externs = dict(externs or {})
        # statics persist across runs; the caller owns the dict.
        self.statics = statics if statics is not None else {}

    @staticmethod
    def _no_malleables(*_args):
        raise ReactionError("no malleable handles bound in this environment")


_BUILTINS: Dict[str, Callable] = {
    "abs": abs,
    "min": min,
    "max": max,
}


# ---------------------------------------------------------------------------
# Parser


class _CParser:
    """Recursive-descent parser for the reaction language.

    Produces a tuple-based AST evaluated by :class:`CReaction`.
    """

    def __init__(self, source: str):
        self.tokens: List[Token] = Lexer(source).tokenize()
        self.index = 0

    def peek(self, lookahead: int = 0) -> Token:
        index = min(self.index + lookahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def accept(self, kind: str, value: str) -> bool:
        token = self.peek()
        if token.kind == kind and token.value == value:
            self.next()
            return True
        return False

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.next()
        if token.kind != kind or (value is not None and token.value != value):
            raise ReactionError(
                f"reaction syntax: expected {value or kind}, got "
                f"{token.value!r} (line {token.line})"
            )
        return token

    # ---- statements ----------------------------------------------------

    def parse_body(self) -> list:
        statements = []
        while self.peek().kind != "eof":
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self):
        token = self.peek()
        if token.kind == "op" and token.value == "{":
            self.next()
            block = []
            while not self.accept("op", "}"):
                block.append(self.parse_statement())
            return ("block", block)
        if token.kind == "ident":
            keyword = token.value
            if keyword == "static" or keyword in TYPE_KEYWORDS:
                return self.parse_declaration()
            if keyword == "if":
                return self.parse_if()
            if keyword == "for":
                return self.parse_for()
            if keyword == "while":
                return self.parse_while()
            if keyword == "return":
                self.next()
                value = None
                if not self.accept("op", ";"):
                    value = self.parse_expression()
                    self.expect("op", ";")
                return ("return", value)
            if keyword == "break":
                self.next()
                self.expect("op", ";")
                return ("break",)
            if keyword == "continue":
                self.next()
                self.expect("op", ";")
                return ("continue",)
        expr = self.parse_expression()
        self.expect("op", ";")
        return ("expr", expr)

    def parse_declaration(self):
        static = self.accept("ident", "static")
        type_token = self.expect("ident")
        if type_token.value not in TYPE_KEYWORDS:
            raise ReactionError(f"unknown type {type_token.value!r}")
        ctype = type_token.value
        declarators = [self.parse_declarator()]
        while self.accept("op", ","):
            declarators.append(self.parse_declarator())
        self.expect("op", ";")
        return ("decl", static, ctype, declarators)

    def parse_declarator(self):
        name = self.expect("ident").value
        array_size = None
        if self.accept("op", "["):
            array_size = parse_int(self.expect("number").value)
            self.expect("op", "]")
        init = None
        if self.accept("op", "="):
            if self.peek().kind == "op" and self.peek().value == "{":
                self.next()
                items = []
                if not self.accept("op", "}"):
                    items.append(self.parse_assignment())
                    while self.accept("op", ","):
                        items.append(self.parse_assignment())
                    self.expect("op", "}")
                init = ("initlist", items)
            else:
                init = self.parse_assignment()
        return (name, array_size, init)

    def parse_if(self):
        self.expect("ident", "if")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then_stmt = self.parse_statement()
        else_stmt = None
        if self.accept("ident", "else"):
            else_stmt = self.parse_statement()
        return ("if", cond, then_stmt, else_stmt)

    def parse_for(self):
        self.expect("ident", "for")
        self.expect("op", "(")
        if self.accept("op", ";"):
            init = None
        elif self.peek().kind == "ident" and self.peek().value in TYPE_KEYWORDS:
            init = self.parse_declaration()
        else:
            init = ("expr", self.parse_expression())
            self.expect("op", ";")
        cond = None
        if not self.accept("op", ";"):
            cond = self.parse_expression()
            self.expect("op", ";")
        step = None
        if not self.accept("op", ")"):
            step = self.parse_expression()
            self.expect("op", ")")
        body = self.parse_statement()
        return ("for", init, cond, step, body)

    def parse_while(self):
        self.expect("ident", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ("while", cond, body)

    # ---- expressions ----------------------------------------------------

    _ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "^=", "|=", "&=",
                   "<<=", ">>="}
    _BINARY_LEVELS = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", "<=", ">", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def parse_expression(self):
        return self.parse_assignment()

    def parse_assignment(self):
        left = self.parse_ternary()
        token = self.peek()
        if token.kind == "op" and token.value in self._ASSIGN_OPS:
            self.next()
            right = self.parse_assignment()
            return ("assign", token.value, left, right)
        return left

    def parse_ternary(self):
        cond = self.parse_binary(0)
        if self.accept("op", "?"):
            then_value = self.parse_expression()
            self.expect("op", ":")
            else_value = self.parse_ternary()
            return ("ternary", cond, then_value, else_value)
        return cond

    def parse_binary(self, level: int):
        if level >= len(self._BINARY_LEVELS):
            return self.parse_unary()
        ops = self._BINARY_LEVELS[level]
        left = self.parse_binary(level + 1)
        while self.peek().kind == "op" and self.peek().value in ops:
            op = self.next().value
            right = self.parse_binary(level + 1)
            left = ("bin", op, left, right)
        return left

    def parse_unary(self):
        token = self.peek()
        if token.kind == "op" and token.value in ("!", "~", "-", "+"):
            self.next()
            return ("un", token.value, self.parse_unary())
        if token.kind == "op" and token.value in ("++", "--"):
            self.next()
            delta = 1 if token.value == "++" else -1
            return ("preinc", self.parse_unary(), delta)
        return self.parse_postfix()

    def parse_postfix(self):
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.value == "[":
                self.next()
                index = self.parse_expression()
                self.expect("op", "]")
                expr = ("index", expr, index)
            elif token.kind == "op" and token.value == "(":
                if expr[0] != "var":
                    raise ReactionError("only named functions can be called")
                self.next()
                args = self.parse_call_args()
                expr = ("call", expr[1], args)
            elif token.kind == "op" and token.value == ".":
                self.next()
                method = self.expect("ident").value
                self.expect("op", "(")
                args = self.parse_call_args()
                if expr[0] != "var":
                    raise ReactionError("method calls require a table name")
                expr = ("method", expr[1], method, args)
            elif token.kind == "op" and token.value in ("++", "--"):
                self.next()
                delta = 1 if token.value == "++" else -1
                expr = ("postinc", expr, delta)
            else:
                return expr

    def parse_call_args(self):
        args = []
        if not self.accept("op", ")"):
            args.append(self.parse_assignment())
            while self.accept("op", ","):
                args.append(self.parse_assignment())
            self.expect("op", ")")
        return args

    def parse_primary(self):
        token = self.peek()
        if token.kind == "number":
            return ("num", parse_int(self.next().value))
        if token.kind == "string":
            return ("str", self.next().value)
        if token.kind == "op" and token.value == "(":
            self.next()
            inner = self.parse_expression()
            self.expect("op", ")")
            return inner
        if token.kind == "op" and token.value == "${":
            self.next()
            name = self.expect("ident").value
            self.expect("op", "}")
            return ("mbl", name)
        if token.kind == "ident":
            return ("var", self.next().value)
        raise ReactionError(
            f"reaction syntax: unexpected {token.value!r} (line {token.line})"
        )


# ---------------------------------------------------------------------------
# Interpreter


class CReaction:
    """A parsed, executable reaction body.

    ``run(env)`` executes the body against a :class:`ReactionEnv` and
    returns the value of an executed ``return`` (or ``None``).
    """

    def __init__(self, source: str, name: str = "reaction"):
        self.name = name
        self.source = source
        self.body = _CParser(source).parse_body()
        # Expression evaluations of the most recent run -- the agent
        # charges simulated CPU time proportional to this (the "C"
        # term of the Section 8.1 cost formula).
        self.last_op_count = 0

    def run(self, env: ReactionEnv):
        self.last_op_count = 0
        scopes: List[Dict[str, _CVar]] = [{}]
        try:
            for stmt in self.body:
                self._exec(stmt, env, scopes)
        except _Return as ret:
            return ret.value
        except (_Break, _Continue):
            raise ReactionError("break/continue outside a loop")
        return None

    # ---- statement execution -------------------------------------------

    def _exec(self, stmt, env: ReactionEnv, scopes) -> None:
        kind = stmt[0]
        if kind == "expr":
            self._eval(stmt[1], env, scopes)
        elif kind == "decl":
            self._exec_decl(stmt, env, scopes)
        elif kind == "block":
            scopes.append({})
            try:
                for inner in stmt[1]:
                    self._exec(inner, env, scopes)
            finally:
                scopes.pop()
        elif kind == "if":
            _, cond, then_stmt, else_stmt = stmt
            if self._truthy(self._eval(cond, env, scopes)):
                self._exec(then_stmt, env, scopes)
            elif else_stmt is not None:
                self._exec(else_stmt, env, scopes)
        elif kind == "for":
            self._exec_for(stmt, env, scopes)
        elif kind == "while":
            _, cond, body = stmt
            while self._truthy(self._eval(cond, env, scopes)):
                try:
                    self._exec(body, env, scopes)
                except _Break:
                    break
                except _Continue:
                    continue
        elif kind == "return":
            value = None if stmt[1] is None else self._eval(stmt[1], env, scopes)
            raise _Return(value)
        elif kind == "break":
            raise _Break()
        elif kind == "continue":
            raise _Continue()
        else:  # pragma: no cover - parser emits only the kinds above
            raise ReactionError(f"unknown statement kind {kind!r}")

    def _exec_decl(self, stmt, env: ReactionEnv, scopes) -> None:
        _, static, ctype, declarators = stmt
        for name, array_size, init in declarators:
            if static:
                key = f"{self.name}::{name}"
                if key in env.statics:
                    scopes[-1][name] = env.statics[key]
                    continue
            var = self._make_var(ctype, array_size, init, env, scopes)
            scopes[-1][name] = var
            if static:
                env.statics[f"{self.name}::{name}"] = var

    def _make_var(self, ctype, array_size, init, env, scopes) -> _CVar:
        if array_size is not None:
            values = [0] * array_size
            if init is not None:
                if init[0] != "initlist":
                    raise ReactionError("array initializer must be a {...} list")
                for position, item in enumerate(init[1][:array_size]):
                    values[position] = self._eval(item, env, scopes)
            var = _CVar(values, ctype)
            return var
        var = _CVar(0, ctype)
        if init is not None:
            if init[0] == "initlist":
                raise ReactionError("scalar initializer cannot be a {...} list")
            var.value = var.coerce(self._eval(init, env, scopes))
        elif ctype in _FLOAT_TYPES:
            var.value = 0.0
        return var

    def _exec_for(self, stmt, env: ReactionEnv, scopes) -> None:
        _, init, cond, step, body = stmt
        scopes.append({})
        try:
            if init is not None:
                self._exec(init, env, scopes)
            while cond is None or self._truthy(self._eval(cond, env, scopes)):
                try:
                    self._exec(body, env, scopes)
                except _Break:
                    break
                except _Continue:
                    pass
                if step is not None:
                    self._eval(step, env, scopes)
        finally:
            scopes.pop()

    # ---- expression evaluation -------------------------------------------

    @staticmethod
    def _truthy(value) -> bool:
        return bool(value)

    def _lookup(self, name: str, scopes) -> Optional[_CVar]:
        for scope in reversed(scopes):
            if name in scope:
                return scope[name]
        return None

    def _eval(self, expr, env: ReactionEnv, scopes):
        self.last_op_count += 1
        kind = expr[0]
        if kind == "num":
            return expr[1]
        if kind == "str":
            return expr[1]
        if kind == "var":
            return self._eval_var(expr[1], env, scopes)
        if kind == "mbl":
            return env.read_malleable(expr[1])
        if kind == "bin":
            return self._eval_bin(expr, env, scopes)
        if kind == "un":
            return self._eval_un(expr, env, scopes)
        if kind == "ternary":
            _, cond, then_value, else_value = expr
            if self._truthy(self._eval(cond, env, scopes)):
                return self._eval(then_value, env, scopes)
            return self._eval(else_value, env, scopes)
        if kind == "index":
            container = self._eval(expr[1], env, scopes)
            index = self._eval(expr[2], env, scopes)
            try:
                return container[index]
            except (KeyError, IndexError, TypeError) as exc:
                raise ReactionError(f"bad array access [{index}]: {exc}") from exc
        if kind == "assign":
            return self._eval_assign(expr, env, scopes)
        if kind in ("preinc", "postinc"):
            _, target, delta = expr
            old = self._eval(target, env, scopes)
            self._store(target, old + delta, env, scopes)
            return old + delta if kind == "preinc" else old
        if kind == "call":
            return self._eval_call(expr, env, scopes)
        if kind == "method":
            return self._eval_method(expr, env, scopes)
        raise ReactionError(f"unknown expression kind {kind!r}")

    def _eval_var(self, name: str, env: ReactionEnv, scopes):
        var = self._lookup(name, scopes)
        if var is not None:
            return var.value
        if name in env.args:
            return env.args[name]
        if name in env.tables:
            return env.tables[name]
        raise ReactionError(f"undefined identifier {name!r}")

    def _eval_bin(self, expr, env: ReactionEnv, scopes):
        _, op, left_expr, right_expr = expr
        if op == "&&":
            return 1 if (
                self._truthy(self._eval(left_expr, env, scopes))
                and self._truthy(self._eval(right_expr, env, scopes))
            ) else 0
        if op == "||":
            return 1 if (
                self._truthy(self._eval(left_expr, env, scopes))
                or self._truthy(self._eval(right_expr, env, scopes))
            ) else 0
        left = self._eval(left_expr, env, scopes)
        right = self._eval(right_expr, env, scopes)
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if isinstance(left, float) or isinstance(right, float):
                    return left / right
                # C integer division truncates toward zero.
                quotient = abs(left) // abs(right)
                return quotient if (left >= 0) == (right >= 0) else -quotient
            if op == "%":
                remainder = abs(left) % abs(right)
                return remainder if left >= 0 else -remainder
            if op == "<<":
                return left << right
            if op == ">>":
                return left >> right
            if op == "&":
                return left & right
            if op == "|":
                return left | right
            if op == "^":
                return left ^ right
            if op == "==":
                return 1 if left == right else 0
            if op == "!=":
                return 1 if left != right else 0
            if op == "<":
                return 1 if left < right else 0
            if op == "<=":
                return 1 if left <= right else 0
            if op == ">":
                return 1 if left > right else 0
            if op == ">=":
                return 1 if left >= right else 0
        except ZeroDivisionError as exc:
            raise ReactionError("division by zero in reaction") from exc
        raise ReactionError(f"unknown operator {op!r}")

    def _eval_un(self, expr, env: ReactionEnv, scopes):
        _, op, operand_expr = expr
        operand = self._eval(operand_expr, env, scopes)
        if op == "!":
            return 0 if self._truthy(operand) else 1
        if op == "~":
            return ~operand
        if op == "-":
            return -operand
        return operand

    def _eval_assign(self, expr, env: ReactionEnv, scopes):
        _, op, target, value_expr = expr
        value = self._eval(value_expr, env, scopes)
        if op != "=":
            current = self._eval(target, env, scopes)
            delta_op = op[:-1]  # "+=" -> "+", "<<=" -> "<<"
            value = self._eval_bin(
                ("bin", delta_op, ("num", current), ("num", value)), env, scopes
            )
        self._store(target, value, env, scopes)
        return value

    def _store(self, target, value, env: ReactionEnv, scopes) -> None:
        kind = target[0]
        if kind == "var":
            var = self._lookup(target[1], scopes)
            if var is None:
                raise ReactionError(
                    f"assignment to undeclared variable {target[1]!r}"
                )
            var.value = var.coerce(value)
            return
        if kind == "mbl":
            env.write_malleable(target[1], int(value))
            return
        if kind == "index":
            container = self._eval(target[1], env, scopes)
            index = self._eval(target[2], env, scopes)
            try:
                container[index] = value
            except (KeyError, IndexError, TypeError) as exc:
                raise ReactionError(
                    f"bad array store [{index}]: {exc}"
                ) from exc
            return
        raise ReactionError("invalid assignment target")

    def _eval_call(self, expr, env: ReactionEnv, scopes):
        _, name, arg_exprs = expr
        args = [self._eval(a, env, scopes) for a in arg_exprs]
        if name in env.externs:
            return env.externs[name](*args)
        if name in _BUILTINS:
            return _BUILTINS[name](*args)
        raise ReactionError(f"call to unknown function {name!r}")

    def _eval_method(self, expr, env: ReactionEnv, scopes):
        _, table_name, method, arg_exprs = expr
        if table_name not in env.tables:
            raise ReactionError(f"unknown table handle {table_name!r}")
        handle = env.tables[table_name]
        args = [self._eval(a, env, scopes) for a in arg_exprs]
        bound = getattr(handle, method, None)
        if bound is None or not callable(bound):
            raise ReactionError(
                f"table {table_name!r} has no method {method!r}"
            )
        return bound(*args)
