"""Parser for P4R: the P4-14 grammar plus the Figure 3 extensions.

Subclasses :class:`~repro.p4.parser.P4Parser`, adding:

- ``malleable value NAME { width : W; init : V; }``
- ``malleable field NAME { width : W; init : ref; alts { ref, ... }; }``
- ``malleable table NAME { ... }``
- ``reaction NAME ( args ) { C-like body }``

Reaction bodies are sliced verbatim out of the source by brace matching
and stored on the :class:`~repro.p4r.ast.ReactionDecl`; the token
stream is resynchronised afterwards.
"""

from __future__ import annotations

from repro.errors import P4SyntaxError
from repro.p4 import ast as p4ast
from repro.p4.lexer import match_brace_block, token_at_or_after
from repro.p4.parser import P4Parser
from repro.p4r import ast as p4rast


class P4RParser(P4Parser):
    """Parse P4R source into a :class:`~repro.p4r.ast.P4RProgram`."""

    def __init__(self, source: str):
        super().__init__(source)
        self.program = p4rast.P4RProgram()

    # ---- new declarations ----------------------------------------------

    def _parse_malleable(self) -> None:
        kind = self.expect_ident()
        if kind == "value":
            self._parse_malleable_value()
        elif kind == "field":
            self._parse_malleable_field()
        elif kind == "table":
            self._parse_table(malleable=True)
        else:
            raise P4SyntaxError(
                f"malleable must be followed by value/field/table, got {kind!r}"
            )

    def _parse_malleable_value(self) -> None:
        name = self.expect_ident()
        self.expect_op("{")
        width, init = None, 0
        while not self.accept("op", "}"):
            key = self.expect_ident()
            self.expect_op(":")
            if key == "width":
                width = self.expect_number()
            elif key == "init":
                init = self.expect_number()
            else:
                raise P4SyntaxError(f"unknown malleable value attribute {key!r}")
            self.expect_op(";")
        if width is None:
            raise P4SyntaxError(f"malleable value {name!r} missing width")
        self.program.add_malleable_value(
            p4rast.MalleableValue(name, width, init)
        )

    def _parse_malleable_field(self) -> None:
        name = self.expect_ident()
        self.expect_op("{")
        width, init, alts = None, None, []
        while not self.accept("op", "}"):
            key = self.expect_ident()
            if key == "width":
                self.expect_op(":")
                width = self.expect_number()
                self.expect_op(";")
            elif key == "init":
                self.expect_op(":")
                init = self.parse_ref()
                self.expect_op(";")
            elif key == "alts":
                self.expect_op("{")
                alts.append(self.parse_ref())
                while self.accept("op", ","):
                    alts.append(self.parse_ref())
                self.expect_op("}")
                # Trailing ';' after the alts block is optional in the
                # paper's examples; accept both styles.
                self.accept("op", ";")
            else:
                raise P4SyntaxError(f"unknown malleable field attribute {key!r}")
        if width is None:
            raise P4SyntaxError(f"malleable field {name!r} missing width")
        if not alts and init is None:
            raise P4SyntaxError(f"malleable field {name!r} has no alternatives")
        self.program.add_malleable_field(
            p4rast.MalleableField(name, width, init, alts)
        )

    def _parse_reaction(self) -> None:
        name = self.expect_ident()
        self.expect_op("(")
        args = []
        if not self.accept("op", ")"):
            args.append(self._parse_reaction_arg())
            while self.accept("op", ","):
                args.append(self._parse_reaction_arg())
            self.expect_op(")")
        open_brace = self.expect_op("{")
        end_offset = match_brace_block(self.source, open_brace.offset)
        body = self.source[open_brace.offset + 1 : end_offset - 1]
        self.index = token_at_or_after(self.tokens, end_offset, self.index)
        self.program.add_reaction(p4rast.ReactionDecl(name, args, body))

    def _parse_reaction_arg(self) -> p4rast.ReactionArg:
        token = self.peek()
        if token.kind == "ident" and token.value in ("ing", "egr"):
            kind = self.next().value
            ref = self.parse_ref()
            if isinstance(ref, p4ast.MalleableRef):
                return p4rast.ReactionArg("mbl", ref.name)
            return p4rast.ReactionArg(kind, ref)
        if token.kind == "ident" and token.value == "reg":
            self.next()
            register = self.expect_ident()
            lo, hi = 0, 0
            if self.accept("op", "["):
                lo = self.expect_number()
                self.expect_op(":")
                hi = self.expect_number()
                self.expect_op("]")
            return p4rast.ReactionArg("reg", register, lo, hi)
        if token.kind == "op" and token.value == "${":
            ref = self.parse_ref()
            return p4rast.ReactionArg("mbl", ref.name)
        # Bare field ref defaults to an ingress-collected parameter.
        ref = self.parse_ref()
        if isinstance(ref, p4ast.MalleableRef):
            return p4rast.ReactionArg("mbl", ref.name)
        return p4rast.ReactionArg("ing", ref)


def parse_p4r(source: str) -> p4rast.P4RProgram:
    """Parse P4R source text and return the P4R program AST."""
    program = P4RParser(source).parse()
    program.validate_p4r()
    return program
