"""AST nodes specific to P4R (the paper's Figure 3 grammar).

Malleable *tables* are plain :class:`~repro.p4.ast.TableDecl` nodes with
``malleable=True``; only values, fields and reactions need new node
types.  :class:`P4RProgram` extends the P4 :class:`Program` container
with indexes for them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import P4SemanticError
from repro.p4.ast import FieldRef, Program


@dataclass
class MalleableValue:
    """``malleable value name { width : W; init : V; }``

    A runtime-configurable constant used inside action expressions.
    """

    name: str
    width: int
    init: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise P4SemanticError(f"malleable value {self.name}: width must be > 0")
        if self.init >= (1 << self.width) or self.init < 0:
            raise P4SemanticError(
                f"malleable value {self.name}: init {self.init} does not fit "
                f"in {self.width} bits"
            )


@dataclass
class MalleableField:
    """``malleable field name { width; init; alts {...} }``

    A runtime-shiftable reference to one of a fixed set of header or
    metadata fields (the ``alts``).
    """

    name: str
    width: int
    init: FieldRef = None
    alts: List[FieldRef] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.init is not None and self.init not in self.alts:
            # The paper's grammar lists init separately; we follow the
            # compiler's requirement that init be one of the alts.
            self.alts.insert(0, self.init)

    @property
    def selector_width(self) -> int:
        """Width of the generated alt-selector metadata bit(s):
        ceil(log2(|alts|)) per Section 4.1."""
        return max(1, math.ceil(math.log2(max(2, len(self.alts)))))

    def alt_index(self, ref: FieldRef) -> int:
        for index, alt in enumerate(self.alts):
            if alt == ref:
                return index
        raise P4SemanticError(
            f"{ref} is not an alternative of malleable field {self.name}"
        )

    @property
    def init_index(self) -> int:
        return self.alt_index(self.init) if self.init is not None else 0


@dataclass
class ReactionArg:
    """One parameter of a reaction (Figure 3 ``reaction_args``).

    ``kind`` is one of:

    - ``"ing"`` / ``"egr"`` -- a header/metadata field collected from
      every passing packet at the end of that pipeline,
    - ``"reg"`` -- a user register (array) slice read directly,
    - ``"mbl"`` -- the last-written value of a malleable.

    ``c_name`` is the identifier the reaction body uses.
    """

    kind: str
    ref: object  # FieldRef for ing/egr, str register name for reg, str for mbl
    lo: int = 0
    hi: int = 0
    c_name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("ing", "egr", "reg", "mbl"):
            raise P4SemanticError(f"unknown reaction arg kind {self.kind!r}")
        if not self.c_name:
            if self.kind == "reg":
                self.c_name = str(self.ref)
            elif self.kind == "mbl":
                self.c_name = str(self.ref)
            else:
                self.c_name = f"{self.ref.header}_{self.ref.field}"

    @property
    def entry_count(self) -> int:
        """Number of polled values (1 for scalars, slice len for regs)."""
        if self.kind == "reg":
            return self.hi - self.lo + 1
        return 1


@dataclass
class ReactionDecl:
    """``reaction name(args) { C-like body }``.

    ``body_source`` is the raw C-like text between the braces; it is
    parsed lazily by :mod:`repro.p4r.creaction` (users may alternatively
    attach a Python callable at agent-registration time, mirroring the
    paper's dynamically loaded ``.so`` reactions).
    """

    name: str
    args: List[ReactionArg] = field(default_factory=list)
    body_source: str = ""

    def arg(self, c_name: str) -> ReactionArg:
        for arg in self.args:
            if arg.c_name == c_name:
                return arg
        raise P4SemanticError(
            f"reaction {self.name} has no argument {c_name!r}"
        )


class P4RProgram(Program):
    """A parsed P4R program: a P4 program plus malleables + reactions."""

    def __init__(self) -> None:
        super().__init__()
        self.malleable_values: Dict[str, MalleableValue] = {}
        self.malleable_fields: Dict[str, MalleableField] = {}
        self.reactions: Dict[str, ReactionDecl] = {}

    def add_malleable_value(self, value: MalleableValue) -> None:
        self._check_malleable_name(value.name)
        self.malleable_values[value.name] = value

    def add_malleable_field(self, fld: MalleableField) -> None:
        self._check_malleable_name(fld.name)
        self.malleable_fields[fld.name] = fld

    def add_reaction(self, reaction: ReactionDecl) -> None:
        if reaction.name in self.reactions:
            raise P4SemanticError(f"duplicate reaction {reaction.name!r}")
        self.reactions[reaction.name] = reaction

    def _check_malleable_name(self, name: str) -> None:
        if name in self.malleable_values or name in self.malleable_fields:
            raise P4SemanticError(f"duplicate malleable {name!r}")

    def malleable(self, name: str):
        """Look up a malleable value or field by name."""
        if name in self.malleable_values:
            return self.malleable_values[name]
        if name in self.malleable_fields:
            return self.malleable_fields[name]
        raise P4SemanticError(f"unknown malleable {name!r}")

    def malleable_tables(self) -> List[str]:
        return [t.name for t in self.tables.values() if t.malleable]

    def validate_p4r(self) -> None:
        """P4R-specific semantic checks (on top of the base validator)."""
        for fld in self.malleable_fields.values():
            for alt in fld.alts:
                if not self.has_field(alt):
                    raise P4SemanticError(
                        f"malleable field {fld.name}: alt {alt} is not a "
                        f"declared field"
                    )
                if self.field_width(alt) > fld.width:
                    raise P4SemanticError(
                        f"malleable field {fld.name}: alt {alt} is wider "
                        f"than the declared width {fld.width}"
                    )
        for reaction in self.reactions.values():
            for arg in reaction.args:
                if arg.kind in ("ing", "egr") and not self.has_field(arg.ref):
                    raise P4SemanticError(
                        f"reaction {reaction.name}: unknown field {arg.ref}"
                    )
                if arg.kind == "reg":
                    if arg.ref not in self.registers:
                        raise P4SemanticError(
                            f"reaction {reaction.name}: unknown register "
                            f"{arg.ref!r}"
                        )
                    register = self.registers[arg.ref]
                    if not (0 <= arg.lo <= arg.hi < register.instance_count):
                        raise P4SemanticError(
                            f"reaction {reaction.name}: register slice "
                            f"[{arg.lo}:{arg.hi}] out of bounds for "
                            f"{arg.ref} ({register.instance_count} entries)"
                        )
                if arg.kind == "mbl":
                    self.malleable(arg.ref)
