"""Reaction compiler: creaction AST -> exec-generated Python closures.

The paper's agent compiles reaction C code with gcc and dynamically
loads the ``.so`` (Section 6); the tree-walking interpreter in
:mod:`repro.p4r.creaction` reproduces the *semantics* but pays a
Python-level dispatch per AST node per iteration.  This module is the
control-plane twin of the data-plane closure compiler
(:mod:`repro.switch.compiled`): it lowers the same tuple AST, once, to
straight-line Python source that is ``exec``-compiled and bound to a
:class:`~repro.p4r.creaction.ReactionEnv`:

- constant subexpressions are folded at compile time;
- width masks come baked into store sites from the engines' shared
  :data:`~repro.p4r.creaction.TYPE_MASKS` table;
- non-static locals become plain Python locals; ``static`` scalars and
  arrays stay :class:`_CVar` cells living in ``env.statics`` (so both
  engines share one representation of persistent state);
- ``${var}`` reads/writes, extern/builtin calls, and table method
  calls are resolved to prefetched handles at *bind* time instead of
  per-iteration dict lookups.

Parity contract (enforced by ``tests/p4r/test_compiled_reaction.py``):
for any program both engines produce identical return values,
malleable read/write sequences, table operations, static state, and
``last_op_count`` (the agent charges simulated CPU time per counted
expression, so the simulated timelines must match bit for bit).

Known, documented divergences from the interpreter (all outside the
language subset the compiler front end emits):

- a *bare* declaration used as an ``if``/``else``/loop body (no
  braces) leaks into the enclosing scope only when the branch runs in
  the interpreter; the compiler scopes every branch body statically;
- ``last_op_count`` is updated only when a run completes (normally or
  via ``return``); the interpreter also exposes partial counts after
  a raised :class:`ReactionError`;
- name classification (local vs. argument vs. table vs. extern) is
  snapshotted per bound environment: a given ``ReactionEnv`` object
  must keep stable ``args``/``tables``/``externs`` key sets between
  runs (the agent rebinds whenever that changes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ReactionError
from repro.p4r.creaction import (
    _BUILTINS,
    _CParser,
    _CVar,
    _FLOAT_TYPES,
    ReactionEnv,
    TYPE_MASKS,
)

REACTION_ENGINE_ENV = "MANTIS_REACTION"
REACTION_ENGINES = ("compiled", "interp")

# Sentinel distinguishing "table absent from env.tables" from a table
# bound to None (the interpreter's `in` check makes that distinction).
_MISSING = object()


# ---------------------------------------------------------------------------
# Runtime helpers shared by all generated closures.  Error messages
# mirror the interpreter's exactly -- the differential tests compare
# raised errors verbatim.


def _cdiv(left, right):
    try:
        if isinstance(left, float) or isinstance(right, float):
            return left / right
        # C integer division truncates toward zero.
        quotient = abs(left) // abs(right)
    except ZeroDivisionError as exc:
        raise ReactionError("division by zero in reaction") from exc
    return quotient if (left >= 0) == (right >= 0) else -quotient


def _cmod(left, right):
    try:
        remainder = abs(left) % abs(right)
    except ZeroDivisionError as exc:
        raise ReactionError("division by zero in reaction") from exc
    return remainder if left >= 0 else -remainder


def _index_read(container, index):
    try:
        return container[index]
    except (KeyError, IndexError, TypeError) as exc:
        raise ReactionError(f"bad array access [{index}]: {exc}") from exc


def _index_store(container, index, value):
    try:
        container[index] = value
    except (KeyError, IndexError, TypeError) as exc:
        raise ReactionError(f"bad array store [{index}]: {exc}") from exc


def _undef(name):
    raise ReactionError(f"undefined identifier {name!r}")


def _no_fn(name):
    raise ReactionError(f"call to unknown function {name!r}")


def _no_table(name):
    raise ReactionError(f"unknown table handle {name!r}")


def _no_method(table, method):
    raise ReactionError(f"table {table!r} has no method {method!r}")


def _bad_store(name):
    raise ReactionError(f"assignment to undeclared variable {name!r}")


def _bad_target():
    raise ReactionError("invalid assignment target")


_EXEC_GLOBALS = {
    "ReactionError": ReactionError,
    "_CVar": _CVar,
    "_BUILTINS": _BUILTINS,
    "_MISSING": _MISSING,
    "_cdiv": _cdiv,
    "_cmod": _cmod,
    "_index_read": _index_read,
    "_index_store": _index_store,
    "_undef": _undef,
    "_no_fn": _no_fn,
    "_no_table": _no_table,
    "_no_method": _no_method,
    "_bad_store": _bad_store,
    "_bad_target": _bad_target,
}


# ---------------------------------------------------------------------------
# Codegen


class _Frag:
    """A compiled expression fragment: Python code + const metadata."""

    __slots__ = ("code", "const", "value")

    def __init__(self, code: str, const: bool = False, value=None):
        self.code = code
        self.const = const
        self.value = value


def _has_side_effects(expr) -> bool:
    """Can evaluating this subtree observably mutate state?  Malleable
    reads count: a custom ``read_malleable`` may record call order and
    the differential tests compare those sequences."""
    if not isinstance(expr, tuple):
        return False
    kind = expr[0]
    if kind in ("num", "str", "var"):
        return False
    if kind in ("mbl", "assign", "preinc", "postinc", "call", "method"):
        return True
    if kind in ("bin", "un", "ternary", "index"):
        return any(
            _has_side_effects(child)
            for child in expr[1:]
            if isinstance(child, tuple)
        )
    return True  # unknown kind: be conservative


_CMP_OPS = {"==", "!=", "<", "<=", ">", ">="}
_DIRECT_OPS = {"+", "-", "*", "<<", ">>", "&", "|", "^"}


class _Codegen:
    """Lowers a parsed reaction body to the ``__bind__``/``__run__``
    source executed by :class:`CompiledReaction`.

    Op-count parity: the interpreter increments ``last_op_count`` once
    per :meth:`CReaction._eval` call.  The generated code accumulates
    per-basic-block constants into ``_ops`` (flushed at control-flow
    boundaries), replicating the interpreter's count exactly --
    including the double evaluation of index subexpressions in
    compound assignments and the two synthetic ``num`` wrappers the
    interpreter feeds ``_eval_bin`` for compound operators.
    """

    def __init__(self, body: list, reaction_name: str):
        self.name = reaction_name
        self.body = body
        self.bind_lines: List[str] = []
        self.run_lines: List[str] = []
        self.depth = 2
        self.pending = 0
        # Compile-time scope stack: C name -> binding tuple
        #   ("local", py_name, ctype)  plain Python local (scalar/list)
        #   ("static", cell_name, ctype)  _CVar cell in env.statics
        self.scopes: List[Dict[str, tuple]] = [{}]
        # Loop stack: ("for", step_ast, scope_depth) | ("while",)
        self.loops: List[tuple] = []
        self._counter = 0
        self._cells: Dict[tuple, str] = {}
        self.source = self._build()

    # ---- low-level emission --------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"_{prefix}{self._counter}"

    def emit(self, line: str) -> None:
        self.run_lines.append("    " * self.depth + line)

    def flush(self) -> None:
        if self.pending:
            self.emit(f"_ops += {self.pending}")
            self.pending = 0

    def spill(self, frag: _Frag) -> _Frag:
        if frag.const:
            return frag
        temp = self._fresh("t")
        self.emit(f"{temp} = {frag.code}")
        return _Frag(temp)

    # ---- bind-time cells ------------------------------------------------

    def _cell(self, key: tuple, lines: List[str]) -> str:
        if key not in self._cells:
            name = self._fresh("c")
            for line in lines:
                self.bind_lines.append("    " + line.replace("@", name))
            self._cells[key] = name
        return self._cells[key]

    def _table_cell(self, table: str) -> str:
        return self._cell(
            ("table", table),
            [f"@ = _env.tables.get({table!r}, _MISSING)"],
        )

    def _method_cell(self, table: str, method: str) -> str:
        handle = self._table_cell(table)
        return self._cell(
            ("method", table, method),
            [
                f"@ = None if {handle} is _MISSING else "
                f"getattr({handle}, {method!r}, None)",
                "if @ is not None and not callable(@):",
                "    @ = None",
            ],
        )

    def _fn_cell(self, name: str) -> str:
        return self._cell(
            ("fn", name),
            [
                f"if {name!r} in _env.externs:",
                f"    @ = _env.externs[{name!r}]",
                f"elif {name!r} in _BUILTINS:",
                f"    @ = _BUILTINS[{name!r}]",
                "else:",
                "    @ = None",
            ],
        )

    def _free_reader(self, name: str) -> str:
        """A bind-level helper replicating the interpreter's free-name
        lookup order: env.args, then env.tables, then ReactionError."""
        key = ("free", name)
        if key not in self._cells:
            fn = self._fresh("rd")
            self.bind_lines.extend(
                [
                    f"    def {fn}():",
                    "        _a = _env.args",
                    f"        if {name!r} in _a:",
                    f"            return _a[{name!r}]",
                    f"        if {name!r} in _env.tables:",
                    f"            return _env.tables[{name!r}]",
                    f"        _undef({name!r})",
                ]
            )
            self._cells[key] = fn
        return self._cells[key]

    # ---- scope handling -------------------------------------------------

    def _lookup(self, name: str) -> Optional[tuple]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # ---- coercion / folding ---------------------------------------------

    def _coerce_code(self, ctype: str, frag: _Frag) -> str:
        if frag.const:
            try:
                if ctype in _FLOAT_TYPES:
                    return repr(float(frag.value))
                value = int(frag.value)
                mask = TYPE_MASKS[ctype]
                if mask is not None:
                    value &= mask
                return repr(value)
            except (TypeError, ValueError):
                pass  # e.g. string literal: leave the runtime error in
        if ctype in _FLOAT_TYPES:
            return f"float({frag.code})"
        mask = TYPE_MASKS[ctype]
        if mask is None:
            return f"int({frag.code})"
        return f"int({frag.code}) & {mask}"

    def _binop_code(self, op: str, left: _Frag, right: _Frag) -> _Frag:
        if left.const and right.const:
            folded = self._fold_bin(op, left.value, right.value)
            if folded is not None:
                return folded
        lc, rc = left.code, right.code
        if op in _DIRECT_OPS:
            return _Frag(f"({lc} {op} {rc})")
        if op in _CMP_OPS:
            return _Frag(f"(1 if {lc} {op} {rc} else 0)")
        if op == "/":
            return _Frag(f"_cdiv({lc}, {rc})")
        if op == "%":
            return _Frag(f"_cmod({lc}, {rc})")
        raise ReactionError(f"unknown operator {op!r}")

    @staticmethod
    def _fold_bin(op: str, left, right) -> Optional[_Frag]:
        try:
            if op in _DIRECT_OPS:
                value = {
                    "+": lambda: left + right,
                    "-": lambda: left - right,
                    "*": lambda: left * right,
                    "<<": lambda: left << right,
                    ">>": lambda: left >> right,
                    "&": lambda: left & right,
                    "|": lambda: left | right,
                    "^": lambda: left ^ right,
                }[op]()
            elif op in _CMP_OPS:
                value = {
                    "==": lambda: 1 if left == right else 0,
                    "!=": lambda: 1 if left != right else 0,
                    "<": lambda: 1 if left < right else 0,
                    "<=": lambda: 1 if left <= right else 0,
                    ">": lambda: 1 if left > right else 0,
                    ">=": lambda: 1 if left >= right else 0,
                }[op]()
            elif op == "/":
                value = _cdiv(left, right)
            elif op == "%":
                value = _cmod(left, right)
            else:
                return None
        except Exception:
            return None  # keep the (matching) error at runtime
        return _Frag(repr(value), const=True, value=value)

    # ---- expressions ----------------------------------------------------

    def compile_operands(self, exprs: List) -> List[_Frag]:
        """Compile ordered sibling operands; spill any operand followed
        by a side-effecting sibling so evaluation order (reads included)
        matches the interpreter's strict left-to-right semantics."""
        impure_after = [False] * len(exprs)
        flag = False
        for index in range(len(exprs) - 1, -1, -1):
            impure_after[index] = flag
            flag = flag or _has_side_effects(exprs[index])
        frags = []
        for index, expr in enumerate(exprs):
            frag = self.compile_expr(expr)
            if impure_after[index]:
                frag = self.spill(frag)
            frags.append(frag)
        return frags

    def compile_expr(self, expr, want: bool = True) -> _Frag:
        kind = expr[0]
        self.pending += 1  # every evaluated AST node counts one op
        if kind == "num" or kind == "str":
            return _Frag(repr(expr[1]), const=True, value=expr[1])
        if kind == "var":
            return self._compile_var_read(expr[1])
        if kind == "mbl":
            return self.spill(_Frag(f"_rm({expr[1]!r})"))
        if kind == "bin":
            return self._compile_bin(expr)
        if kind == "un":
            return self._compile_un(expr)
        if kind == "ternary":
            return self._compile_ternary(expr)
        if kind == "index":
            container, index = self.compile_operands([expr[1], expr[2]])
            return _Frag(f"_index_read({container.code}, {index.code})")
        if kind == "assign":
            return self._compile_assign(expr, want)
        if kind in ("preinc", "postinc"):
            return self._compile_incdec(expr)
        if kind == "call":
            return self._compile_call(expr)
        if kind == "method":
            return self._compile_method(expr)
        raise ReactionError(f"unknown expression kind {kind!r}")

    def _compile_var_read(self, name: str) -> _Frag:
        binding = self._lookup(name)
        if binding is None:
            return _Frag(f"{self._free_reader(name)}()")
        if binding[0] == "local":
            return _Frag(binding[1])
        return _Frag(f"{binding[1]}.value")

    def _compile_bin(self, expr) -> _Frag:
        _, op, left_expr, right_expr = expr
        if op in ("&&", "||"):
            left = self.compile_expr(left_expr)
            self.flush()
            temp = self._fresh("t")
            if op == "&&":
                self.emit(f"if {left.code}:")
                self.depth += 1
                right = self.compile_expr(right_expr)
                self.flush()
                self.emit(f"{temp} = 1 if {right.code} else 0")
                self.depth -= 1
                self.emit("else:")
                self.emit(f"    {temp} = 0")
            else:
                self.emit(f"if {left.code}:")
                self.emit(f"    {temp} = 1")
                self.emit("else:")
                self.depth += 1
                right = self.compile_expr(right_expr)
                self.flush()
                self.emit(f"{temp} = 1 if {right.code} else 0")
                self.depth -= 1
            return _Frag(temp)
        left, right = self.compile_operands([left_expr, right_expr])
        return self._binop_code(op, left, right)

    def _compile_un(self, expr) -> _Frag:
        _, op, operand_expr = expr
        operand = self.compile_expr(operand_expr)
        if op == "+":
            return operand  # the interpreter returns the operand as-is
        if operand.const:
            try:
                value = {
                    "!": lambda: 0 if operand.value else 1,
                    "~": lambda: ~operand.value,
                    "-": lambda: -operand.value,
                }[op]()
                return _Frag(repr(value), const=True, value=value)
            except Exception:
                pass
        if op == "!":
            return _Frag(f"(0 if {operand.code} else 1)")
        return _Frag(f"({op}{operand.code})")

    def _compile_ternary(self, expr) -> _Frag:
        _, cond_expr, then_expr, else_expr = expr
        cond = self.compile_expr(cond_expr)
        self.flush()
        temp = self._fresh("t")
        self.emit(f"if {cond.code}:")
        self.depth += 1
        then = self.compile_expr(then_expr)
        self.flush()
        self.emit(f"{temp} = {then.code}")
        self.depth -= 1
        self.emit("else:")
        self.depth += 1
        other = self.compile_expr(else_expr)
        self.flush()
        self.emit(f"{temp} = {other.code}")
        self.depth -= 1
        return _Frag(temp)

    def _compile_call(self, expr) -> _Frag:
        _, name, arg_exprs = expr
        cell = self._fn_cell(name)
        args = [self.spill(frag) for frag in self.compile_operands(arg_exprs)]
        self.emit(f"if {cell} is None:")
        self.emit(f"    _no_fn({name!r})")
        temp = self._fresh("t")
        arg_list = ", ".join(frag.code for frag in args)
        self.emit(f"{temp} = {cell}({arg_list})")
        return _Frag(temp)

    def _compile_method(self, expr) -> _Frag:
        _, table, method, arg_exprs = expr
        handle = self._table_cell(table)
        bound = self._method_cell(table, method)
        # The interpreter checks table presence *before* evaluating
        # args, method presence *after*.
        self.emit(f"if {handle} is _MISSING:")
        self.emit(f"    _no_table({table!r})")
        args = [self.spill(frag) for frag in self.compile_operands(arg_exprs)]
        self.emit(f"if {bound} is None:")
        self.emit(f"    _no_method({table!r}, {method!r})")
        temp = self._fresh("t")
        arg_list = ", ".join(frag.code for frag in args)
        self.emit(f"{temp} = {bound}({arg_list})")
        return _Frag(temp)

    # ---- assignment family ----------------------------------------------

    def _emit_scalar_store(self, binding, value_code: str) -> None:
        if binding[0] == "local":
            self.emit(f"{binding[1]} = {value_code}")
        else:
            self.emit(f"{binding[1]}.value = {value_code}")

    def _compile_assign(self, expr, want: bool) -> _Frag:
        _, op, target, value_expr = expr
        tkind = target[0]
        if op == "=":
            return self._compile_simple_assign(target, value_expr, want)
        # Compound: value, then full target read, then the interpreter's
        # two synthetic num wrappers, then the store (index targets
        # re-evaluate their subexpressions, side effects included).
        value = self.compile_expr(value_expr)
        if tkind != "mbl" and (
            _has_side_effects(target) or not value.const
        ):
            value = self.spill(value)
        delta_op = op[:-1]
        if tkind == "var":
            self.pending += 1
            binding = self._lookup(target[1])
            if binding is None:
                current = self.spill(
                    _Frag(f"{self._free_reader(target[1])}()")
                )
                self.pending += 2
                result = self.spill(
                    self._binop_code(delta_op, current, value)
                )
                self.emit(f"_bad_store({target[1]!r})")
                return result
            current = self.spill(self._compile_var_read(target[1]))
            self.pending += 2
            result = self.spill(self._binop_code(delta_op, current, value))
            ctype = binding[2]
            self._emit_scalar_store(
                binding, self._coerce_code(ctype, result)
            )
            return result
        if tkind == "mbl":
            value = self.spill(value)
            self.pending += 1
            current = self.spill(_Frag(f"_rm({target[1]!r})"))
            self.pending += 2
            result = self.spill(self._binop_code(delta_op, current, value))
            self.emit(f"_wm({target[1]!r}, int({result.code}))")
            return result
        if tkind == "index":
            self.pending += 1  # the index node of the target read
            container, index = self.compile_operands(
                [target[1], target[2]]
            )
            current = self.spill(
                _Frag(f"_index_read({container.code}, {index.code})")
            )
            self.pending += 2
            result = self.spill(self._binop_code(delta_op, current, value))
            container2, index2 = self.compile_operands(
                [target[1], target[2]]  # store re-evaluates, like _store
            )
            self.emit(
                f"_index_store({container2.code}, {index2.code}, "
                f"{result.code})"
            )
            return result
        # e.g. `(a + b) += 1`: target evaluated then rejected.
        self.compile_expr(target)
        self.emit("_bad_target()")
        return _Frag("None", const=True, value=None)

    def _compile_simple_assign(self, target, value_expr, want: bool) -> _Frag:
        tkind = target[0]
        if tkind == "var":
            binding = self._lookup(target[1])
            value = self.compile_expr(value_expr)
            if binding is None:
                if not value.const:
                    value = self.spill(value)
                self.emit(f"_bad_store({target[1]!r})")
                return value
            if want and not value.const:
                value = self.spill(value)
            self._emit_scalar_store(
                binding, self._coerce_code(binding[2], value)
            )
            return value
        if tkind == "mbl":
            value = self.compile_expr(value_expr)
            if not value.const:
                value = self.spill(value)
            self.emit(f"_wm({target[1]!r}, int({value.code}))")
            return value
        if tkind == "index":
            value = self.compile_expr(value_expr)
            if _has_side_effects(target[1]) or _has_side_effects(target[2]):
                value = self.spill(value)
            container, index = self.compile_operands(
                [target[1], target[2]]
            )
            if want and not value.const:
                value = self.spill(value)
            self.emit(
                f"_index_store({container.code}, {index.code}, {value.code})"
            )
            return value
        value = self.compile_expr(value_expr)
        self.emit("_bad_target()")
        return value

    def _compile_incdec(self, expr) -> _Frag:
        kind, target, delta = expr
        tkind = target[0]
        if tkind == "var":
            self.pending += 1
            binding = self._lookup(target[1])
            if binding is None:
                self.spill(_Frag(f"{self._free_reader(target[1])}()"))
                self.emit(f"_bad_store({target[1]!r})")
                return _Frag("None", const=True, value=None)
            old = self.spill(self._compile_var_read(target[1]))
            stored = _Frag(f"({old.code} + {delta})")
            self._emit_scalar_store(
                binding, self._coerce_code(binding[2], stored)
            )
            return stored if kind == "preinc" else old
        if tkind == "mbl":
            self.pending += 1
            old = self.spill(_Frag(f"_rm({target[1]!r})"))
            self.emit(f"_wm({target[1]!r}, int({old.code} + {delta}))")
            return (
                _Frag(f"({old.code} + {delta})") if kind == "preinc" else old
            )
        if tkind == "index":
            self.pending += 1
            container, index = self.compile_operands(
                [target[1], target[2]]
            )
            old = self.spill(
                _Frag(f"_index_read({container.code}, {index.code})")
            )
            container2, index2 = self.compile_operands(
                [target[1], target[2]]
            )
            self.emit(
                f"_index_store({container2.code}, {index2.code}, "
                f"{old.code} + {delta})"
            )
            return (
                _Frag(f"({old.code} + {delta})") if kind == "preinc" else old
            )
        self.compile_expr(target)
        self.emit("_bad_target()")
        return _Frag("None", const=True, value=None)

    # ---- statements ------------------------------------------------------

    def compile_statement(self, stmt) -> None:
        kind = stmt[0]
        if kind == "expr":
            frag = self.compile_expr(stmt[1], want=False)
            if not frag.const and not frag.code.isidentifier():
                # Unreferenced but possibly raising (index read, division
                # ...): evaluate for effect, discard the value.
                self.emit(frag.code)
        elif kind == "decl":
            self._compile_decl(stmt)
        elif kind == "block":
            self.scopes.append({})
            try:
                for inner in stmt[1]:
                    self.compile_statement(inner)
            finally:
                self.scopes.pop()
        elif kind == "if":
            self._compile_if(stmt)
        elif kind == "for":
            self._compile_for(stmt)
        elif kind == "while":
            self._compile_while(stmt)
        elif kind == "return":
            if stmt[1] is None:
                self.flush()
                self.emit("return (_ops, None)")
            else:
                frag = self.compile_expr(stmt[1])
                self.flush()
                self.emit(f"return (_ops, {frag.code})")
        elif kind == "break":
            self.flush()
            if not self.loops:
                self.emit(
                    'raise ReactionError("break/continue outside a loop")'
                )
            else:
                self.emit("break")
        elif kind == "continue":
            self._compile_continue()
        else:  # pragma: no cover - parser emits only the kinds above
            raise ReactionError(f"unknown statement kind {kind!r}")

    def _compile_body(self, stmt) -> None:
        """A branch/loop body position: compiled in its own scope (see
        the bare-declaration divergence note in the module docstring)."""
        mark = len(self.run_lines)
        self.scopes.append({})
        try:
            self.compile_statement(stmt)
        finally:
            self.scopes.pop()
        self.flush()
        if len(self.run_lines) == mark:
            self.emit("pass")

    def _compile_if(self, stmt) -> None:
        _, cond_expr, then_stmt, else_stmt = stmt
        cond = self.compile_expr(cond_expr)
        self.flush()
        self.emit(f"if {cond.code}:")
        self.depth += 1
        self._compile_body(then_stmt)
        self.depth -= 1
        if else_stmt is not None:
            self.emit("else:")
            self.depth += 1
            self._compile_body(else_stmt)
            self.depth -= 1

    def _compile_while(self, stmt) -> None:
        _, cond_expr, body = stmt
        self.flush()
        self.emit("while True:")
        self.depth += 1
        cond = self.compile_expr(cond_expr)
        self.flush()
        self.emit(f"if not ({cond.code}):")
        self.emit("    break")
        self.loops.append(("while",))
        try:
            self._compile_body(body)
        finally:
            self.loops.pop()
        self.depth -= 1

    def _compile_for(self, stmt) -> None:
        _, init, cond_expr, step, body = stmt
        self.scopes.append({})
        try:
            if init is not None:
                self.compile_statement(init)
            self.flush()
            self.emit("while True:")
            self.depth += 1
            if cond_expr is not None:
                cond = self.compile_expr(cond_expr)
                self.flush()
                self.emit(f"if not ({cond.code}):")
                self.emit("    break")
            self.loops.append(("for", step, len(self.scopes)))
            try:
                self._compile_body(body)
            finally:
                self.loops.pop()
            if step is not None:
                self.compile_expr(step, want=False)
            self.flush()
            self.depth -= 1
        finally:
            self.scopes.pop()

    def _compile_continue(self) -> None:
        if not self.loops:
            self.flush()
            self.emit('raise ReactionError("break/continue outside a loop")')
            return
        loop = self.loops[-1]
        if loop[0] == "for" and loop[1] is not None:
            # The interpreter's for-continue still runs the step
            # expression -- in the *loop's* scope (the body scope is
            # popped before the step runs).
            step, scope_depth = loop[1], loop[2]
            saved = self.scopes[scope_depth:]
            del self.scopes[scope_depth:]
            try:
                self.compile_expr(step, want=False)
            finally:
                self.scopes.extend(saved)
        self.flush()
        self.emit("continue")

    # ---- declarations ----------------------------------------------------

    def _compile_decl(self, stmt) -> None:
        _, static, ctype, declarators = stmt
        for name, array_size, init in declarators:
            if static:
                self._compile_static_decl(name, ctype, array_size, init)
            else:
                self._compile_local_decl(name, ctype, array_size, init)

    def _compile_local_decl(self, name, ctype, array_size, init) -> None:
        py_name = self._fresh("v")
        if array_size is not None:
            if init is not None and init[0] != "initlist":
                self.emit(
                    'raise ReactionError('
                    '"array initializer must be a {...} list")'
                )
                return
            self.emit(f"{py_name} = [0] * {array_size}")
            if init is not None:
                for position, item in enumerate(init[1][:array_size]):
                    frag = self.compile_expr(item)
                    # Array slots hold raw values (the interpreter
                    # does not coerce array stores).
                    self.emit(f"{py_name}[{position}] = {frag.code}")
        elif init is not None:
            if init[0] == "initlist":
                self.emit(
                    'raise ReactionError('
                    '"scalar initializer cannot be a {...} list")'
                )
                return
            frag = self.compile_expr(init)
            self.emit(f"{py_name} = {self._coerce_code(ctype, frag)}")
        else:
            self.emit(
                f"{py_name} = 0.0" if ctype in _FLOAT_TYPES
                else f"{py_name} = 0"
            )
        self.scopes[-1][name] = ("local", py_name, ctype)

    def _compile_static_decl(self, name, ctype, array_size, init) -> None:
        cell = self._fresh("s")
        key = f"{self.name}::{name}"
        self.flush()
        self.emit(f"{cell} = _statics.get({key!r})")
        self.emit(f"if {cell} is None:")
        self.depth += 1
        mark = len(self.run_lines)
        if array_size is not None:
            if init is not None and init[0] != "initlist":
                self.emit(
                    'raise ReactionError('
                    '"array initializer must be a {...} list")'
                )
            else:
                self.emit(
                    f"{cell} = _CVar([0] * {array_size}, {ctype!r})"
                )
                if init is not None:
                    for position, item in enumerate(init[1][:array_size]):
                        frag = self.compile_expr(item)
                        self.emit(
                            f"{cell}.value[{position}] = {frag.code}"
                        )
                self.emit(f"_statics[{key!r}] = {cell}")
        elif init is not None and init[0] == "initlist":
            self.emit(
                'raise ReactionError('
                '"scalar initializer cannot be a {...} list")'
            )
        else:
            if init is not None:
                frag = self.compile_expr(init)
                value_code = self._coerce_code(ctype, frag)
            else:
                value_code = "0.0" if ctype in _FLOAT_TYPES else "0"
            self.emit(f"{cell} = _CVar({value_code}, {ctype!r})")
            self.emit(f"_statics[{key!r}] = {cell}")
        self.flush()
        if len(self.run_lines) == mark:  # pragma: no cover - defensive
            self.emit("pass")
        self.depth -= 1
        self.scopes[-1][name] = ("static", cell, ctype)

    # ---- assembly --------------------------------------------------------

    def _build(self) -> str:
        for stmt in self.body:
            self.compile_statement(stmt)
        self.flush()
        self.emit("return (_ops, None)")
        lines = [
            "def __bind__(_env):",
            "    _rm = _env.read_malleable",
            "    _wm = _env.write_malleable",
            "    _statics = _env.statics",
        ]
        lines.extend(self.bind_lines)
        lines.append("    def __run__():")
        lines.append("        _ops = 0")
        lines.extend(self.run_lines)
        lines.append("    return __run__")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Public API


class CompiledReaction:
    """Drop-in replacement for :class:`~repro.p4r.creaction.CReaction`
    backed by an exec-compiled closure.

    ``run(env)`` executes the body against a
    :class:`~repro.p4r.creaction.ReactionEnv`, returns the value of an
    executed ``return`` (or ``None``), and sets ``last_op_count`` to
    the interpreter-identical expression count.  The closure is bound
    lazily per environment object and rebound automatically whenever
    ``run`` sees a different env (the agent allocates one persistent
    env per reaction and invalidates it when handles change).
    """

    def __init__(self, source: str, name: str = "reaction"):
        self.name = name
        self.source = source
        self.body = _CParser(source).parse_body()
        self.last_op_count = 0
        self.python_source = _Codegen(self.body, name).source
        namespace = dict(_EXEC_GLOBALS)
        exec(
            compile(
                self.python_source,
                f"<compiled-reaction {name}>",
                "exec",
            ),
            namespace,
        )
        self._bind_fn = namespace["__bind__"]
        self._bound_env: Optional[ReactionEnv] = None
        self._run_fn = None

    def bind(self, env: ReactionEnv) -> None:
        """Prefetch handles/externs/statics from ``env`` and build the
        run closure.  Called automatically by :meth:`run`."""
        self._run_fn = self._bind_fn(env)
        self._bound_env = env

    def run(self, env: ReactionEnv):
        if env is not self._bound_env:
            self.bind(env)
        ops, value = self._run_fn()
        self.last_op_count = ops
        return value
