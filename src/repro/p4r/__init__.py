"""P4R language front end.

P4R is the paper's extension of P4-14 (Figure 3): ``malleable``
declarations for values, fields and tables, ``${var}`` references in
ordinary P4 positions, and ``reaction`` declarations whose bodies are
C-like control-plane code.

- :mod:`repro.p4r.ast` -- the P4R-specific nodes and the
  :class:`P4RProgram` container.
- :mod:`repro.p4r.parser` -- extends the P4-14 parser with the Figure 3
  grammar.
- :mod:`repro.p4r.creaction` -- parser + interpreter for the C-like
  reaction bodies (the reproduction's stand-in for the compiled ``.so``
  reactions of the paper's Section 7).
"""

from repro.p4r.ast import (
    MalleableField,
    MalleableValue,
    P4RProgram,
    ReactionArg,
    ReactionDecl,
)
from repro.p4r.creaction import CReaction, ReactionEnv
from repro.p4r.parser import P4RParser, parse_p4r

__all__ = [
    "CReaction",
    "MalleableField",
    "MalleableValue",
    "P4RParser",
    "P4RProgram",
    "ReactionArg",
    "ReactionDecl",
    "ReactionEnv",
    "parse_p4r",
]
