"""Concurrent legacy control-plane model (Figure 12).

Section 6: "due to the poll-based and single-threaded nature of the
Mantis agent, at most one reaction is active at any time.  Thus, the
CPU-ASIC interactions of a legacy application will only need to queue
behind at most one set of operations from Mantis."

The driver serializes all operations, so legacy interference is a
queueing effect.  :class:`LegacyClient` computes legacy update
latencies offline from the recorded Mantis operation timeline: each
legacy update arriving at time ``t`` waits for any in-flight Mantis
operation, then executes.  This keeps the main dialogue loop single
threaded (as in the paper) while still reproducing the bimodal
distribution of Figure 12.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence

from repro.switch.driver import Driver, DriverCostModel, OpRecord


def legacy_latencies(
    timeline: Sequence[OpRecord],
    arrival_times: Sequence[float],
    op_cost_us: float,
) -> List[float]:
    """Latency of each legacy update given the Mantis op timeline.

    A legacy op arriving at ``t`` starts at the later of ``t``, the end
    of any Mantis op whose *device-exclusive* window is open at ``t``,
    and the completion of the previous legacy op; it then runs for
    ``op_cost_us``.  (Software prep and PCIe transfers are pipelined
    per requester, so only the device window blocks.)
    """
    starts = [op.excl_start_us for op in timeline]
    previous_done = 0.0
    latencies: List[float] = []
    for arrival in arrival_times:
        begin = max(arrival, previous_done)
        # Find the Mantis op (if any) holding the device at `begin`.
        index = bisect.bisect_right(starts, begin) - 1
        if index >= 0 and timeline[index].excl_end_us > begin:
            begin = timeline[index].excl_end_us
        done = begin + op_cost_us
        previous_done = done
        latencies.append(done - arrival)
    return latencies


@dataclass
class LegacyStats:
    median_us: float
    p99_us: float
    mean_us: float

    @staticmethod
    def from_latencies(latencies: Sequence[float]) -> "LegacyStats":
        ordered = sorted(latencies)
        count = len(ordered)
        if count == 0:
            return LegacyStats(0.0, 0.0, 0.0)
        return LegacyStats(
            median_us=ordered[count // 2],
            p99_us=ordered[min(count - 1, int(count * 0.99))],
            mean_us=sum(ordered) / count,
        )


class LegacyClient:
    """A legacy control-plane application submitting a continuous
    stream of table entry updates (the Figure 12 workload)."""

    def __init__(
        self,
        driver: Driver,
        interval_us: float,
        model: DriverCostModel = None,
    ):
        self.driver = driver
        self.interval_us = interval_us
        model = model or driver.model
        # A legacy update is an un-memoized single table modify.
        self.op_cost_us = (
            model.pcie_rtt_us + model.op_prep_us + model.table_modify_us
        )

    def arrivals(self, start_us: float, end_us: float) -> List[float]:
        """Deterministic arrival schedule over a window."""
        times = []
        t = start_us
        while t < end_us:
            times.append(t)
            t += self.interval_us
        return times

    def latencies_with_mantis(
        self, start_us: float, end_us: float
    ) -> List[float]:
        """Latencies when contending with the recorded Mantis ops."""
        window = [
            op
            for op in self.driver.timeline
            if op.channel == "mantis" and op.end_us > start_us
            and op.start_us < end_us
        ]
        return legacy_latencies(
            window, self.arrivals(start_us, end_us), self.op_cost_us
        )

    def latencies_without_mantis(
        self, start_us: float, end_us: float
    ) -> List[float]:
        """Baseline: the same schedule with no Mantis contention."""
        return legacy_latencies(
            [], self.arrivals(start_us, end_us), self.op_cost_us
        )


class LiveLegacyClient:
    """A *live* legacy controller: real driver ops through a
    control-plane service session (``repro.ctrl``).

    Where :class:`LegacyClient` replays the Figure 12 queueing model
    offline against a recorded Mantis timeline, this client issues one
    un-memoized ``table_modify`` per arrival as a scheduler *event* --
    exact arrival timing, even mid-agent-iteration -- and measures the
    completion latency the session observes.  The offline model stays
    the golden cross-check: on the same run's recorded timeline it must
    reproduce this client's latency distribution within a small
    tolerance (the offline model serializes prep after the wait, the
    live channel overlaps prep *under* the wait, so offline is a few
    hundred ns conservative on contended arrivals).
    """

    def __init__(
        self,
        session,
        table: str,
        interval_us: float = 11.0,
        action: str = None,
    ):
        self.session = session
        self.table = table
        self.interval_us = interval_us
        self.action = action
        self.entry_id: int = -1
        self.arrival_times: List[float] = []
        self.latencies: List[float] = []
        self._tick = 0

    def setup(self, key: Sequence[int], action: str,
              args: Sequence[int] = ()) -> None:
        """Install the entry this client will keep updating (blocking,
        before the measurement window)."""
        self.action = self.action or action
        self.entry_id = self.session.driver.add_entry(
            self.table, list(key), action, list(args)
        )

    def start(self, scheduler, start_us: float, end_us: float) -> None:
        """Arm one submit event per arrival over the window."""
        t = start_us
        while t < end_us:
            scheduler.at(t, self._fire)
            t += self.interval_us

    def _fire(self, now_us: float) -> None:
        self._tick += 1
        self.arrival_times.append(now_us)
        self.session.submit_modify(
            self.table, self.entry_id, self.action,
            [self._tick % 2 ** 16],
            on_done=self._on_done,
        )

    def _on_done(self, ticket) -> None:
        if ticket.error is None:
            self.latencies.append(ticket.latency_us)

    def stats(self) -> LegacyStats:
        return LegacyStats.from_latencies(self.latencies)
