"""Concurrent legacy control-plane model (Figure 12).

Section 6: "due to the poll-based and single-threaded nature of the
Mantis agent, at most one reaction is active at any time.  Thus, the
CPU-ASIC interactions of a legacy application will only need to queue
behind at most one set of operations from Mantis."

The driver serializes all operations, so legacy interference is a
queueing effect.  :class:`LegacyClient` computes legacy update
latencies offline from the recorded Mantis operation timeline: each
legacy update arriving at time ``t`` waits for any in-flight Mantis
operation, then executes.  This keeps the main dialogue loop single
threaded (as in the paper) while still reproducing the bimodal
distribution of Figure 12.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence

from repro.switch.driver import Driver, DriverCostModel, OpRecord


def legacy_latencies(
    timeline: Sequence[OpRecord],
    arrival_times: Sequence[float],
    op_cost_us: float,
) -> List[float]:
    """Latency of each legacy update given the Mantis op timeline.

    A legacy op arriving at ``t`` starts at the later of ``t``, the end
    of any Mantis op whose *device-exclusive* window is open at ``t``,
    and the completion of the previous legacy op; it then runs for
    ``op_cost_us``.  (Software prep and PCIe transfers are pipelined
    per requester, so only the device window blocks.)
    """
    starts = [op.excl_start_us for op in timeline]
    previous_done = 0.0
    latencies: List[float] = []
    for arrival in arrival_times:
        begin = max(arrival, previous_done)
        # Find the Mantis op (if any) holding the device at `begin`.
        index = bisect.bisect_right(starts, begin) - 1
        if index >= 0 and timeline[index].excl_end_us > begin:
            begin = timeline[index].excl_end_us
        done = begin + op_cost_us
        previous_done = done
        latencies.append(done - arrival)
    return latencies


@dataclass
class LegacyStats:
    median_us: float
    p99_us: float
    mean_us: float

    @staticmethod
    def from_latencies(latencies: Sequence[float]) -> "LegacyStats":
        ordered = sorted(latencies)
        count = len(ordered)
        if count == 0:
            return LegacyStats(0.0, 0.0, 0.0)
        return LegacyStats(
            median_us=ordered[count // 2],
            p99_us=ordered[min(count - 1, int(count * 0.99))],
            mean_us=sum(ordered) / count,
        )


class LegacyClient:
    """A legacy control-plane application submitting a continuous
    stream of table entry updates (the Figure 12 workload)."""

    def __init__(
        self,
        driver: Driver,
        interval_us: float,
        model: DriverCostModel = None,
    ):
        self.driver = driver
        self.interval_us = interval_us
        model = model or driver.model
        # A legacy update is an un-memoized single table modify.
        self.op_cost_us = (
            model.pcie_rtt_us + model.op_prep_us + model.table_modify_us
        )

    def arrivals(self, start_us: float, end_us: float) -> List[float]:
        """Deterministic arrival schedule over a window."""
        times = []
        t = start_us
        while t < end_us:
            times.append(t)
            t += self.interval_us
        return times

    def latencies_with_mantis(
        self, start_us: float, end_us: float
    ) -> List[float]:
        """Latencies when contending with the recorded Mantis ops."""
        window = [
            op
            for op in self.driver.timeline
            if op.channel == "mantis" and op.end_us > start_us
            and op.start_us < end_us
        ]
        return legacy_latencies(
            window, self.arrivals(start_us, end_us), self.op_cost_us
        )

    def latencies_without_mantis(
        self, start_us: float, end_us: float
    ) -> List[float]:
        """Baseline: the same schedule with no Mantis contention."""
        return legacy_latencies(
            [], self.arrivals(start_us, end_us), self.op_cost_us
        )
