"""Runtime handles for malleable entities.

The compiler's generated C exposes per-malleable setter functions and
per-table entry functions (``table_var.addEntry(...)``); these classes
are their runtime equivalents.  The table handle owns the *user-level*
view of a transformed table: one logical entry fans out to the
``prod(|alts|)`` specialized concrete entries of Section 4.1, doubled
across the two vv versions by the three-phase protocol of
Section 5.1.2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AgentError
from repro.compiler.spec import TableTransformSpec
from repro.switch.driver import Driver, MemoHandle


def _full_mask(width: int) -> int:
    return (1 << width) - 1


def _wildcard(match_type: str, width: int):
    if match_type == "ternary":
        return (0, 0)
    if match_type == "lpm":
        return (0, 0)
    if match_type == "range":
        return (0, _full_mask(width))
    raise AgentError(f"cannot wildcard a {match_type} match")


def _as_pattern(match_type: str, width: int, user_part):
    """Convert a user key part to a concrete pattern of ``match_type``.

    Exact reads that were widened to ternary accept a plain int.
    """
    if match_type == "exact":
        return int(user_part)
    if match_type == "ternary":
        if isinstance(user_part, tuple):
            return user_part
        return (int(user_part), _full_mask(width))
    if match_type in ("lpm", "range"):
        if not isinstance(user_part, tuple):
            if match_type == "lpm":
                return (int(user_part), width)  # host match
            raise AgentError("range key part must be a (lo, hi) tuple")
        return user_part
    if match_type == "valid":
        return bool(user_part)
    raise AgentError(f"unknown match type {match_type!r}")


@dataclass
class _UserEntry:
    """One logical entry and its concrete handles, per vv version."""

    user_id: int
    key: Tuple
    action: str
    args: List[int]
    priority: int
    # version (0/1) -> list of concrete entry ids
    concrete: Dict[int, List[int]] = field(default_factory=dict)


class MalleableTableHandle:
    """User-facing handle for a malleable (or transformed) table.

    All mutating methods follow the three-phase protocol: they
    immediately *prepare* the change against the inactive (shadow)
    version; the agent's vv flip *commits*; :meth:`fill_shadow` then
    *mirrors* the change into the now-inactive copy.

    ``selector()`` callbacks let the handle ask the agent for the
    current alt index of each malleable field -- needed because the
    paper installs entries for *every* combination, so the handle
    enumerates combinations rather than asking.
    """

    def __init__(
        self,
        driver: Driver,
        transform: TableTransformSpec,
        active_version,  # callable () -> int, the agent's committed vv
        memo: Optional[MemoHandle] = None,
        field_alt_counts: Optional[Dict[str, int]] = None,
    ):
        self.driver = driver
        self.transform = transform
        self.name = transform.name
        self._active_version = active_version
        self.memo = memo
        self._alt_counts = dict(field_alt_counts or {})
        self._users: Dict[int, _UserEntry] = {}
        self._next_user_id = itertools.count(1)
        # (op, user_id, payload) list replayed against the old copy.
        self._pending_mirror: List[Tuple[str, int, tuple]] = []

    # ---- public API (callable from C reaction bodies) ---------------------

    def addEntry(self, *flat_args, **kwargs):
        """C-style flat call: key parts, then action name, then args.

        From Python, prefer :meth:`add` with explicit arguments.
        """
        key, action, args, priority = self._split_flat(flat_args, kwargs)
        return self.add(key, action, args, priority)

    def modEntry(self, user_id: int, *action_args, **kwargs):
        action = kwargs.pop("action", None)
        return self.modify(user_id, action=action, args=list(action_args) or None)

    def delEntry(self, user_id: int):
        return self.delete(user_id)

    def setDefault(self, action: str, *args):
        """Default-action updates are single atomic ops; applied directly."""
        self.driver.set_default(self.name, action, list(args), memo=self.memo)

    # ---- python API -------------------------------------------------------

    def add(
        self,
        key: Sequence,
        action: str,
        args: Sequence[int] = (),
        priority: int = 0,
    ) -> int:
        """Prepare a logical entry; visible after the next vv commit."""
        expected = len(self.transform.reads)
        if len(key) != expected:
            raise AgentError(
                f"table {self.name}: expected {expected} user key parts, "
                f"got {len(key)}"
            )
        user = _UserEntry(
            next(self._next_user_id), tuple(key), action, list(args), priority
        )
        shadow = self._shadow_version()
        user.concrete[shadow] = self._install(user, shadow)
        self._users[user.user_id] = user
        self._pending_mirror.append(("add", user.user_id, ()))
        return user.user_id

    def modify(
        self,
        user_id: int,
        action: Optional[str] = None,
        args: Optional[Sequence[int]] = None,
    ) -> None:
        user = self._get(user_id)
        if action is not None and action != user.action:
            # Changing the action can change specialization; reinstall.
            shadow = self._shadow_version()
            for concrete_id in user.concrete.get(shadow, []):
                self.driver.delete_entry(self.name, concrete_id, memo=self.memo)
            user.action = action
            if args is not None:
                user.args = list(args)
            user.concrete[shadow] = self._install(user, shadow)
            self._pending_mirror.append(("reinstall", user_id, ()))
            return
        if args is not None:
            user.args = list(args)
        shadow = self._shadow_version()
        resolved_args = list(user.args)
        for concrete_id in user.concrete.get(shadow, []):
            self.driver.modify_entry(
                self.name, concrete_id, args=resolved_args, memo=self.memo
            )
        self._pending_mirror.append(("modify", user_id, ()))

    def delete(self, user_id: int) -> None:
        user = self._get(user_id)
        shadow = self._shadow_version()
        for concrete_id in user.concrete.pop(shadow, []):
            self.driver.delete_entry(self.name, concrete_id, memo=self.memo)
        self._pending_mirror.append(("delete", user_id, ()))

    def fill_shadow(self, old_version: int) -> None:
        """Mirror phase: replay committed changes onto the now-shadow
        ``old_version`` copies.  Called by the agent after the vv flip."""
        for op, user_id, _payload in self._pending_mirror:
            user = self._users.get(user_id)
            if op == "add":
                user.concrete[old_version] = self._install(user, old_version)
            elif op == "modify":
                for concrete_id in user.concrete.get(old_version, []):
                    self.driver.modify_entry(
                        self.name, concrete_id, args=list(user.args),
                        memo=self.memo,
                    )
            elif op == "reinstall":
                for concrete_id in user.concrete.get(old_version, []):
                    self.driver.delete_entry(
                        self.name, concrete_id, memo=self.memo
                    )
                user.concrete[old_version] = self._install(user, old_version)
            elif op == "delete":
                for concrete_id in user.concrete.pop(old_version, []):
                    self.driver.delete_entry(
                        self.name, concrete_id, memo=self.memo
                    )
                if not user.concrete:
                    self._users.pop(user_id, None)
        self._pending_mirror.clear()

    @property
    def pending_ops(self) -> int:
        return len(self._pending_mirror)

    def user_entry_count(self) -> int:
        return len(self._users)

    # ---- concrete-entry expansion -----------------------------------------

    def _shadow_version(self) -> int:
        return self._active_version() ^ 1

    def _get(self, user_id: int) -> _UserEntry:
        if user_id not in self._users:
            raise AgentError(f"table {self.name}: no user entry #{user_id}")
        return self._users[user_id]

    def _involved_fields(self, action: str) -> List[str]:
        """Malleable fields whose alts this entry must enumerate."""
        fields = [
            r.field_name for r in self.transform.reads if r.kind == "mbl"
        ]
        specialization = self.transform.actions.get(action)
        if specialization:
            for name in specialization.fields:
                if name not in fields:
                    fields.append(name)
        return fields

    def _alt_count(self, field_name: str) -> int:
        for read in self.transform.reads:
            if read.kind == "mbl" and read.field_name == field_name:
                return read.alt_count
        if field_name in self._alt_counts:
            return self._alt_counts[field_name]
        raise AgentError(
            f"table {self.name}: unknown alt count for field {field_name!r}"
        )

    def _install(self, user: _UserEntry, version: int) -> List[int]:
        """Install all concrete entries for one user entry at ``version``."""
        fields = self._involved_fields(user.action)
        combos = itertools.product(
            *[range(self._alt_count(name)) for name in fields]
        ) if fields else [()]
        concrete_ids = []
        for combo in combos:
            assignment = dict(zip(fields, combo))
            key, action = self._concrete_key(user, assignment, version)
            concrete_ids.append(
                self.driver.add_entry(
                    self.name, key, action, user.args,
                    priority=user.priority, memo=self.memo,
                )
            )
        return concrete_ids

    def _concrete_key(
        self, user: _UserEntry, assignment: Dict[str, int], version: int
    ) -> Tuple[List, str]:
        total = self.transform.total_key_parts
        key: List = [None] * total
        for read, user_part in zip(self.transform.reads, user.key):
            if read.kind == "plain":
                key[read.positions[0]] = _as_pattern(
                    read.match_type, read.width, user_part
                )
            else:
                chosen = assignment[read.field_name]
                for alt_index, position in enumerate(read.positions):
                    if alt_index == chosen:
                        key[position] = _as_pattern(
                            read.match_type, read.width, user_part
                        )
                    else:
                        key[position] = _wildcard(read.match_type, read.width)
                key[read.selector_position] = chosen
        for field_name, position in self.transform.action_selectors.items():
            key[position] = assignment[field_name]
        if self.transform.vv_position >= 0:
            key[self.transform.vv_position] = version
        if any(part is None for part in key):
            raise AgentError(
                f"table {self.name}: incomplete concrete key {key}"
            )
        action = user.action
        specialization = self.transform.actions.get(user.action)
        if specialization:
            combo = tuple(assignment[f] for f in specialization.fields)
            action = specialization.variant(combo)
        return key, action

    def _split_flat(self, flat_args, kwargs):
        """Split a C-style flat argument list into (key, action, args)."""
        key_len = len(self.transform.reads)
        if len(flat_args) < key_len + 1:
            raise AgentError(
                f"table {self.name}.addEntry: need {key_len} key parts "
                "plus an action name"
            )
        key = flat_args[:key_len]
        action = flat_args[key_len]
        if not isinstance(action, str):
            raise AgentError(
                f"table {self.name}.addEntry: argument {key_len} must be "
                "the action name"
            )
        args = list(flat_args[key_len + 1 :])
        priority = kwargs.pop("priority", 0)
        return key, action, args, priority
