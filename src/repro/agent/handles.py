"""Runtime handles for malleable entities.

The compiler's generated C exposes per-malleable setter functions and
per-table entry functions (``table_var.addEntry(...)``); these classes
are their runtime equivalents.  The table handle owns the *user-level*
view of a transformed table: one logical entry fans out to the
``prod(|alts|)`` specialized concrete entries of Section 4.1, doubled
across the two vv versions by the three-phase protocol of
Section 5.1.2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AgentError
from repro.compiler.spec import TableTransformSpec
from repro.switch.driver import Driver, MemoHandle


def _full_mask(width: int) -> int:
    return (1 << width) - 1


def _wildcard(match_type: str, width: int):
    if match_type == "ternary":
        return (0, 0)
    if match_type == "lpm":
        return (0, 0)
    if match_type == "range":
        return (0, _full_mask(width))
    raise AgentError(f"cannot wildcard a {match_type} match")


def _as_pattern(match_type: str, width: int, user_part):
    """Convert a user key part to a concrete pattern of ``match_type``.

    Exact reads that were widened to ternary accept a plain int.
    """
    if match_type == "exact":
        return int(user_part)
    if match_type == "ternary":
        if isinstance(user_part, tuple):
            return user_part
        return (int(user_part), _full_mask(width))
    if match_type in ("lpm", "range"):
        if not isinstance(user_part, tuple):
            if match_type == "lpm":
                return (int(user_part), width)  # host match
            raise AgentError("range key part must be a (lo, hi) tuple")
        return user_part
    if match_type == "valid":
        return bool(user_part)
    raise AgentError(f"unknown match type {match_type!r}")


@dataclass
class _UserEntry:
    """One logical entry and its concrete handles, per vv version."""

    user_id: int
    key: Tuple
    action: str
    args: List[int]
    priority: int
    # version (0/1) -> list of concrete entry ids
    concrete: Dict[int, List[int]] = field(default_factory=dict)


class MalleableTableHandle:
    """User-facing handle for a malleable (or transformed) table.

    All mutating methods follow the three-phase protocol: they
    immediately *prepare* the change against the inactive (shadow)
    version; the agent's vv flip *commits*; :meth:`fill_shadow` then
    *mirrors* the change into the now-inactive copy.

    ``selector()`` callbacks let the handle ask the agent for the
    current alt index of each malleable field -- needed because the
    paper installs entries for *every* combination, so the handle
    enumerates combinations rather than asking.
    """

    def __init__(
        self,
        driver: Driver,
        transform: TableTransformSpec,
        active_version,  # callable () -> int, the agent's committed vv
        memo: Optional[MemoHandle] = None,
        field_alt_counts: Optional[Dict[str, int]] = None,
    ):
        self.driver = driver
        self.transform = transform
        self.name = transform.name
        self._active_version = active_version
        self.memo = memo
        self._alt_counts = dict(field_alt_counts or {})
        self._users: Dict[int, _UserEntry] = {}
        self._next_user_id = itertools.count(1)
        # [op, user_id, payload] lists (mutable: the mirror rewrites
        # op in place to track roll-forward progress) replayed against
        # the old copy after each commit.
        self._pending_mirror: List[List] = []
        # Sealed generations awaiting mirror: (old_version, ops).  A
        # generation is sealed at its vv flip and drained op by op;
        # a driver failure mid-drain leaves the remainder here so the
        # agent can roll the mirror forward before the next commit.
        self._sealed_mirror: List[Tuple[int, List[List]]] = []

    # ---- public API (callable from C reaction bodies) ---------------------

    def addEntry(self, *flat_args, **kwargs):
        """C-style flat call: key parts, then action name, then args.

        From Python, prefer :meth:`add` with explicit arguments.
        """
        key, action, args, priority = self._split_flat(flat_args, kwargs)
        return self.add(key, action, args, priority)

    def modEntry(self, user_id: int, *action_args, **kwargs):
        action = kwargs.pop("action", None)
        return self.modify(user_id, action=action, args=list(action_args) or None)

    def delEntry(self, user_id: int):
        return self.delete(user_id)

    def setDefault(self, action: str, *args):
        """Default-action updates are single atomic ops; applied directly."""
        self.driver.set_default(self.name, action, list(args), memo=self.memo)

    # ---- python API -------------------------------------------------------

    def add(
        self,
        key: Sequence,
        action: str,
        args: Sequence[int] = (),
        priority: int = 0,
    ) -> int:
        """Prepare a logical entry; visible after the next vv commit."""
        expected = len(self.transform.reads)
        if len(key) != expected:
            raise AgentError(
                f"table {self.name}: expected {expected} user key parts, "
                f"got {len(key)}"
            )
        user = _UserEntry(
            next(self._next_user_id), tuple(key), action, list(args), priority
        )
        self.drain_mirror()
        shadow = self._shadow_version()
        try:
            self._install(user, shadow)
        except Exception:
            # Best-effort rollback: a failed prepare must not leave
            # orphaned concrete entries on the shadow copy (they would
            # activate at the next flip with no owner).
            try:
                self._delete_concrete(user, shadow)
            except Exception:
                pass
            raise
        self._users[user.user_id] = user
        self._pending_mirror.append(["add", user.user_id, ()])
        return user.user_id

    def modify(
        self,
        user_id: int,
        action: Optional[str] = None,
        args: Optional[Sequence[int]] = None,
    ) -> None:
        user = self._get(user_id)
        self.drain_mirror()
        if action is not None and action != user.action:
            # Changing the action can change specialization; reinstall.
            shadow = self._shadow_version()
            self._delete_concrete(user, shadow)
            user.action = action
            if args is not None:
                user.args = list(args)
            self._install(user, shadow)
            self._pending_mirror.append(["reinstall", user_id, ()])
            return
        if args is not None:
            user.args = list(args)
        shadow = self._shadow_version()
        resolved_args = list(user.args)
        for concrete_id in user.concrete.get(shadow, []):
            self.driver.modify_entry(
                self.name, concrete_id, args=resolved_args, memo=self.memo
            )
        self._pending_mirror.append(["modify", user_id, ()])

    def delete(self, user_id: int) -> None:
        user = self._get(user_id)
        self.drain_mirror()
        shadow = self._shadow_version()
        self._delete_concrete(user, shadow)
        self._pending_mirror.append(["delete", user_id, ()])

    def seal_mirror(self, old_version: int) -> None:
        """Bind the prepared-and-committed ops to the version copy
        they must be mirrored onto.  Called at the vv flip; ops staged
        after the seal belong to the next generation."""
        if self._pending_mirror:
            self._sealed_mirror.append((old_version, self._pending_mirror))
            self._pending_mirror = []

    def drain_mirror(self) -> None:
        """Replay sealed mirror generations, op by op.

        Each op is removed only after it fully lands, and every op is
        internally resumable (installs append concrete ids as they
        land; deletes pop ids as they land), so a driver failure
        mid-drain can be rolled forward by calling this again.
        """
        while self._sealed_mirror:
            old_version, ops = self._sealed_mirror[0]
            while ops:
                self._apply_mirror_op(old_version, ops[0])
                ops.pop(0)
            self._sealed_mirror.pop(0)

    def fill_shadow(self, old_version: int) -> None:
        """Mirror phase: replay committed changes onto the now-shadow
        ``old_version`` copies.  Called by the agent after the vv flip."""
        self.seal_mirror(old_version)
        self.drain_mirror()

    def _apply_mirror_op(self, old_version: int, op_entry: List) -> None:
        op, user_id = op_entry[0], op_entry[1]
        user = self._users.get(user_id)
        if user is None:
            return
        if op == "reinstall":
            self._delete_concrete(user, old_version)
            # Phase marker: deletes done, the remainder is a plain add.
            op_entry[0] = op = "add"
        if op == "add":
            self._install(user, old_version)
        elif op == "modify":
            for concrete_id in user.concrete.get(old_version, []):
                self.driver.modify_entry(
                    self.name, concrete_id, args=list(user.args),
                    memo=self.memo,
                )
        elif op == "delete":
            self._delete_concrete(user, old_version)
            if not user.concrete:
                self._users.pop(user_id, None)

    def _delete_concrete(self, user: _UserEntry, version: int) -> None:
        """Remove one version's concrete entries, forgetting each id
        only once its delete landed (resumable under faults)."""
        concrete_ids = user.concrete.get(version, [])
        while concrete_ids:
            self.driver.delete_entry(self.name, concrete_ids[-1], memo=self.memo)
            concrete_ids.pop()
        user.concrete.pop(version, None)

    @property
    def pending_ops(self) -> int:
        return len(self._pending_mirror) + self.mirror_backlog

    @property
    def mirror_backlog(self) -> int:
        """Committed-but-unmirrored ops from failed commits."""
        return sum(len(ops) for _version, ops in self._sealed_mirror)

    def user_entry_count(self) -> int:
        return len(self._users)

    # ---- concrete-entry expansion -----------------------------------------

    def _shadow_version(self) -> int:
        return self._active_version() ^ 1

    def _get(self, user_id: int) -> _UserEntry:
        if user_id not in self._users:
            raise AgentError(f"table {self.name}: no user entry #{user_id}")
        return self._users[user_id]

    def _involved_fields(self, action: str) -> List[str]:
        """Malleable fields whose alts this entry must enumerate."""
        fields = [
            r.field_name for r in self.transform.reads if r.kind == "mbl"
        ]
        specialization = self.transform.actions.get(action)
        if specialization:
            for name in specialization.fields:
                if name not in fields:
                    fields.append(name)
        return fields

    def _alt_count(self, field_name: str) -> int:
        for read in self.transform.reads:
            if read.kind == "mbl" and read.field_name == field_name:
                return read.alt_count
        if field_name in self._alt_counts:
            return self._alt_counts[field_name]
        raise AgentError(
            f"table {self.name}: unknown alt count for field {field_name!r}"
        )

    def _install(self, user: _UserEntry, version: int) -> List[int]:
        """Install all concrete entries for one user entry at ``version``.

        Resumable: ids are tracked in ``user.concrete[version]`` as
        each add lands, and the (deterministic) combo enumeration
        skips entries already installed -- a retry after a mid-install
        driver failure finishes the remainder without duplicating.
        """
        fields = self._involved_fields(user.action)
        combos = list(
            itertools.product(
                *[range(self._alt_count(name)) for name in fields]
            )
        ) if fields else [()]
        concrete_ids = user.concrete.setdefault(version, [])
        for combo in combos[len(concrete_ids):]:
            assignment = dict(zip(fields, combo))
            key, action = self._concrete_key(user, assignment, version)
            concrete_ids.append(
                self.driver.add_entry(
                    self.name, key, action, user.args,
                    priority=user.priority, memo=self.memo,
                )
            )
        return concrete_ids

    # ---- crash recovery ----------------------------------------------------

    def adopt_entries(self, entries, active_version: int) -> None:
        """Rebuild user-level bookkeeping from installed concrete
        entries (agent crash recovery; ``entries`` as returned by
        :meth:`Driver.read_entries`).

        Only supported for tables without malleable-field reads or
        action specialization: those expansions are not invertible
        once the user-level key is lost.  Version singletons are
        repaired: an entry present only in the shadow copy is a
        prepared-but-never-committed leftover and is deleted; one
        present only in the active copy is an unmirrored commit and is
        rolled forward into the shadow copy.
        """
        if any(r.kind == "mbl" for r in self.transform.reads) or (
            self.transform.action_selectors
        ):
            raise AgentError(
                f"table {self.name}: cannot recover user entries of a "
                "malleable-field transformed table"
            )
        if self._users:
            raise AgentError(
                f"table {self.name}: adopt_entries on a non-empty handle"
            )
        vv_position = self.transform.vv_position
        groups: Dict[Tuple, Dict[int, int]] = {}
        for entry_id, key, action, args, priority in entries:
            if vv_position >= 0:
                version = key[vv_position]
                user_key = tuple(
                    part for index, part in enumerate(key)
                    if index != vv_position
                )
            else:
                version = active_version
                user_key = tuple(key)
            groups.setdefault(
                (user_key, action, tuple(args), priority), {}
            )[version] = entry_id
        ordered = sorted(groups.items(), key=lambda item: min(item[1].values()))
        for (user_key, action, args, priority), versions in ordered:
            user = _UserEntry(
                next(self._next_user_id), user_key, action, list(args),
                priority,
            )
            for version, entry_id in versions.items():
                user.concrete[version] = [entry_id]
            if vv_position >= 0:
                if active_version not in versions:
                    # Prepared but never committed (crash mid-prepare):
                    # discard, or the change would leak at the next flip.
                    self._delete_concrete(user, active_version ^ 1)
                    continue
                if (active_version ^ 1) not in versions:
                    # Committed but never mirrored: roll forward.
                    self._install(user, active_version ^ 1)
            self._users[user.user_id] = user

    def _concrete_key(
        self, user: _UserEntry, assignment: Dict[str, int], version: int
    ) -> Tuple[List, str]:
        total = self.transform.total_key_parts
        key: List = [None] * total
        for read, user_part in zip(self.transform.reads, user.key):
            if read.kind == "plain":
                key[read.positions[0]] = _as_pattern(
                    read.match_type, read.width, user_part
                )
            else:
                chosen = assignment[read.field_name]
                for alt_index, position in enumerate(read.positions):
                    if alt_index == chosen:
                        key[position] = _as_pattern(
                            read.match_type, read.width, user_part
                        )
                    else:
                        key[position] = _wildcard(read.match_type, read.width)
                key[read.selector_position] = chosen
        for field_name, position in self.transform.action_selectors.items():
            key[position] = assignment[field_name]
        if self.transform.vv_position >= 0:
            key[self.transform.vv_position] = version
        if any(part is None for part in key):
            raise AgentError(
                f"table {self.name}: incomplete concrete key {key}"
            )
        action = user.action
        specialization = self.transform.actions.get(user.action)
        if specialization:
            combo = tuple(assignment[f] for f in specialization.fields)
            action = specialization.variant(combo)
        return key, action

    def _split_flat(self, flat_args, kwargs):
        """Split a C-style flat argument list into (key, action, args)."""
        key_len = len(self.transform.reads)
        if len(flat_args) < key_len + 1:
            raise AgentError(
                f"table {self.name}.addEntry: need {key_len} key parts "
                "plus an action name"
            )
        key = flat_args[:key_len]
        action = flat_args[key_len]
        if not isinstance(action, str):
            raise AgentError(
                f"table {self.name}.addEntry: argument {key_len} must be "
                "the action name"
            )
        args = list(flat_args[key_len + 1 :])
        priority = kwargs.pop("priority", 0)
        return key, action, args, priority
