"""The Mantis agent: prologue + high-frequency dialogue loop.

Follows the control flow of Section 6::

    // prologue
    helper_state = precompute_metadata();
    memo = setup_cache(helper_state);
    run_user_initialization(helper_state, memo);
    // dialogue
    while (!stopped) {
        updateTable(memo, "p4r_init_", {measure_ver : mv ^ 1});
        read_measurements(memo, mv); mv ^= 1;
        run_user_reaction(memo, helper_state, vv ^ 1);
        updateTable(memo, "p4r_init_", {config_ver : vv ^ 1});
        fill_shadow_tables(memo, vv); vv ^= 1;
    }

Reactions may be the compiled C-like bodies from the P4R source
(interpreted by :mod:`repro.p4r.creaction`) or Python callables
attached at runtime -- the reproduction's equivalent of the paper's
dynamically loaded ``.so`` files, including hot swap between dialogue
iterations.

Fault tolerance (see DESIGN.md, "Fault model and recovery"): driver
failures (:class:`TransientDriverError` surviving the retry policy,
or :class:`DriverTimeoutError`) never corrupt the commit protocol.
A failed mv flip or measurement poll degrades to the last checkpoint;
a failed commit preserves all staged state and is retried, rolling
the vv flip and the mirror phase forward without ever flipping twice;
:meth:`MantisAgent.recover` rebuilds a crashed agent's bookkeeping
from device state so the dialogue resumes without reinstalling.
"""

from __future__ import annotations

import contextlib
import os

from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import (
    AgentError,
    DriverTimeoutError,
    TransientDriverError,
)
from repro.agent.handles import MalleableTableHandle
from repro.compiler.spec import (
    CompiledArtifacts,
    ControlPlaneSpec,
    InitTableSpec,
    RegisterMirror,
    ReactionSpec,
)
from repro.p4r.creaction import CReaction, ReactionEnv
from repro.p4r.compiled_reaction import (
    CompiledReaction,
    REACTION_ENGINE_ENV,
    REACTION_ENGINES,
)
from repro.switch.driver import Driver, MemoHandle

COMMIT_MODES = ("diff", "full")

# The failure modes the dialogue loop absorbs instead of crashing on.
_RECOVERABLE = (TransientDriverError, DriverTimeoutError)


class ReactionContext:
    """What a Python reaction sees each dialogue iteration.

    - ``args``: the polled parameter values (field args as ints,
      register slices as ``{index: value}`` dicts, malleable args as
      their last-written values);
    - ``state``: a dict persisting across iterations (the C reactions'
      ``static`` variables);
    - ``read``/``write``: malleable access (`write` stages the change;
      it commits atomically at this iteration's vv flip);
    - ``table``: malleable-table handles exposing
      ``add``/``modify``/``delete``/``addEntry``/... ;
    - ``now``: the simulated time in microseconds.
    """

    def __init__(self, agent: "MantisAgent", args: Dict[str, object],
                 state: dict):
        self._agent = agent
        self.args = args
        self.state = state

    @property
    def now(self) -> float:
        return self._agent.driver.clock.now

    def read(self, name: str) -> int:
        return self._agent.read_malleable(name)

    def write(self, name: str, value: int) -> None:
        self._agent.write_malleable(name, value)

    def table(self, name: str) -> MalleableTableHandle:
        return self._agent.table(name)


@dataclass
class _InitShadow:
    """Shadow bookkeeping for a non-master init table (Section 5.1.1:
    'all other init tables will contain two entries, one for each
    version, just like a malleable table')."""

    spec: InitTableSpec
    entry_ids: Dict[int, int] = dataclass_field(default_factory=dict)
    args: List[int] = dataclass_field(default_factory=list)
    staged: Dict[int, int] = dataclass_field(default_factory=dict)
    dirty: bool = False
    memo: Optional[MemoHandle] = None
    # Committed args not yet mirrored onto the old-version entry
    # (set at the vv flip, cleared by the mirror phase).
    mirror_dirty: bool = False


@dataclass
class AgentHealth:
    """Snapshot of the agent's fault state (surfaced by the CLI).

    ``degraded`` means the agent is live but behind: recent iterations
    hit driver failures, a commit is deferred, or mirror writes are
    still outstanding.  A degraded agent heals itself once the control
    channel recovers; ``healthy`` is simply ``not degraded``.
    """

    healthy: bool
    degraded: bool
    consecutive_failed_iterations: int
    total_failures: int
    commit_pending: bool
    mirror_backlog: int
    last_error: Optional[str]
    last_error_us: float
    driver_errors: int
    driver_retries: int
    driver_timeouts: int
    # Fast-path engine info (ISSUE 5): which reaction engine runs the
    # C bodies, how commits are diffed, and how often the diff/delta
    # optimizations actually fired.
    reaction_engine: str = "compiled"
    commit_mode: str = "diff"
    delta_polling: bool = False
    dirty_diff_hit_rate: float = 0.0
    delta_poll_skip_rate: float = 0.0


class _MirrorReader:
    """Timestamp-cached reader for one duplicated register
    (Section 5.2): rejects stale checkpoint values so the agent always
    sees the most recently committed contents."""

    def __init__(
        self, driver: Driver, mirror: RegisterMirror, delta: bool = False
    ):
        self.driver = driver
        self.mirror = mirror
        self.delta = delta
        self.memo_dup = driver.memoize("register", mirror.duplicate)
        self.memo_ts = driver.memoize("register", mirror.ts)
        self.memo_seq = driver.memoize("register", mirror.seq)
        self.cache_values = [0] * mirror.count
        self.cache_ts = [0] * mirror.count
        self._last_raw = [0] * mirror.count
        self._suspect = [0] * mirror.count
        # Delta polling: the data plane bumps ``seq[i]`` (raw index, no
        # version copies) on *every* write to slot ``i``, so an
        # unchanged seq range proves both version copies are unchanged
        # since the last full poll and the ts+dup reads can be skipped.
        self._seq_cache: Dict[Tuple[int, int], List[int]] = {}
        self.delta_checks = 0
        self.delta_skips = 0

    def invalidate_delta(self) -> None:
        """Drop the seq snapshots (after a driver fault or recovery:
        a retried/corrupted read must not justify a skip)."""
        self._seq_cache.clear()

    def poll(self, checkpoint: int, lo: int, hi: int) -> Dict[int, int]:
        offset = checkpoint * self.mirror.padded_count
        with self.driver.batch():
            seqs: Optional[List[int]] = None
            if self.delta:
                seqs = self.driver.read_registers(
                    self.mirror.seq, lo, hi, memo=self.memo_seq
                )
                self.delta_checks += 1
                if self._seq_cache.get((lo, hi)) == seqs:
                    self.delta_skips += 1
                    return self.cached(lo, hi)
            stamps = self.driver.read_registers(
                self.mirror.ts, offset + lo, offset + hi, memo=self.memo_ts
            )
            values = self.driver.read_registers(
                self.mirror.duplicate, offset + lo, offset + hi,
                memo=self.memo_dup,
            )
        for position, index in enumerate(range(lo, hi + 1)):
            stamp = stamps[position]
            if stamp > self.cache_ts[index]:
                self.cache_ts[index] = stamp
                self.cache_values[index] = values[position]
                self._suspect[index] = 0
            elif stamp < self.cache_ts[index] and stamp > self._last_raw[index]:
                # The slot's sequence number demonstrably advanced yet
                # still sits below our high-water mark, which means the
                # cached stamp came from a corrupted read.  One sighting
                # could itself be corruption; two consecutive advancing
                # sightings resynchronize the cache.
                self._suspect[index] += 1
                if self._suspect[index] >= 2:
                    self.cache_ts[index] = stamp
                    self.cache_values[index] = values[position]
                    self._suspect[index] = 0
            else:
                self._suspect[index] = 0
            self._last_raw[index] = stamp
        if seqs is not None:
            # Snapshot only after a *successful* full poll: a raise
            # above leaves the old snapshot, so the next poll re-reads.
            self._seq_cache[(lo, hi)] = seqs
        return {index: self.cache_values[index] for index in range(lo, hi + 1)}

    def cached(self, lo: int, hi: int) -> Dict[int, int]:
        """Last successfully polled values (fallback when the control
        channel fails mid-poll: stale but internally consistent)."""
        return {index: self.cache_values[index] for index in range(lo, hi + 1)}


class _ReactionRuntime:
    """One registered reaction: spec + implementation + static state."""

    def __init__(self, spec: ReactionSpec, engine: str = "compiled"):
        self.spec = spec
        self.c_impl: Optional[Union[CReaction, CompiledReaction]] = None
        self.py_impl: Optional[Callable[[ReactionContext], None]] = None
        if spec.decl.body_source.strip():
            if engine == "compiled":
                self.c_impl = CompiledReaction(
                    spec.decl.body_source, spec.name
                )
            else:
                self.c_impl = CReaction(spec.decl.body_source, spec.name)
        self.statics: dict = {}
        self.state: dict = {}
        # Persistent ReactionEnv (args swapped per iteration).  The
        # compiled engine binds its closure to this object once;
        # the agent resets it to None whenever handles/externs change.
        self.env: Optional[ReactionEnv] = None


class MantisAgent:
    """A per-pipeline Mantis agent bound to one driver.

    ``pacing_sleep_us`` trades CPU utilization for reaction time
    (Figure 11's ``nanosleep`` knob).  ``verify_commits`` reads every
    commit-path write back from the device and treats a mismatch as a
    transient failure -- the defense against silently dropped writes.
    ``commit_retry_limit`` bounds how many times one iteration retries
    a failed commit before deferring it to the next iteration.
    ``poll_batching`` extends the paper's SS6 batched-DMA optimization
    to the measurement phase: all reactions' polls ride one driver
    batch (one PCIe round trip for the whole phase) and the reactions
    execute afterward, so reaction writes never share the poll batch.
    Off by default -- it changes the iteration's timing profile, which
    the Section 8.1 cost model predicts per configuration.
    """

    def __init__(
        self,
        artifacts: CompiledArtifacts,
        driver: Driver,
        pacing_sleep_us: float = 0.0,
        verify_commits: bool = False,
        commit_retry_limit: int = 5,
        poll_batching: bool = False,
        reaction_engine: Optional[str] = None,
        commit_mode: str = "diff",
        delta_polling: bool = False,
        commit_pipelining: bool = False,
    ):
        self.spec: ControlPlaneSpec = artifacts.spec
        self.artifacts = artifacts
        self.driver = driver
        self.pacing_sleep_us = pacing_sleep_us
        self.verify_commits = verify_commits
        self.commit_retry_limit = commit_retry_limit
        self.poll_batching = poll_batching
        # With a service-backed SessionDriver, overlap the commit's
        # prepare-phase shadow writes on the pipelined channel (the vv
        # flip stays a blocking barrier, so ordering and resumability
        # are unchanged).  No-op on a plain synchronous driver or under
        # ``verify_commits`` (read-backs need blocking ops).
        self.commit_pipelining = commit_pipelining
        if reaction_engine is None:
            reaction_engine = os.environ.get(REACTION_ENGINE_ENV, "compiled")
        if reaction_engine not in REACTION_ENGINES:
            raise AgentError(
                f"unknown reaction engine {reaction_engine!r} "
                f"(expected one of {REACTION_ENGINES})"
            )
        self.reaction_engine = reaction_engine
        if commit_mode not in COMMIT_MODES:
            raise AgentError(
                f"unknown commit mode {commit_mode!r} "
                f"(expected one of {COMMIT_MODES})"
            )
        self.commit_mode = commit_mode
        self.delta_polling = delta_polling
        # Dirty-diff bookkeeping: how many malleable writes were staged
        # vs. deduplicated against the committed value.
        self.dirty_writes_staged = 0
        self.dirty_writes_skipped = 0
        self.vv = 0
        self.mv = 0
        # Simulated cost per interpreted C expression (Section 8.1's C).
        self.c_op_cost_us = 0.002
        self.iterations = 0
        # Phase breakdown of the most recent iteration.
        self.last_breakdown: Dict[str, float] = {}
        # Lifetime per-phase totals (hot-loop observability: where do
        # the dialogue's microseconds go across the whole run).
        self.phase_totals: Dict[str, float] = {
            "mv_flip_us": 0.0,
            "poll_us": 0.0,
            "react_us": 0.0,
            "commit_us": 0.0,
            "total_us": 0.0,
        }
        self.total_busy_us = 0.0
        self.total_idle_us = 0.0
        self.iteration_durations: List[float] = []
        # Running aggregate over *all* iterations: iteration_durations
        # keeps only a recent window (trimmed when it grows large), so
        # the lifetime average must not be derived from it.
        self._duration_sum_us = 0.0
        self._duration_count = 0
        self.externs: Dict[str, Callable] = {}

        self._prologue_done = False
        self._user_init: Optional[Callable[["ReactionContext"], None]] = None
        # Pending hot swaps: (reaction name, impl, rerun_user_init).
        self._pending_swaps: List[Tuple[str, Callable, bool]] = []
        self._reactions: List[_ReactionRuntime] = [
            _ReactionRuntime(r, engine=reaction_engine)
            for r in self.spec.reactions.values()
        ]
        self._master: Optional[InitTableSpec] = None
        for init in self.spec.init_tables:
            if init.master:
                self._master = init
        self._master_memo: Optional[MemoHandle] = None
        self._master_args: List[int] = []
        self._master_staged: Dict[int, int] = {}
        self._init_shadows: Dict[str, _InitShadow] = {}
        self._param_values: Dict[str, int] = {}
        self._param_width: Dict[str, int] = {}
        self._param_home: Dict[str, Tuple[str, int]] = {}
        self._container_memos: Dict[str, MemoHandle] = {}
        self._container_cache: Dict[str, int] = {}
        self._mirror_readers: Dict[str, _MirrorReader] = {}
        self._tables: Dict[str, MalleableTableHandle] = {}
        self._has_measurements = bool(self.spec.containers or self.spec.mirrors)
        # Fault state: a committed-but-unmirrored flip (the old vv to
        # mirror onto), and the failure counters behind health().
        self._mirror_old_vv: Optional[int] = None
        self._consecutive_failures = 0
        self._total_failures = 0
        self._last_error: Optional[str] = None
        self._last_error_us = 0.0

    # ------------------------------------------------------------------
    # Registration

    def register_extern(self, name: str, fn: Callable) -> None:
        """Expose a host function to C reaction bodies."""
        self.externs[name] = fn
        # Environments snapshot the extern set when built (the compiled
        # engine additionally prefetches handles at bind time): force a
        # rebuild so the new extern is visible next iteration.
        for runtime in self._reactions:
            runtime.env = None

    def attach_python(
        self, reaction_name: str, fn: Callable[[ReactionContext], None]
    ) -> None:
        """Replace a reaction's implementation with a Python callable
        (the paper's dynamic ``.so`` reload).  Takes effect at the next
        dialogue iteration."""
        for runtime in self._reactions:
            if runtime.spec.name == reaction_name:
                runtime.py_impl = fn
                return
        if reaction_name not in self.spec.reactions:
            # Allow purely host-defined reactions for programs whose
            # P4R source declared the args but no body, or for tests.
            raise AgentError(f"unknown reaction {reaction_name!r}")

    def request_swap(
        self,
        reaction_name: str,
        fn: Callable[[ReactionContext], None],
        rerun_user_init: bool = False,
    ) -> None:
        """Section 7's dynamic-loading protocol: queue a reaction swap
        that takes effect only *after the current dialogue completes*
        (the "transition flag" breaking out of the loop), optionally
        re-running the prologue's user initialization."""
        if reaction_name not in self.spec.reactions:
            raise AgentError(f"unknown reaction {reaction_name!r}")
        self._pending_swaps.append((reaction_name, fn, rerun_user_init))

    def _apply_pending_swaps(self) -> None:
        if not self._pending_swaps:
            return
        swaps, self._pending_swaps = self._pending_swaps, []
        rerun = False
        for name, fn, rerun_init in swaps:
            for runtime in self._reactions:
                if runtime.spec.name == name:
                    runtime.py_impl = fn
                    runtime.statics.clear()  # fresh module DATA segment
                    runtime.state.clear()
                    runtime.env = None
            rerun = rerun or rerun_init
        if rerun and self._user_init is not None:
            context = ReactionContext(self, {}, {})
            self._user_init(context)
            # The re-init's staged configuration commits atomically;
            # under driver failure it stays staged (and the swap stays
            # applied) until a later iteration's commit lands.
            self._commit_with_recovery()

    # ------------------------------------------------------------------
    # Prologue

    def prologue(
        self, user_init: Optional[Callable[[ReactionContext], None]] = None
    ) -> None:
        """Precompute metadata, set up memoization, install initial
        entries, and run optional user initialization."""
        if self._prologue_done:
            raise AgentError("prologue already executed")
        driver = self.driver

        for init in self.spec.init_tables:
            memo = driver.memoize("table", init.table)
            for param in init.params:
                self._param_values[param.name] = param.init
                self._param_width[param.name] = param.width
                self._param_home[param.name] = (init.table, init.master)
            if init.master:
                self._master_memo = memo
                self._master_args = [p.init for p in init.params]
                driver.set_default(
                    init.table, init.action, self._master_args, memo=memo
                )
            else:
                shadow = _InitShadow(
                    init, args=[p.init for p in init.params], memo=memo
                )
                for version in (0, 1):
                    shadow.entry_ids[version] = driver.add_entry(
                        init.table, [version], init.action, shadow.args,
                        memo=memo,
                    )
                self._init_shadows[init.table] = shadow

        for load in self.spec.load_tables:
            memo = driver.memoize("table", load.table)
            for alt_index, action in enumerate(load.actions):
                driver.add_entry(load.table, [alt_index], action, [], memo=memo)

        for container in self.spec.containers:
            self._container_memos[container.register] = driver.memoize(
                "register", container.register
            )
        for mirror in self.spec.mirrors.values():
            self._mirror_readers[mirror.original] = _MirrorReader(
                driver, mirror, delta=self.delta_polling
            )

        self._make_table_handles()

        self._prologue_done = True
        self._user_init = user_init
        if user_init is not None:
            context = ReactionContext(self, {}, {})
            user_init(context)
            # Fold any user-staged configuration in atomically.
            self._commit()

    def _make_table_handles(self) -> None:
        alt_counts = {
            name: len(fld.alts) for name, fld in self.spec.fields.items()
        }
        for name, transform in self.spec.tables.items():
            if name in self._init_shadows:
                continue  # managed as init shadows, not user tables
            self._tables[name] = MalleableTableHandle(
                self.driver,
                transform,
                active_version=lambda: self.vv,
                memo=self.driver.memoize("table", name),
                field_alt_counts=alt_counts,
            )

    def table(self, name: str) -> MalleableTableHandle:
        if not self._prologue_done:
            raise AgentError("run prologue() before accessing tables")
        if name not in self._tables:
            raise AgentError(f"no malleable/transformed table {name!r}")
        return self._tables[name]

    # ------------------------------------------------------------------
    # Crash recovery

    def recover(self) -> None:
        """Rebuild a restarted agent's bookkeeping from device state.

        The inverse of :meth:`prologue` for a switch that is already
        configured: version variables, master arguments, malleable
        values, init-shadow entry ids, and user table entries are all
        reconstructed by reading the device back, and interrupted
        commits are rolled forward (a stale shadow copy is repaired),
        so the dialogue resumes exactly where the crashed agent left
        off -- without reinstalling entries or perturbing traffic.

        Limitations: tables transformed for malleable *fields* (alt
        expansion / action specialization) are only recovered when
        empty -- their user-level keys are not invertible from the
        concrete entries.
        """
        if self._prologue_done:
            raise AgentError("recover() requires a fresh agent")
        if self._master is None:
            raise AgentError(
                "cannot recover a program without a master init table"
            )
        driver = self.driver

        # Master first: it holds the authoritative vv/mv.
        master = self._master
        self._master_memo = driver.memoize("table", master.table)
        default = driver.read_default(master.table, memo=self._master_memo)
        if default is None:
            raise AgentError(
                f"cannot recover: master init table {master.table} has no "
                "default action installed (prologue never ran?)"
            )
        self._master_args = list(default[1])
        self.vv = self._master_args[master.param_index("vv")]
        self.mv = self._master_args[master.param_index("mv")]

        for init in self.spec.init_tables:
            for param in init.params:
                self._param_width[param.name] = param.width
                self._param_home[param.name] = (init.table, init.master)
            if init.master:
                for index, param in enumerate(init.params):
                    self._param_values[param.name] = self._master_args[index]
                continue
            memo = driver.memoize("table", init.table)
            shadow = _InitShadow(init, memo=memo)
            by_version: Dict[int, List[int]] = {}
            for entry_id, key, _action, args, _priority in driver.read_entries(
                init.table, memo=memo
            ):
                if key in ((0,), (1,)):
                    shadow.entry_ids[key[0]] = entry_id
                    by_version[key[0]] = list(args)
            if set(shadow.entry_ids) != {0, 1}:
                raise AgentError(
                    f"cannot recover: init table {init.table} is missing "
                    f"version entries (found {sorted(shadow.entry_ids)})"
                )
            # The active copy is authoritative; a diverging shadow copy
            # is either an unfinished mirror or an uncommitted prepare
            # -- both repaired by rewriting it to the committed args.
            shadow.args = by_version[self.vv]
            if by_version[self.vv ^ 1] != shadow.args:
                driver.modify_entry(
                    init.table,
                    shadow.entry_ids[self.vv ^ 1],
                    args=list(shadow.args),
                    memo=memo,
                )
            for index, param in enumerate(init.params):
                self._param_values[param.name] = shadow.args[index]
            self._init_shadows[init.table] = shadow

        # Load tables are static and already installed; measurement
        # readers start cold and repopulate via the timestamp cache.
        for container in self.spec.containers:
            self._container_memos[container.register] = driver.memoize(
                "register", container.register
            )
        for mirror in self.spec.mirrors.values():
            self._mirror_readers[mirror.original] = _MirrorReader(
                driver, mirror, delta=self.delta_polling
            )

        self._make_table_handles()
        for handle in self._tables.values():
            entries = driver.read_entries(handle.name, memo=handle.memo)
            if entries:
                handle.adopt_entries(entries, self.vv)

        self._prologue_done = True

    # ------------------------------------------------------------------
    # Malleable access

    def _resolve_param(self, name: str) -> str:
        if name in self.spec.values:
            return self.spec.values[name].param
        if name in self.spec.fields:
            return self.spec.fields[name].param
        raise AgentError(f"unknown malleable {name!r}")

    def read_malleable(self, name: str) -> int:
        """Last-written (staged or committed) value of a malleable.

        For malleable fields this is the current alt *index*.
        """
        return self._param_values[self._resolve_param(name)]

    def write_malleable(self, name: str, value: int) -> None:
        """Stage a malleable update; commits at the next vv flip."""
        param = self._resolve_param(name)
        if name in self.spec.fields:
            alts = self.spec.fields[name].alts
            if not 0 <= value < len(alts):
                raise AgentError(
                    f"malleable field {name}: alt index {value} out of "
                    f"range (has {len(alts)} alts)"
                )
        value &= (1 << self._param_width[param]) - 1
        self._param_values[param] = value
        table, is_master = self._param_home[param]
        diff = self.commit_mode == "diff"
        if is_master:
            index = self._master.param_index(param)
            if diff and value == self._master_args[index]:
                # Dirty-diff dedup: re-writing the committed value is a
                # no-op; dropping any earlier staged value restores the
                # committed state, so nothing needs to be written.
                self._master_staged.pop(index, None)
                self.dirty_writes_skipped += 1
                return
            self._master_staged[index] = value
            self.dirty_writes_staged += 1
        else:
            # Staged; the prepare write happens once per dirty init
            # table at commit time (all staged params in one entry
            # update, like the master's single default-action write).
            shadow = self._init_shadows[table]
            position = shadow.spec.param_index(param)
            if diff and value == shadow.args[position]:
                shadow.staged.pop(position, None)
                shadow.dirty = bool(shadow.staged)
                self.dirty_writes_skipped += 1
                return
            shadow.staged[position] = value
            shadow.dirty = True
            self.dirty_writes_staged += 1

    def shift_field(self, name: str, alt: Union[int, str]) -> None:
        """Shift a malleable field to an alt, by index or by name."""
        if isinstance(alt, str):
            alts = self.spec.fields[name].alts
            if alt not in alts:
                raise AgentError(f"{alt!r} is not an alt of field {name!r}")
            alt = alts.index(alt)
        self.write_malleable(name, alt)

    # ------------------------------------------------------------------
    # Dialogue

    def run_iteration(self, commit: bool = True) -> float:
        """One dialogue iteration; returns its duration (busy time).

        ``commit=False`` stops before the vv flip -- used by the
        multi-pipeline synchronized-commit extension, which performs
        the commits of all pipelines back to back.

        Driver failures never escape: a failed mv flip or poll falls
        back to the previous checkpoint, a failed commit defers (with
        all staged state preserved) to the next iteration.  Reaction
        exceptions still propagate -- user code bugs are not faults.
        """
        if not self._prologue_done:
            raise AgentError("run prologue() before the dialogue loop")
        clock = self.driver.clock
        start = clock.now
        failures_before = self._total_failures

        # Roll any unfinished mirror forward *before* reactions stage
        # new changes: a stale mirror replaying after fresh prepares
        # could resurrect entries the new generation deleted.
        if not self._finish_mirror_tolerant():
            busy = clock.now - start
            self.last_breakdown = {
                "mv_flip_us": 0.0, "poll_us": 0.0, "react_us": 0.0,
                "commit_us": busy, "total_us": busy,
            }
            self._account_iteration(busy, failures_before)
            return busy

        if self._has_measurements and self._master is not None:
            try:
                self._write_master(mv=self.mv ^ 1)
                self.mv ^= 1
                self._param_values["mv"] = self.mv
            except _RECOVERABLE as error:
                # Tolerated: poll the previous checkpoint again (one
                # measurement interval staler, still consistent).
                self._note_failure(error)
        checkpoint = self.mv ^ 1
        after_flip = clock.now

        poll_time = 0.0
        if self.poll_batching:
            # SS6-style batched DMA for measurement: every reaction's
            # poll reads share one driver batch (one PCIe round trip),
            # then the reactions run outside it so their writes pay
            # their own transactions.
            poll_start = clock.now
            polled: List[Optional[Dict[str, object]]] = []
            with self.driver.batch():
                for runtime in self._reactions:
                    try:
                        polled.append(self._poll_args(runtime, checkpoint))
                    except _RECOVERABLE as error:
                        self._note_failure(error)
                        polled.append(None)  # skip for one iteration
            poll_time = clock.now - poll_start
            for runtime, args in zip(self._reactions, polled):
                if args is not None:
                    self._execute(runtime, args)
        else:
            for runtime in self._reactions:
                poll_start = clock.now
                try:
                    args = self._poll_args(runtime, checkpoint)
                except _RECOVERABLE as error:
                    self._note_failure(error)
                    poll_time += clock.now - poll_start
                    continue  # skip this reaction for one iteration
                poll_time += clock.now - poll_start
                self._execute(runtime, args)
        before_commit = clock.now

        if commit:
            self._commit_with_recovery()
        self._apply_pending_swaps()

        busy = clock.now - start
        # Per-phase breakdown of this iteration (the terms of the
        # Section 8.1 formula), for observability and the benchmarks.
        self.last_breakdown = {
            "mv_flip_us": after_flip - start,
            "poll_us": poll_time,
            "react_us": before_commit - after_flip - poll_time,
            "commit_us": clock.now - before_commit,
            "total_us": busy,
        }
        self._account_iteration(busy, failures_before)
        return busy

    def _account_iteration(self, busy: float, failures_before: int) -> None:
        self.iterations += 1
        self.total_busy_us += busy
        totals = self.phase_totals
        for phase, spent in self.last_breakdown.items():
            totals[phase] = totals.get(phase, 0.0) + spent
        duration = busy + self.pacing_sleep_us
        self.iteration_durations.append(duration)
        self._duration_sum_us += duration
        self._duration_count += 1
        if len(self.iteration_durations) > 100_000:
            del self.iteration_durations[:50_000]
        if self.pacing_sleep_us:
            self.driver.clock.advance(self.pacing_sleep_us)
            self.total_idle_us += self.pacing_sleep_us
        if self._total_failures > failures_before:
            self._consecutive_failures += 1
        else:
            self._consecutive_failures = 0

    def run(self, iterations: int) -> None:
        for _ in range(iterations):
            self.run_iteration()

    def run_until(self, time_us: float, max_iterations: int = 10_000_000) -> int:
        """Run dialogue iterations until the simulated clock passes
        ``time_us``; returns the number of iterations executed."""
        count = 0
        while self.driver.clock.now < time_us and count < max_iterations:
            self.run_iteration()
            count += 1
        return count

    def commit(self) -> None:
        """Public commit: fold staged configuration in atomically
        (prepare + vv flip + mirror).  Used together with
        ``run_iteration(commit=False)`` for externally coordinated
        commit points."""
        self._commit()

    # ------------------------------------------------------------------
    # Health

    def health(self) -> AgentHealth:
        """Fault-state snapshot (consecutive failures, deferred work,
        last error); ``healthy`` once all effects of past faults have
        drained."""
        driver = self.driver
        backlog = sum(h.mirror_backlog for h in self._tables.values())
        commit_pending = (
            self._mirror_old_vv is not None
            or bool(self._master_staged)
            or any(
                shadow.dirty or shadow.mirror_dirty
                for shadow in self._init_shadows.values()
            )
        )
        degraded = (
            self._consecutive_failures > 0
            or commit_pending
            or backlog > 0
        )
        diff_total = self.dirty_writes_staged + self.dirty_writes_skipped
        delta_checks = sum(
            reader.delta_checks for reader in self._mirror_readers.values()
        )
        delta_skips = sum(
            reader.delta_skips for reader in self._mirror_readers.values()
        )
        return AgentHealth(
            reaction_engine=self.reaction_engine,
            commit_mode=self.commit_mode,
            delta_polling=self.delta_polling,
            dirty_diff_hit_rate=(
                self.dirty_writes_skipped / diff_total if diff_total else 0.0
            ),
            delta_poll_skip_rate=(
                delta_skips / delta_checks if delta_checks else 0.0
            ),
            healthy=not degraded,
            degraded=degraded,
            consecutive_failed_iterations=self._consecutive_failures,
            total_failures=self._total_failures,
            commit_pending=commit_pending,
            mirror_backlog=backlog,
            last_error=self._last_error,
            last_error_us=self._last_error_us,
            driver_errors=driver.errors_total,
            driver_retries=driver.retries_total,
            driver_timeouts=driver.timeouts_total,
        )

    # ---- internals -----------------------------------------------------

    def _note_failure(self, error: Exception) -> None:
        self._total_failures += 1
        self._last_error = str(error)
        self._last_error_us = self.driver.clock.now
        # Fault safety for delta polling: a failed/retried op may have
        # returned corrupt data, so no cached seq snapshot may justify
        # skipping a poll until a clean full poll re-establishes it.
        for reader in self._mirror_readers.values():
            reader.invalidate_delta()

    def _write_master(
        self,
        vv: Optional[int] = None,
        mv: Optional[int] = None,
        fold_staged: bool = False,
    ) -> None:
        """Atomic single-entry update of the master init table.

        Staged malleable values are folded in only when
        ``fold_staged`` is set (the vv commit); the mv flip must not
        leak configuration changes early.  Staged state is cleared
        only after the device accepted (and, under ``verify_commits``,
        demonstrably applied) the write, so a failure preserves it
        for the retry.
        """
        master = self._master
        args = list(self._master_args)
        if fold_staged:
            for index, value in self._master_staged.items():
                args[index] = value
        args[master.param_index("vv")] = self.vv if vv is None else vv
        args[master.param_index("mv")] = self.mv if mv is None else mv
        self.driver.set_default(
            master.table, master.action, args, memo=self._master_memo
        )
        if self.verify_commits:
            landed = self.driver.read_default(
                master.table, memo=self._master_memo
            )
            if landed is None or list(landed[1]) != args:
                raise TransientDriverError(
                    f"master write to {master.table!r} did not land "
                    "(dropped?)"
                )
        if fold_staged:
            self._master_staged.clear()
        self._master_args = args

    def _write_init_shadow(
        self, shadow: _InitShadow, version: int, args: List[int]
    ) -> None:
        """One memoized entry write to an init-shadow version copy,
        read back under ``verify_commits``.

        Diff mode reads back only the entry it wrote (a single-entry
        read); full mode keeps the whole-table dump as the baseline.
        """
        self.driver.modify_entry(
            shadow.spec.table,
            shadow.entry_ids[version],
            args=args,
            memo=shadow.memo,
        )
        if self.verify_commits:
            if self.commit_mode == "diff":
                entry = self.driver.read_entry(
                    shadow.spec.table,
                    shadow.entry_ids[version],
                    memo=shadow.memo,
                )
                landed_args = None if entry is None else entry[3]
            else:
                landed = {
                    entry_id: entry_args
                    for entry_id, _key, _action, entry_args, _priority
                    in self.driver.read_entries(
                        shadow.spec.table, memo=shadow.memo
                    )
                }
                landed_args = landed.get(shadow.entry_ids[version])
            if landed_args != list(args):
                raise TransientDriverError(
                    f"shadow write to {shadow.spec.table!r} v{version} "
                    "did not land (dropped?)"
                )

    def _pipeline_scope(self):
        """The prepare phase's write context: the session driver's
        pipelined scope when commit pipelining is on and usable,
        otherwise a null context."""
        if self.commit_pipelining and not self.verify_commits:
            session = getattr(self.driver, "session", None)
            if session is not None and session.service.scheduler is not None:
                return self.driver.pipeline()
        return contextlib.nullcontext(self.driver)

    def _commit(self) -> None:
        """Prepare (non-master inits) + vv flip (commit) + mirror.

        Every phase is resumable: a driver failure raises out with all
        staged state intact, and re-running the interrupted phase (via
        :meth:`_commit_with_recovery`) completes the commit without
        ever flipping vv twice for one batch of changes.
        """
        if self._master is None:
            return
        self._finish_mirror()
        # Prepare: one shadow-entry write per dirty non-master init
        # ("full" commit mode rewrites every shadow unconditionally --
        # the paper-naive baseline the dirty diff is measured against).
        # The prepare writes are order-free (distinct tables) and only
        # cleared after the flip below, so pipelining them is safe: a
        # failure surfaces at the drain barrier, before the flip, with
        # all staged state intact for the retry.
        commit_all = self.commit_mode == "full"
        with self._pipeline_scope():
            for shadow in self._init_shadows.values():
                if not (shadow.dirty or commit_all):
                    continue
                new_args = list(shadow.args)
                for position, value in shadow.staged.items():
                    new_args[position] = value
                self._write_init_shadow(shadow, self.vv ^ 1, new_args)
        old_vv = self.vv
        self._write_master(vv=self.vv ^ 1, fold_staged=True)
        # The flip landed: the commit is now irrevocable.  Record the
        # mirror obligation *before* doing any mirror write, so a
        # failure below leaves a resumable marker instead of a lie.
        self.vv ^= 1
        if "vv" in self._param_values:
            self._param_values["vv"] = self.vv
        self._mirror_old_vv = old_vv
        for shadow in self._init_shadows.values():
            if not (shadow.dirty or commit_all):
                continue
            for position, value in shadow.staged.items():
                shadow.args[position] = value
            shadow.staged.clear()
            shadow.dirty = False
            shadow.mirror_dirty = True
        for handle in self._tables.values():
            handle.seal_mirror(old_vv)
        self._finish_mirror()

    def _finish_mirror(self) -> None:
        """Mirror phase: replay committed changes onto the now-shadow
        old-version copies, restoring the two-entry invariant."""
        if self._mirror_old_vv is None:
            return
        old_vv = self._mirror_old_vv
        for handle in self._tables.values():
            handle.drain_mirror()
        for shadow in self._init_shadows.values():
            if not shadow.mirror_dirty:
                continue
            self._write_init_shadow(shadow, old_vv, list(shadow.args))
            shadow.mirror_dirty = False
        self._mirror_old_vv = None

    def _finish_mirror_tolerant(self) -> bool:
        """Try to drain mirror debt; absorb driver failures.

        Returns False when debt remains (the caller must not prepare
        new changes on top of an unfinished mirror).
        """
        try:
            self._finish_mirror()
            return True
        except _RECOVERABLE as error:
            self._note_failure(error)
            return False

    def _commit_with_recovery(self) -> bool:
        """Commit, absorbing driver failures; returns True when the
        commit (including its mirror phase) fully landed.

        If the vv flip already happened, only the mirror phase is
        retried -- never the flip.  On exhaustion the commit stays
        deferred: staged values, dirty flags and sealed mirror ops all
        survive for the next iteration.
        """
        for _attempt in range(max(1, self.commit_retry_limit)):
            try:
                if self._mirror_old_vv is not None:
                    self._finish_mirror()
                else:
                    self._commit()
                return True
            except _RECOVERABLE as error:
                self._note_failure(error)
        return False

    def _poll_args(
        self, runtime: _ReactionRuntime, checkpoint: int
    ) -> Dict[str, object]:
        """Poll one reaction's parameters from the checkpoint copies.

        Failed container/mirror reads degrade to the last successfully
        read values (stale but consistent) instead of raising.
        """
        args: Dict[str, object] = {}
        decl_args = runtime.spec.decl.args
        container_words: Dict[str, int] = {}
        with self.driver.batch():
            for arg, (source, _key) in zip(decl_args, runtime.spec.arg_sources):
                if source != "container":
                    continue
                container, slot = self.spec.container_for(
                    runtime.spec.name, arg.c_name
                )
                if container.register not in container_words:
                    try:
                        words = self.driver.read_registers(
                            container.register, checkpoint, checkpoint,
                            memo=self._container_memos[container.register],
                        )
                        word = words[0]
                        self._container_cache[container.register] = word
                    except _RECOVERABLE as error:
                        self._note_failure(error)
                        word = self._container_cache.get(
                            container.register, 0
                        )
                    container_words[container.register] = word
                word = container_words[container.register]
                args[arg.c_name] = (word >> slot.shift) & ((1 << slot.width) - 1)
        for arg, (source, key) in zip(decl_args, runtime.spec.arg_sources):
            if source == "mirror":
                reader = self._mirror_readers[key]
                try:
                    args[arg.c_name] = reader.poll(checkpoint, arg.lo, arg.hi)
                except _RECOVERABLE as error:
                    self._note_failure(error)
                    args[arg.c_name] = reader.cached(arg.lo, arg.hi)
            elif source == "mbl":
                args[arg.c_name] = self.read_malleable(key)
        return args

    def _execute(self, runtime: _ReactionRuntime, args: Dict[str, object]) -> None:
        if runtime.py_impl is not None:
            context = ReactionContext(self, args, runtime.state)
            runtime.py_impl(context)
            return
        if runtime.c_impl is None:
            return
        # One persistent env per reaction: the compiled engine binds
        # its closure to the env object once (prefetching table/extern
        # handles) and only the polled args change per iteration.
        if runtime.env is None:
            runtime.env = ReactionEnv(
                args=args,
                read_malleable=self.read_malleable,
                write_malleable=self.write_malleable,
                tables=self._tables,
                externs=self.externs,
                statics=runtime.statics,
            )
        else:
            runtime.env.args = args
        runtime.c_impl.run(runtime.env)
        # Charge simulated CPU time for the reaction logic (the "C"
        # term of the Section 8.1 formula): ~2 ns per interpreted
        # expression, a CPU-scale per-instruction cost.
        self.driver.clock.advance(
            runtime.c_impl.last_op_count * self.c_op_cost_us
        )

    # ------------------------------------------------------------------
    # Statistics (Figure 11)

    @property
    def avg_reaction_time_us(self) -> float:
        if not self._duration_count:
            return 0.0
        return self._duration_sum_us / self._duration_count

    @property
    def cpu_utilization(self) -> float:
        total = self.total_busy_us + self.total_idle_us
        return self.total_busy_us / total if total else 0.0
