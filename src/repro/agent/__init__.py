"""The Mantis control-plane agent (Section 6).

Runs on the "switch CPU" (against the driver's simulated clock) and
executes the paper's prologue/dialogue architecture:

- :mod:`repro.agent.handles` -- runtime handles for malleable values,
  fields, and tables; the table handle implements the three-phase
  (prepare/commit/mirror) serializable update protocol of Section 5.1.2.
- :mod:`repro.agent.agent` -- the agent itself: prologue setup
  (memoization, initial entries), and the high-frequency dialogue loop
  with mv/vv version flips, per-reaction measurement polling with the
  Section 5.2 timestamp cache, reaction execution (interpreted C or
  attached Python callables), and pacing (Figure 11).
- :mod:`repro.agent.legacy` -- the concurrent legacy control-plane
  model used by the Figure 12 interference experiment.
"""

from repro.agent.agent import MantisAgent, ReactionContext
from repro.agent.handles import MalleableTableHandle
from repro.agent.legacy import LegacyClient, legacy_latencies

__all__ = [
    "LegacyClient",
    "MalleableTableHandle",
    "MantisAgent",
    "ReactionContext",
    "legacy_latencies",
]
