"""The ``bench-ctrl`` sustained-throughput benchmark (BENCH_ctrl.json).

Measures sustained table-update throughput over the same update
stream in three control-plane modes:

- **sync**      -- the bare synchronous driver, one memoized
  ``modify_entry`` at a time (``prep + pcie + device`` per op);
- **pipelined** -- the same ops submitted through a
  :class:`~repro.ctrl.service.CtrlService` session with an in-flight
  window, so prep and PCIe transfers overlap device windows and
  throughput is bounded by device cost alone;
- **bulk**      -- the stream coalesced into DMA-burst
  ``write_batch`` transactions (RBFRT-style bulk insert).

Speedups are ratios of *simulated* time for the identical op stream,
so the CI gates (pipelined >= 2x, bulk >= 5x) are deterministic;
wall-clock numbers ride along for context.  The payload also carries
the contended-client scenario (agent + live legacy + bulk loader with
latency percentiles and fairness accounting) and the FatTree(k) bulk
route-install timing.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.agent.legacy import LegacyClient, LiveLegacyClient, legacy_latencies
from repro.analysis.stats import percentile
from repro.ctrl.clients import BulkLoader
from repro.runtime.scheduler import AgentActor, Scheduler
from repro.switch.asic import STANDARD_METADATA_P4
from repro.system import MantisSystem

#: Entries cycled by the sustained-update phases (the working set);
#: the op *count* is the benchmark's ``entries`` parameter.
UPDATE_WINDOW = 65_536

#: Timeline ring size for the million-op runs (exercises the bounded
#: ring: memory stays flat no matter how many ops run).
TIMELINE_RING = 8_192

DEFAULT_ENTRIES = 1_048_576

#: CI gate thresholds on simulated-time speedup over sync.
PIPELINED_GATE = 2.0
BULK_GATE = 5.0

CTRL_BENCH_P4R = STANDARD_METADATA_P4 + """
header_type ipv4_t { fields { dstAddr : 32; } }
header ipv4_t ipv4;
register heartbeat { width : 32; instance_count : 16; }
action forward(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
table route {
    reads { ipv4.dstAddr : exact; }
    actions { forward; _drop; }
    default_action : _drop();
    size : 1048576;
}
control ingress { apply(route); }
"""

#: The contended scenario's program -- the Fig. 12 shape: a busy
#: Mantis dialogue (malleable knob + register poll) plus a legacy
#: table for the live legacy controller.
CONTENDED_P4R = STANDARD_METADATA_P4 + """
header_type hdr_t { fields { a : 32; } }
header hdr_t hdr;
register probe { width : 32; instance_count : 8; }
register shadow { width : 32; instance_count : 64; }
malleable value knob { width : 32; init : 0; }
action stamp() { modify_field(hdr.a, ${knob}); }
table t { actions { stamp; } default_action : stamp(); }
action set_a(v) { modify_field(hdr.a, v); }
action nop() { no_op(); }
table legacy_table {
    reads { hdr.a : exact; }
    actions { set_a; nop; }
    default_action : nop();
    size : 128;
}
control ingress { apply(t); apply(legacy_table); }

reaction tick(reg probe[0:7]) {
    ${knob} = ${knob} + 1;
}
"""


def _build_update_stack(ctrl_service: bool, window: int):
    """A system with ``window`` pre-installed route entries (untimed
    setup via bulk load) and a memoized route-table handle."""
    system = MantisSystem.from_source(
        CTRL_BENCH_P4R,
        ctrl_service=ctrl_service,
        record_timeline=True,
        timeline_limit=TIMELINE_RING,
    )
    driver = system.driver
    entry_ids: List[int] = []
    chunk = 4096
    for base in range(0, window, chunk):
        ops = [
            ("add", "route", [addr], "forward", [addr % 64])
            for addr in range(base, min(base + chunk, window))
        ]
        entry_ids.extend(driver.write_batch(ops))
    memo = driver.memoize("table", "route")
    return system, entry_ids, memo


def _mode_result(mode: str, ops: int, sim_us: float, wall_sec: float,
                 **extra) -> Dict[str, object]:
    result = {
        "mode": mode,
        "ops": ops,
        "sim_us": sim_us,
        "us_per_op": sim_us / ops if ops else 0.0,
        "sim_updates_per_sec": ops / (sim_us / 1e6) if sim_us else 0.0,
        "wall_sec": wall_sec,
        "wall_updates_per_sec": ops / wall_sec if wall_sec else 0.0,
    }
    result.update(extra)
    return result


def measure_sync_updates(
    entries: int = DEFAULT_ENTRIES, window: int = UPDATE_WINDOW
) -> Dict[str, object]:
    system, entry_ids, memo = _build_update_stack(False, window)
    driver, clock = system.driver, system.clock
    count = len(entry_ids)
    sim0 = clock.now
    wall0 = time.perf_counter()
    for i in range(entries):
        driver.modify_entry(
            "route", entry_ids[i % count], args=[i % 64], memo=memo
        )
    return _mode_result(
        "sync", entries, clock.now - sim0, time.perf_counter() - wall0,
        timeline_records=len(driver.timeline),
        timeline_total=driver.timeline_total,
    )


def measure_pipelined_updates(
    entries: int = DEFAULT_ENTRIES,
    window: int = UPDATE_WINDOW,
    in_flight_window: int = 8,
) -> Dict[str, object]:
    system, entry_ids, memo = _build_update_stack(True, window)
    system.ctrl.channel.window = in_flight_window
    driver, clock = system.driver, system.clock
    scheduler = Scheduler(clock)
    system.ctrl.attach_scheduler(scheduler)
    session = system.ctrl.open_session("updater", priority="mantis")
    count = len(entry_ids)
    sim0 = clock.now
    wall0 = time.perf_counter()
    submitted = 0
    while submitted < entries:
        ticket = session.try_submit_modify(
            "route", entry_ids[submitted % count],
            args=[submitted % 64], memo=memo,
        )
        if ticket is not None:
            submitted += 1
            continue
        # Queue full: let simulated time run to the next completion.
        next_time = scheduler.events.peek_time()
        if next_time is None:
            raise RuntimeError("pipelined feeder stalled")
        if next_time > clock.now:
            clock.advance_to(next_time)
        else:
            scheduler.events.drain(clock.now)
    session.drain()
    sim_us = clock.now - sim0
    return _mode_result(
        "pipelined", entries, sim_us, time.perf_counter() - wall0,
        in_flight_window=in_flight_window,
        channel_utilization=system.ctrl.channel.utilization(sim_us),
        timeline_records=len(driver.timeline),
        timeline_total=driver.timeline_total,
    )


def measure_bulk_updates(
    entries: int = DEFAULT_ENTRIES,
    window: int = UPDATE_WINDOW,
    chunk: int = 512,
) -> Dict[str, object]:
    system, entry_ids, memo = _build_update_stack(True, window)
    driver, clock = system.driver, system.clock
    count = len(entry_ids)
    txns0 = driver.bulk_txns
    sim0 = clock.now
    wall0 = time.perf_counter()
    for base in range(0, entries, chunk):
        ops = [
            ("modify", "route", entry_ids[i % count], None, [i % 64])
            for i in range(base, min(base + chunk, entries))
        ]
        driver.write_batch(ops)
    return _mode_result(
        "bulk", entries, clock.now - sim0, time.perf_counter() - wall0,
        chunk=chunk,
        bulk_txns=driver.bulk_txns - txns0,
        timeline_records=len(driver.timeline),
        timeline_total=driver.timeline_total,
    )


def measure_contended(
    duration_us: float = 30_000.0,
    legacy_interval_us: float = 11.0,
    loader_ops: int = 40_000,
    loader_chunk: int = 64,
) -> Dict[str, object]:
    """Agent + live legacy + bulk loader on one switch: contended
    latency percentiles, fairness accounting, and the offline Fig. 12
    model as the golden cross-check on the same recorded timeline."""
    system = MantisSystem.from_source(
        CONTENDED_P4R, ctrl_service=True, record_timeline=True
    )
    system.agent.prologue()
    scheduler = Scheduler(system.clock)
    system.ctrl.attach_scheduler(scheduler)

    legacy_session = system.ctrl.open_session("legacy", priority="legacy")
    legacy = LiveLegacyClient(
        legacy_session, "legacy_table", interval_us=legacy_interval_us
    )
    legacy.setup([1], "set_a", [0])

    loader_session = system.ctrl.open_session(
        "loader", priority="bulk", queue_limit=8
    )
    loader = BulkLoader(
        loader_session,
        [("write_register", "shadow", i % 64, i) for i in range(loader_ops)],
        chunk_size=loader_chunk,
    )

    start = system.clock.now
    legacy.start(scheduler, start, start + duration_us)
    loader.start()
    scheduler.spawn(AgentActor(system.agent, name="mantis-agent"))
    scheduler.run_until(start + duration_us)
    system.ctrl.drain()

    live = legacy.latencies
    # Offline golden: the queueing model replayed against this same
    # run's recorded timeline of *competing* ops -- agent dialogue plus
    # the loader's bulk transactions (sorted by window start; async
    # completions can append slightly out of order).
    contender_window = sorted(
        (
            op for op in system.driver.timeline
            if op.channel != legacy_session.channel and op.end_us > start
            and op.start_us < start + duration_us
        ),
        key=lambda op: op.excl_start_us,
    )
    offline_model = LegacyClient(
        system.driver, interval_us=legacy_interval_us
    )
    offline = legacy_latencies(
        contender_window, legacy.arrival_times, offline_model.op_cost_us
    )
    return {
        "duration_us": duration_us,
        "legacy_interval_us": legacy_interval_us,
        "agent_iterations": system.agent.iterations,
        "legacy_updates": len(live),
        "legacy_p50_us": percentile(live, 50) if live else 0.0,
        "legacy_p99_us": percentile(live, 99) if live else 0.0,
        "legacy_mean_us": sum(live) / len(live) if live else 0.0,
        "offline_p50_us": percentile(offline, 50) if offline else 0.0,
        "offline_p99_us": percentile(offline, 99) if offline else 0.0,
        "loader_ops_completed": loader.ops_completed,
        "loader_chunks": loader.chunks_completed,
        "loader_parked": loader.parked,
        "service": system.ctrl.stats(),
    }


def measure_route_install(k: int = 8, mode: str = "hashed") -> Dict[str, object]:
    """FatTree(k) fleet route install, bulk vs per-entry, wall-clock."""
    from repro.apps.fabric_lb import FABRIC_P4R
    from repro.net.fabric_builder import FatTree
    from repro.net.routing import install_routes

    results: Dict[str, object] = {"k": k, "mode": mode}
    for label, bulk in (("bulk", True), ("per_entry", False)):
        wall0 = time.perf_counter()
        built = FatTree(k).build(FABRIC_P4R)
        build_wall = time.perf_counter() - wall0
        wall0 = time.perf_counter()
        summary = install_routes(built, mode=mode, bulk=bulk)
        install_wall = time.perf_counter() - wall0
        results[label] = {
            "build_wall_sec": build_wall,
            "install_wall_sec": install_wall,
            "switches": len(summary),
            "driver_ops": sum(s["driver_ops"] for s in summary.values()),
            "bulk_txns": sum(s["bulk_txns"] for s in summary.values()),
            "install_sim_us":
                sum(s["install_sim_us"] for s in summary.values()),
        }
    results["sub_second"] = results["bulk"]["install_wall_sec"] < 1.0
    results["sim_speedup"] = (
        results["per_entry"]["install_sim_us"]
        / results["bulk"]["install_sim_us"]
    )
    return results


def run_ctrl_benchmark(
    entries: int = DEFAULT_ENTRIES,
    window: int = UPDATE_WINDOW,
    contended_duration_us: float = 30_000.0,
    install_k: int = 8,
    json_path: Optional[str] = None,
) -> Dict[str, object]:
    sync = measure_sync_updates(entries, window)
    pipelined = measure_pipelined_updates(entries, window)
    bulk = measure_bulk_updates(entries, window)
    contended = measure_contended(duration_us=contended_duration_us)
    install = measure_route_install(k=install_k)
    speedup = {
        "pipelined_vs_sync": sync["sim_us"] / pipelined["sim_us"],
        "bulk_vs_sync": sync["sim_us"] / bulk["sim_us"],
    }
    payload = {
        "benchmark": "ctrl",
        "entries": entries,
        "update_window": window,
        "modes": {"sync": sync, "pipelined": pipelined, "bulk": bulk},
        "speedup": speedup,
        "gates": {
            "pipelined_min": PIPELINED_GATE,
            "bulk_min": BULK_GATE,
            "pipelined_pass":
                speedup["pipelined_vs_sync"] >= PIPELINED_GATE,
            "bulk_pass": speedup["bulk_vs_sync"] >= BULK_GATE,
        },
        "contended": contended,
        "route_install": install,
    }
    if json_path:
        from repro.fastbench import write_json

        write_json(json_path, payload)
    return payload
