"""Pipelined multi-client control-plane service (RBFRT-style).

Layers an event-driven service between control-plane clients and the
synchronous :class:`~repro.switch.driver.Driver`:

- :mod:`repro.ctrl.channel` -- the simulated PCIe channel with request
  pipelining (bounded in-flight window, software prep overlapped with
  device-exclusive windows);
- :mod:`repro.ctrl.service` -- multi-client sessions with priority
  arbitration, bounded queues with backpressure, fairness accounting,
  and per-op completion callbacks in simulated time;
- :mod:`repro.ctrl.clients` -- canned clients (the bulk loader);
- :mod:`repro.ctrl.bench` -- the ``bench-ctrl`` sustained-throughput
  benchmark behind ``BENCH_ctrl.json``.
"""

from repro.ctrl.channel import ChannelSchedule, PipelinedChannel
from repro.ctrl.clients import BulkLoader
from repro.ctrl.service import (
    PRIORITY_CLASSES,
    CtrlService,
    CtrlSession,
    OpTicket,
    SessionDriver,
)

__all__ = [
    "BulkLoader",
    "ChannelSchedule",
    "CtrlService",
    "CtrlSession",
    "OpTicket",
    "PipelinedChannel",
    "PRIORITY_CLASSES",
    "SessionDriver",
]
