"""Event-driven multi-client control-plane service.

One :class:`CtrlService` fronts one :class:`~repro.switch.driver.Driver`
and arbitrates any number of client *sessions* over the simulated PCIe
channel:

- **blocking ops** (``session.driver.modify_entry(...)``) run inline on
  the caller's (simulated) thread through the unchanged
  ``Driver._execute`` path, but reserve their device-exclusive window
  on the shared channel -- so two clients' blocking ops serialize on
  the device exactly as Section 6 describes, while each keeps its own
  software-prep pipeline.  Uncontended, timing is bit-identical to the
  bare synchronous driver.
- **pipelined ops** (``session.submit_modify(...)``) return an
  :class:`OpTicket` immediately; up to ``window`` requests are in
  flight at once, software prep runs ahead on the session's CPU, and
  the completion callback fires at the op's simulated completion time
  through the fabric :class:`~repro.runtime.scheduler.Scheduler`.
- **bulk streams** (``session.submit_batch(...)``) chunk a large
  heterogeneous write list into DMA-burst transactions
  (:meth:`Driver.write_batch` pricing), so priority traffic can slip
  between chunks.

Arbitration is strict priority by class (``mantis`` > ``legacy`` >
``bulk``), FIFO within a class.  Each session's submit queue is
bounded; a full queue raises
:class:`~repro.errors.BackpressureError` (or returns ``None`` from
``try_submit_*``), and ``on_drain`` fires once the queue drains to
half.  Fault admission, retry/backoff, and error accounting run
through the same driver hooks as the synchronous path, so an injected
transient failure is retried without ever double-applying a mutation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    BackpressureError,
    DriverError,
    DriverTimeoutError,
    TransientDriverError,
)
from repro.switch.driver import Driver, MemoHandle, OpRecord

from repro.ctrl.channel import ChannelSchedule, PipelinedChannel

#: Arbitration classes, lowest rank wins the next device window.
PRIORITY_CLASSES: Dict[str, int] = {"mantis": 0, "legacy": 1, "bulk": 2}

DEFAULT_QUEUE_LIMIT = 256
DEFAULT_BULK_CHUNK = 512


@dataclass
class OpTicket:
    """Handle for one pipelined (or bulk-chunk) operation.

    ``done`` flips at the op's simulated completion time; ``result``
    or ``error`` is populated then, and ``on_done(ticket)`` fires if
    registered at submit."""

    seq: int
    kind: str
    target: str
    channel: str
    session: str
    submit_us: float
    op_count: int = 1
    done: bool = False
    result: object = None
    error: Optional[Exception] = None
    schedule: Optional[ChannelSchedule] = None
    attempts: int = 0

    @property
    def latency_us(self) -> float:
        if self.schedule is None:
            return 0.0
        return self.schedule.done_us - self.submit_us


class _PendingOp:
    """Service-internal state for one submitted op."""

    __slots__ = (
        "ticket", "apply", "device_us", "pcie_us", "prep_us",
        "prep_end_us", "deadline_us", "on_done", "session",
        "fault_target",
    )

    def __init__(self, ticket, apply, device_us, pcie_us, prep_us,
                 prep_end_us, deadline_us, on_done, session,
                 fault_target):
        self.ticket = ticket
        self.fault_target = fault_target
        self.apply = apply
        self.device_us = device_us
        self.pcie_us = pcie_us
        self.prep_us = prep_us
        self.prep_end_us = prep_end_us
        self.deadline_us = deadline_us
        self.on_done = on_done
        self.session = session


@dataclass
class _ClassStats:
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    rejected: int = 0
    wait_us: float = 0.0
    latency_us: float = 0.0
    max_latency_us: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        completed = max(1, self.completed)
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "retried": self.retried,
            "rejected": self.rejected,
            "mean_wait_us": self.wait_us / completed,
            "mean_latency_us": self.latency_us / completed,
            "max_latency_us": self.max_latency_us,
        }


class CtrlService:
    """Arbitrated, pipelined access to one switch's driver."""

    def __init__(
        self,
        driver: Driver,
        scheduler=None,
        window: int = 8,
        bulk_chunk: int = DEFAULT_BULK_CHUNK,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ):
        self.driver = driver
        self.clock = driver.clock
        self.scheduler = scheduler
        self.channel = PipelinedChannel(window)
        self.bulk_chunk = bulk_chunk
        self.queue_limit = queue_limit
        self.sessions: Dict[str, "CtrlSession"] = {}
        self.in_flight = 0
        self._seq = 0
        # One FIFO per priority class, scanned in rank order.
        self._queues: List[deque] = [
            deque() for _ in range(len(PRIORITY_CLASSES))
        ]
        self.class_stats: Dict[str, _ClassStats] = {
            name: _ClassStats() for name in PRIORITY_CLASSES
        }

    # ---- wiring ------------------------------------------------------------

    def attach_scheduler(self, scheduler) -> "CtrlService":
        """Attach the fabric scheduler (required for pipelined ops)."""
        self.scheduler = scheduler
        return self

    def open_session(
        self,
        name: str,
        priority: str = "mantis",
        channel: Optional[str] = None,
        queue_limit: Optional[int] = None,
    ) -> "CtrlSession":
        """Register a client session in one arbitration class."""
        if priority not in PRIORITY_CLASSES:
            raise DriverError(
                f"unknown priority class {priority!r} "
                f"(choose from {sorted(PRIORITY_CLASSES)})"
            )
        if name in self.sessions:
            raise DriverError(f"session {name!r} already open")
        session = CtrlSession(
            self, name, priority,
            channel or name,
            self.queue_limit if queue_limit is None else queue_limit,
        )
        self.sessions[name] = session
        return session

    # ---- submission --------------------------------------------------------

    def _submit(self, session: "CtrlSession", kind: str, target: str,
                fault_target: str, device_us: float, prep_us: float,
                apply: Callable[[], object], op_count: int,
                on_done) -> OpTicket:
        if self.scheduler is None:
            raise DriverError(
                "pipelined submit needs a scheduler: call "
                "CtrlService.attach_scheduler(...) first"
            )
        if session.pending >= session.queue_limit:
            session._saturated = True
            self.class_stats[session.priority].rejected += 1
            raise BackpressureError(
                f"session {session.name!r} queue full "
                f"({session.queue_limit} pending)"
            )
        now = self.clock.now
        self._seq += 1
        ticket = OpTicket(
            seq=self._seq, kind=kind, target=target,
            channel=session.channel, session=session.name,
            submit_us=now, op_count=op_count,
        )
        # Software prep runs on the session CPU starting now; it may
        # queue behind this session's earlier preps and run ahead of
        # device admission -- that overlap is the pipelining win.
        prep_start = max(now, session.cpu_free_us)
        prep_end = prep_start + prep_us
        session.cpu_free_us = prep_end
        policy = self.driver.retry_policy
        deadline = None
        if policy is not None and policy.deadline_us is not None:
            deadline = now + policy.deadline_us
        op = _PendingOp(
            ticket, apply, device_us, self.driver.model.pcie_rtt_us,
            prep_us, prep_end, deadline, on_done, session, fault_target,
        )
        session.pending += 1
        self.class_stats[session.priority].submitted += 1
        self._queues[PRIORITY_CLASSES[session.priority]].append(op)
        self._pump()
        return ticket

    # ---- admission / device lifecycle --------------------------------------

    def _pump(self) -> None:
        """Admit queued ops into the in-flight window, best priority
        first, FIFO within a class."""
        while self.in_flight < self.channel.window:
            op = None
            for queue in self._queues:
                if queue:
                    op = queue.popleft()
                    break
            if op is None:
                return
            now = self.clock.now
            sched = self.channel.reserve(
                now, op.prep_end_us, op.device_us, op.pcie_us
            )
            op.ticket.schedule = sched
            op.session.pending -= 1
            op.session.in_flight += 1
            self.in_flight += 1
            self.scheduler.at(
                sched.excl_start_us, lambda _t, op=op: self._apply(op)
            )

    def _apply(self, op: _PendingOp) -> None:
        """Fires at the op's device-window start: fault admission,
        then the ASIC mutation, then completion scheduling."""
        driver = self.driver
        ticket = op.ticket
        ticket.attempts += 1
        fault_target = op.fault_target
        fault = driver.admit_fault(ticket.kind, fault_target, ticket.channel)
        sched = ticket.schedule
        if fault is not None and fault.kind == "transient":
            message = (
                f"injected transient failure on {ticket.kind} "
                f"{fault_target!r}"
            )
            driver.note_error(ticket.kind, message)
            self.scheduler.at(
                sched.done_us,
                lambda _t, op=op, m=message: self._retry_or_fail(op, m),
            )
            return
        result = None
        if fault is not None and fault.kind == "drop":
            pass  # silently lost write: window consumed, nothing lands
        else:
            result = op.apply()
        extra = (
            fault.extra_us
            if fault is not None and fault.kind == "latency"
            else 0.0
        )
        if fault is not None and fault.kind == "corrupt":
            result = fault.corrupt(result)
        # Latency faults on the pipelined path stretch the observed
        # completion, not the already-reserved device window.
        done_us = sched.done_us + extra
        record = OpRecord(
            ticket.submit_us, done_us, ticket.kind, ticket.target,
            ticket.channel,
            excl_start_us=sched.excl_start_us,
            excl_end_us=sched.excl_end_us,
            ops=ticket.op_count,
        )
        driver.complete_op(
            ticket.kind, fault_target, ticket.channel, record,
            op_count=ticket.op_count,
        )
        if ticket.kind == "bulk_write":
            driver.bulk_txns += 1
        self.scheduler.at(
            done_us,
            lambda _t, op=op, r=result, d=done_us: self._complete(op, r, d),
        )

    def _retry_or_fail(self, op: _PendingOp, message: str) -> None:
        """Fires when a failed attempt's channel slot frees: either
        rearm the op after backoff or surface a terminal error."""
        driver = self.driver
        ticket = op.ticket
        self._release(op)
        policy = driver.retry_policy
        error: Exception = TransientDriverError(message)
        if policy is not None and ticket.attempts < policy.max_attempts:
            backoff = min(
                policy.backoff_base_us
                * policy.backoff_multiplier ** (ticket.attempts - 1),
                policy.backoff_max_us,
            )
            retry_at = self.clock.now + backoff
            if op.deadline_us is None or retry_at <= op.deadline_us:
                driver.note_retry(ticket.kind)
                self.class_stats[op.session.priority].retried += 1
                op.session.pending += 1
                self.scheduler.at(
                    retry_at, lambda _t, op=op: self._rearm(op)
                )
                self._pump()
                return
            driver.note_timeout()
            error = DriverTimeoutError(
                f"{ticket.kind} {ticket.target!r} exceeded its "
                f"{policy.deadline_us} us deadline"
            )
        elif policy is not None:
            driver.note_timeout()
            error = DriverTimeoutError(
                f"{ticket.kind} {ticket.target!r} failed after "
                f"{ticket.attempts} attempts"
            )
        ticket.done = True
        ticket.error = error
        self.class_stats[op.session.priority].failed += 1
        if op.on_done is not None:
            op.on_done(ticket)
        op.session._maybe_notify_drain()
        self._pump()

    def _rearm(self, op: _PendingOp) -> None:
        """Re-queue a retried op at the head of its class (it is the
        oldest submission in that class by construction)."""
        op.prep_end_us = self.clock.now  # prep buffer already built
        self._queues[PRIORITY_CLASSES[op.session.priority]].appendleft(op)
        self._pump()

    def _complete(self, op: _PendingOp, result, done_us: float) -> None:
        ticket = op.ticket
        self._release(op)
        ticket.done = True
        ticket.result = result
        stats = self.class_stats[op.session.priority]
        stats.completed += 1
        latency = done_us - ticket.submit_us
        stats.latency_us += latency
        stats.wait_us += ticket.schedule.excl_start_us - ticket.submit_us
        if latency > stats.max_latency_us:
            stats.max_latency_us = latency
        op.session.completed += 1
        op.session.latencies_us.append(latency)
        if op.on_done is not None:
            op.on_done(ticket)
        op.session._maybe_notify_drain()
        self._pump()

    def _release(self, op: _PendingOp) -> None:
        self.in_flight -= 1
        op.session.in_flight -= 1

    # ---- drain -------------------------------------------------------------

    def outstanding(self, session: Optional["CtrlSession"] = None) -> int:
        if session is not None:
            return session.pending + session.in_flight
        return self.in_flight + sum(len(q) for q in self._queues) + sum(
            s.pending - self._queued_of(s) for s in self.sessions.values()
        )

    def _queued_of(self, session: "CtrlSession") -> int:
        return sum(
            1 for q in self._queues for op in q if op.session is session
        )

    def drain(self, session: Optional["CtrlSession"] = None) -> None:
        """Advance simulated time until every outstanding op of
        ``session`` (or all sessions) has completed or failed.

        Must be called from client context, never from inside an event
        callback."""
        if self.scheduler is None:
            return
        self._pump()
        clock, events = self.clock, self.scheduler.events
        while self.outstanding(session) > 0:
            next_time = events.peek_time()
            if next_time is None:
                raise DriverError(
                    "control-plane drain stalled: outstanding ops but "
                    "no pending events"
                )
            if next_time > clock.now:
                clock.advance_to(next_time)
            else:
                events.drain(clock.now)

    # ---- reporting ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        elapsed = self.clock.now
        return {
            "classes": {
                name: stats.as_dict()
                for name, stats in self.class_stats.items()
            },
            "sessions": {
                name: session.stats()
                for name, session in self.sessions.items()
            },
            "channel": {
                "window": self.channel.window,
                "reservations": self.channel.reservations,
                "device_busy_us": self.channel.device_busy_us,
                "utilization": self.channel.utilization(elapsed),
            },
        }


class CtrlSession:
    """One client's handle on the service."""

    def __init__(self, service: CtrlService, name: str, priority: str,
                 channel: str, queue_limit: int):
        self.service = service
        self.name = name
        self.priority = priority
        self.channel = channel
        self.queue_limit = queue_limit
        #: When this session's software-prep pipeline frees up.
        self.cpu_free_us = 0.0
        self.pending = 0
        self.in_flight = 0
        self.completed = 0
        self.latencies_us: List[float] = []
        self.on_drain: Optional[Callable[[], None]] = None
        self._saturated = False
        # Session-scoped request batching (blocking path).
        self._batch_depth = 0
        self._batch_pcie_paid = False
        self.driver = SessionDriver(service.driver, self)

    # ---- hooks used by Driver._execute (blocking path) ---------------------

    def next_pcie_us(self) -> float:
        model = self.service.driver.model
        if self._batch_depth == 0:
            return model.pcie_rtt_us
        if not self._batch_pcie_paid:
            self._batch_pcie_paid = True
            return model.pcie_rtt_us
        return 0.0

    def reserve(self, now_us: float, prep_us: float, device_us: float,
                extra_us: float, pcie_us: float) -> ChannelSchedule:
        channel = self.service.channel
        if self.cpu_free_us <= now_us and \
                channel.device_free_us <= now_us + prep_us:
            # Uncontended: replicate the synchronous driver's float
            # arithmetic bit for bit (same association order as its
            # ``clock.advance(prep + device + pcie + extra)``), so the
            # blocking session path is exactly equivalent, not merely
            # equal within rounding.
            self.cpu_free_us = now_us + prep_us
            excl_end = now_us + prep_us + device_us + extra_us
            channel.device_free_us = excl_end
            channel.device_busy_us += device_us + extra_us
            channel.reservations += 1
            return ChannelSchedule(
                prep_start_us=now_us,
                prep_end_us=now_us + prep_us,
                excl_start_us=now_us + prep_us,
                excl_end_us=excl_end,
                done_us=now_us + (prep_us + device_us + pcie_us + extra_us),
            )
        prep_start = max(now_us, self.cpu_free_us)
        prep_end = prep_start + prep_us
        self.cpu_free_us = prep_end
        return channel.reserve(
            now_us, prep_end, device_us + extra_us, pcie_us
        )

    # ---- pipelined submits -------------------------------------------------

    def submit_modify(self, table: str, entry_id: int,
                      action: Optional[str] = None,
                      args: Optional[Sequence[int]] = None,
                      memo: Optional[MemoHandle] = None,
                      on_done=None) -> OpTicket:
        driver = self.service.driver
        runtime = driver.asic.get_table(table)
        return self.service._submit(
            self, "table_modify", table, table,
            driver.model.table_modify_us,
            driver.prep_cost("table", table, memo),
            lambda: runtime.modify_entry(entry_id, action, args),
            1, on_done,
        )

    def submit_add(self, table: str, key, action: str,
                   args: Sequence[int] = (), priority: int = 0,
                   memo: Optional[MemoHandle] = None,
                   on_done=None) -> OpTicket:
        driver = self.service.driver
        runtime = driver.asic.get_table(table)
        return self.service._submit(
            self, "table_add", table, table,
            driver.model.table_add_us,
            driver.prep_cost("table", table, memo),
            lambda: runtime.add_entry(key, action, args, priority),
            1, on_done,
        )

    def submit_set_default(self, table: str, action: str,
                           args: Sequence[int] = (),
                           memo: Optional[MemoHandle] = None,
                           on_done=None) -> OpTicket:
        driver = self.service.driver
        runtime = driver.asic.get_table(table)
        return self.service._submit(
            self, "table_set_default", table, table,
            driver.model.table_set_default_us,
            driver.prep_cost("table", table, memo),
            lambda: runtime.set_default(action, args),
            1, on_done,
        )

    def submit_write_register(self, name: str, index: int, value: int,
                              memo: Optional[MemoHandle] = None,
                              on_done=None) -> OpTicket:
        driver = self.service.driver
        register = driver.asic.get_register(name)
        return self.service._submit(
            self, "register_write", name, name,
            driver.model.register_write_us,
            driver.prep_cost("register", name, memo),
            lambda: register.write(index, value),
            1, on_done,
        )

    def submit_batch(self, ops: Sequence[Tuple],
                     on_done=None) -> List[OpTicket]:
        """Stream a heterogeneous write list as chunked DMA-burst
        transactions; returns one ticket per chunk."""
        driver = self.service.driver
        chunk_size = self.service.bulk_chunk
        tickets: List[OpTicket] = []
        ops = list(ops)
        for base in range(0, len(ops), chunk_size):
            chunk = ops[base:base + chunk_size]
            applies, table_entries, register_writes = \
                _normalize_bulk_chunk(driver, chunk)
            device_us = driver.model.bulk_write_cost(
                table_entries, register_writes
            )
            tickets.append(self.service._submit(
                self, "bulk_write", f"bulk[{len(chunk)}]",
                f"bulk[{len(chunk)}]",
                device_us, driver.model.op_prep_us,
                lambda fns=applies: [fn() for fn in fns],
                len(chunk), on_done,
            ))
        return tickets

    def try_submit_modify(self, *args, **kwargs) -> Optional[OpTicket]:
        try:
            return self.submit_modify(*args, **kwargs)
        except BackpressureError:
            return None

    def try_submit_batch(self, *args, **kwargs) -> Optional[List[OpTicket]]:
        try:
            return self.submit_batch(*args, **kwargs)
        except BackpressureError:
            return None

    def drain(self) -> None:
        """Block (in simulated time) until this session's pipeline is
        empty."""
        self.service.drain(self)

    def _maybe_notify_drain(self) -> None:
        if (
            self._saturated
            and self.on_drain is not None
            and self.pending <= self.queue_limit // 2
        ):
            self._saturated = False
            self.service.scheduler.at(
                self.service.clock.now, lambda _t: self.on_drain()
            )

    def stats(self) -> Dict[str, object]:
        ordered = sorted(self.latencies_us)
        count = len(ordered)
        return {
            "priority": self.priority,
            "completed": self.completed,
            "pending": self.pending,
            "in_flight": self.in_flight,
            "p50_latency_us": ordered[count // 2] if count else 0.0,
            "p99_latency_us":
                ordered[min(count - 1, int(count * 0.99))] if count else 0.0,
        }


def _normalize_bulk_chunk(driver: Driver, ops: Sequence[Tuple]):
    """Resolve one bulk chunk into apply closures + entry counts
    (mirrors :meth:`Driver.write_batch`'s verb table)."""
    applies: List[Callable[[], object]] = []
    table_entries = 0
    register_writes = 0
    for op in ops:
        verb = op[0]
        if verb == "add":
            _, table, key, action, args = op[:5]
            priority = op[5] if len(op) > 5 else 0
            runtime = driver.asic.get_table(table)
            applies.append(
                lambda r=runtime, k=key, a=action, g=args, p=priority:
                    r.add_entry(k, a, g, p)
            )
            table_entries += 1
        elif verb == "modify":
            _, table, entry_id, action, args = op
            runtime = driver.asic.get_table(table)
            applies.append(
                lambda r=runtime, e=entry_id, a=action, g=args:
                    r.modify_entry(e, a, g)
            )
            table_entries += 1
        elif verb == "delete":
            _, table, entry_id = op
            runtime = driver.asic.get_table(table)
            applies.append(lambda r=runtime, e=entry_id: r.delete_entry(e))
            table_entries += 1
        elif verb == "set_default":
            _, table, action, args = op
            runtime = driver.asic.get_table(table)
            applies.append(
                lambda r=runtime, a=action, g=args: r.set_default(a, g)
            )
            table_entries += 1
        elif verb == "write_register":
            _, name, index, value = op
            register = driver.asic.get_register(name)
            applies.append(
                lambda r=register, i=index, v=value: r.write(i, v)
            )
            register_writes += 1
        else:
            raise DriverError(f"unknown bulk op verb {verb!r}")
    return applies, table_entries, register_writes


class SessionDriver:
    """Drop-in :class:`Driver` facade bound to one session.

    Method calls forward to the underlying driver with this session's
    channel scheduling (blocking path); attribute reads and writes
    fall through to the real driver, so agent code that pokes
    ``driver.memoization_enabled`` or reads ``driver.errors_total``
    keeps working unchanged.  Inside a :meth:`pipeline` context,
    fire-and-forget writes (modify / set_default / register write) are
    submitted asynchronously and the context exit drains them.
    """

    _LOCAL = ("_driver", "_session", "_pipelining", "_pipeline_tickets")

    def __init__(self, driver: Driver, session: CtrlSession):
        object.__setattr__(self, "_driver", driver)
        object.__setattr__(self, "_session", session)
        object.__setattr__(self, "_pipelining", False)
        object.__setattr__(self, "_pipeline_tickets", [])

    def __getattr__(self, name):
        return getattr(self._driver, name)

    def __setattr__(self, name, value):
        if name in SessionDriver._LOCAL:
            object.__setattr__(self, name, value)
        else:
            setattr(self._driver, name, value)

    @property
    def session(self) -> CtrlSession:
        return self._session

    # ---- batching / pipelining --------------------------------------------

    def batch(self) -> "_SessionBatchContext":
        return _SessionBatchContext(self)

    def pipeline(self) -> "_PipelineContext":
        """Within this context, write ops are pipelined; exiting
        drains the session and raises the first terminal error."""
        return _PipelineContext(self)

    def _sync_point(self) -> None:
        if self._pipelining:
            self._session.drain()

    # ---- ops ---------------------------------------------------------------

    def add_entry(self, table, key, action, args=(), priority=0,
                  memo=None, channel=None):
        self._sync_point()
        return self._driver.add_entry(
            table, key, action, args, priority, memo=memo,
            channel=channel or self._session.channel,
            session=self._session,
        )

    def modify_entry(self, table, entry_id, action=None, args=None,
                     memo=None, channel=None):
        if self._pipelining:
            self._pipeline_tickets.append(self._session.submit_modify(
                table, entry_id, action, args, memo=memo
            ))
            return None
        return self._driver.modify_entry(
            table, entry_id, action, args, memo=memo,
            channel=channel or self._session.channel,
            session=self._session,
        )

    def delete_entry(self, table, entry_id, memo=None, channel=None):
        self._sync_point()
        return self._driver.delete_entry(
            table, entry_id, memo=memo,
            channel=channel or self._session.channel,
            session=self._session,
        )

    def set_default(self, table, action, args=(), memo=None, channel=None):
        if self._pipelining:
            self._pipeline_tickets.append(self._session.submit_set_default(
                table, action, args, memo=memo
            ))
            return None
        return self._driver.set_default(
            table, action, args, memo=memo,
            channel=channel or self._session.channel,
            session=self._session,
        )

    def read_entries(self, table, memo=None, channel=None):
        self._sync_point()
        return self._driver.read_entries(
            table, memo=memo, channel=channel or self._session.channel,
            session=self._session,
        )

    def read_entry(self, table, entry_id, memo=None, channel=None):
        self._sync_point()
        return self._driver.read_entry(
            table, entry_id, memo=memo,
            channel=channel or self._session.channel,
            session=self._session,
        )

    def read_default(self, table, memo=None, channel=None):
        self._sync_point()
        return self._driver.read_default(
            table, memo=memo, channel=channel or self._session.channel,
            session=self._session,
        )

    def read_registers(self, name, lo=0, hi=None, memo=None, channel=None):
        self._sync_point()
        return self._driver.read_registers(
            name, lo, hi, memo=memo,
            channel=channel or self._session.channel,
            session=self._session,
        )

    def write_register(self, name, index, value, memo=None, channel=None):
        if self._pipelining:
            self._pipeline_tickets.append(
                self._session.submit_write_register(
                    name, index, value, memo=memo
                )
            )
            return None
        return self._driver.write_register(
            name, index, value, memo=memo,
            channel=channel or self._session.channel,
            session=self._session,
        )

    def read_counter(self, name, index, memo=None, channel=None):
        self._sync_point()
        return self._driver.read_counter(
            name, index, memo=memo,
            channel=channel or self._session.channel,
            session=self._session,
        )

    def write_batch(self, ops, channel=None):
        self._sync_point()
        return self._driver.write_batch(
            ops, channel=channel or self._session.channel,
            session=self._session,
        )


class _SessionBatchContext:
    """Session-scoped request batching: one PCIe round trip shared by
    the ops of one session's batch, independent of other sessions."""

    def __init__(self, proxy: SessionDriver):
        self.proxy = proxy

    def __enter__(self) -> SessionDriver:
        session = self.proxy._session
        if session._batch_depth == 0:
            session._batch_pcie_paid = False
        session._batch_depth += 1
        return self.proxy

    def __exit__(self, *exc_info) -> None:
        session = self.proxy._session
        session._batch_depth -= 1
        if session._batch_depth == 0:
            session._batch_pcie_paid = False


class _PipelineContext:
    """Pipelined-writes scope with a drain barrier on exit."""

    def __init__(self, proxy: SessionDriver):
        self.proxy = proxy

    def __enter__(self) -> SessionDriver:
        object.__setattr__(self.proxy, "_pipelining", True)
        object.__setattr__(self.proxy, "_pipeline_tickets", [])
        return self.proxy

    def __exit__(self, exc_type, exc, tb) -> None:
        object.__setattr__(self.proxy, "_pipelining", False)
        tickets = self.proxy._pipeline_tickets
        object.__setattr__(self.proxy, "_pipeline_tickets", [])
        if exc_type is not None:
            return
        self.proxy._session.drain()
        for ticket in tickets:
            if ticket.error is not None:
                raise ticket.error
