"""Canned control-plane clients.

:class:`BulkLoader` streams a large write list through a low-priority
session as chunked DMA-burst transactions, respecting backpressure:
when its session queue fills it parks and resumes from the
``on_drain`` notification.  This is the route-installer / table-mirror
workload of the contended benchmark scenario.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.ctrl.service import CtrlSession, OpTicket


class BulkLoader:
    """Streams ``ops`` through ``session`` in bulk chunks."""

    def __init__(self, session: CtrlSession, ops: Sequence[Tuple],
                 chunk_size: Optional[int] = None):
        self.session = session
        self.ops = list(ops)
        self.chunk_size = chunk_size or session.service.bulk_chunk
        self.cursor = 0
        self.chunks_submitted = 0
        self.chunks_completed = 0
        self.ops_completed = 0
        self.parked = 0
        self.started_us: Optional[float] = None
        self.finished_us: Optional[float] = None
        session.on_drain = self._resume

    @property
    def done(self) -> bool:
        return (
            self.cursor >= len(self.ops)
            and self.chunks_completed == self.chunks_submitted
        )

    def start(self) -> None:
        self.started_us = self.session.service.clock.now
        self._feed()

    def _feed(self) -> None:
        session = self.session
        while self.cursor < len(self.ops):
            chunk = self.ops[self.cursor:self.cursor + self.chunk_size]
            tickets = session.try_submit_batch(chunk, on_done=self._on_chunk)
            if tickets is None:
                # Queue full: park until the drain notification.
                self.parked += 1
                return
            self.cursor += len(chunk)
            self.chunks_submitted += len(tickets)

    def _resume(self) -> None:
        self._feed()

    def _on_chunk(self, ticket: OpTicket) -> None:
        self.chunks_completed += 1
        if ticket.error is None:
            self.ops_completed += ticket.op_count
        if self.done:
            self.finished_us = self.session.service.clock.now
