"""Simulated PCIe channel with request pipelining.

The synchronous :class:`~repro.switch.driver.Driver` charges every op
``prep + device + pcie`` back to back on the shared clock.  The channel
model here splits those phases the way the paper's Fig. 12 analysis
does (and :func:`repro.agent.legacy.legacy_latencies` assumes):

- **software prep** runs on the *requester's* CPU; each session has its
  own prep pipeline (``cpu_free_us``) that can run ahead while the
  device is busy with someone else's op;
- the **device-exclusive window** is the only globally serialized
  resource (``device_free_us``): one op's ASIC access at a time,
  exactly the ``excl_start_us``/``excl_end_us`` window of
  :class:`~repro.switch.driver.OpRecord`;
- the **PCIe return transfer** overlaps the next op's device window --
  it delays the *completion* the requester observes, not the device.

Uncontended, a blocking op therefore costs exactly what the
synchronous driver charges (``prep + device + pcie`` with the same
exclusive window); pipelined submission overlaps prep and completion
transfers with device windows, so a saturating client is bounded by
device cost alone.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ChannelSchedule:
    """Resolved timing of one op on the channel."""

    prep_start_us: float
    prep_end_us: float
    excl_start_us: float
    excl_end_us: float
    done_us: float


class PipelinedChannel:
    """The shared device-exclusive resource plus per-session CPU state.

    ``window`` bounds the number of admitted-but-incomplete requests
    (the pipelining depth); admission control itself lives in the
    service -- the channel only prices and reserves.
    """

    def __init__(self, window: int = 8):
        self.window = window
        self.device_free_us = 0.0
        #: Total device-exclusive time reserved (utilization metric).
        self.device_busy_us = 0.0
        self.reservations = 0

    def reserve(
        self,
        now_us: float,
        prep_ready_us: float,
        device_us: float,
        pcie_us: float,
    ) -> ChannelSchedule:
        """Reserve the next device-exclusive window.

        ``prep_ready_us`` is when the requester's software prep for
        this op completes (its CPU pipeline may run ahead of ``now``).
        The device window opens at the latest of *now*, prep
        completion, and the device becoming free; completion lands one
        PCIe return transfer after the window closes.
        """
        excl_start = max(now_us, prep_ready_us, self.device_free_us)
        excl_end = excl_start + device_us
        self.device_free_us = excl_end
        self.device_busy_us += device_us
        self.reservations += 1
        return ChannelSchedule(
            prep_start_us=prep_ready_us,
            prep_end_us=prep_ready_us,
            excl_start_us=excl_start,
            excl_end_us=excl_end,
            done_us=excl_end + pcie_us,
        )

    def utilization(self, elapsed_us: float) -> float:
        """Fraction of ``elapsed_us`` the device was reserved."""
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.device_busy_us / elapsed_us)
