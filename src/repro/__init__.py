"""Mantis: Reactive Programmable Switches (SIGCOMM 2020) -- a complete
Python reproduction.

Top-level convenience imports; see README.md for the architecture and
``repro.system.MantisSystem`` for the one-call entry point::

    from repro import MantisSystem
    system = MantisSystem.from_source(p4r_source)
    system.agent.prologue()
    system.agent.run_iteration()
"""

from repro.compiler.transform import CompilerOptions, compile_p4r
from repro.multipipe import MultiPipelineSwitch
from repro.p4.parser import parse_p4
from repro.p4r.parser import parse_p4r
from repro.system import MantisSystem

__version__ = "1.0.0"

__all__ = [
    "CompilerOptions",
    "MantisSystem",
    "MultiPipelineSwitch",
    "compile_p4r",
    "parse_p4",
    "parse_p4r",
    "__version__",
]
