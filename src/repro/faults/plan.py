"""Deterministic fault injection for the control-plane driver.

Hardware control channels fail in ways the happy-path simulator never
exercises: slow PCIe ops, rejected writes, lost responses, corrupted
DMA reads.  This module injects those failures *deterministically* --
every decision is drawn from a seeded RNG and gated on the simulated
clock and a monotone per-driver op counter, so a failing run replays
exactly under the same seed.

Fault kinds:

- ``transient`` -- the op raises :class:`TransientDriverError`; the
  driver guarantees no device mutation landed (the wasted round trip
  still costs prep + PCIe time);
- ``latency``   -- the op succeeds but takes ``extra_us`` longer
  (a control-channel latency spike);
- ``drop``      -- a *value write* reports success but never lands
  (restricted to ``table_modify`` / ``table_set_default`` /
  ``register_write``: ops with no return value, so silent loss is
  well-defined);
- ``corrupt``   -- a *read* returns bit-flipped data (restricted to
  ``register_read`` / ``counter_read``).

Specs filter by op kind, target object, channel, op-attempt index
window, and simulated-time window, and can fire probabilistically
and/or a bounded number of times.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional, Tuple

FAULT_KINDS = ("transient", "latency", "drop", "corrupt")

# Data-plane link fault kinds.  Specs with these kinds never match
# driver operations -- they are lowered onto fabric links as
# :class:`~repro.net.sim.LinkFaultModel` instances by
# :func:`repro.faults.links.install_link_fault_plan`, sharing the
# plan's seed and the same time-window semantics as driver faults.
LINK_FAULT_KINDS = ("link_drop", "link_corrupt")

ALL_FAULT_KINDS = FAULT_KINDS + LINK_FAULT_KINDS

# Ops a `drop` fault may target: value writes with no return value.
DROPPABLE_KINDS = frozenset(
    {"table_modify", "table_set_default", "register_write"}
)
# Ops a `corrupt` fault may target: reads returning integer payloads.
CORRUPTIBLE_KINDS = frozenset({"register_read", "counter_read"})


@dataclass
class FaultSpec:
    """One fault rule: what to inject and which ops it may hit.

    All filters are conjunctive; ``None`` means "any".  ``predicate``
    (not serialized) receives ``(op_kind, target, channel)`` after the
    declarative filters pass -- an escape hatch for tests that need to
    target e.g. "the second set_default after arming".
    """

    kind: str
    op_kinds: Optional[FrozenSet[str]] = None
    targets: Optional[FrozenSet[str]] = None
    channels: Optional[FrozenSet[str]] = None
    op_range: Optional[Tuple[int, Optional[int]]] = None
    window_us: Optional[Tuple[float, float]] = None
    probability: float = 1.0
    max_triggers: Optional[int] = None
    extra_us: float = 20.0  # latency faults
    corrupt_mask: int = 0xFF  # corrupt faults: XOR mask on one word
    predicate: Optional[Callable[[str, str, str], bool]] = None

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{ALL_FAULT_KINDS}"
            )
        if self.op_kinds is not None:
            self.op_kinds = frozenset(self.op_kinds)
        if self.targets is not None:
            self.targets = frozenset(self.targets)
        if self.channels is not None:
            self.channels = frozenset(self.channels)

    @property
    def is_link_fault(self) -> bool:
        return self.kind in LINK_FAULT_KINDS

    def matches(
        self, op_kind: str, target: str, channel: str,
        op_index: int, now_us: float,
    ) -> bool:
        if self.kind in LINK_FAULT_KINDS:
            return False  # link specs never intercept driver ops
        if self.kind == "drop" and op_kind not in DROPPABLE_KINDS:
            return False
        if self.kind == "corrupt" and op_kind not in CORRUPTIBLE_KINDS:
            return False
        if self.op_kinds is not None and op_kind not in self.op_kinds:
            return False
        if self.targets is not None and target not in self.targets:
            return False
        if self.channels is not None and channel not in self.channels:
            return False
        if self.op_range is not None:
            lo, hi = self.op_range
            if op_index < lo or (hi is not None and op_index > hi):
                return False
        if self.window_us is not None:
            start, end = self.window_us
            if not start <= now_us <= end:
                return False
        if self.predicate is not None and not self.predicate(
            op_kind, target, channel
        ):
            return False
        return True


@dataclass
class FaultPlan:
    """A seeded set of fault rules applied to one driver."""

    seed: int
    specs: List[FaultSpec] = field(default_factory=list)

    def end_us(self) -> float:
        """Upper bound of every windowed spec (0.0 if none are
        windowed) -- past this instant a windowed plan is inert."""
        return max(
            (spec.window_us[1] for spec in self.specs if spec.window_us),
            default=0.0,
        )

    def link_specs(self) -> List[Tuple[int, FaultSpec]]:
        """``(spec_index, spec)`` pairs of the link-fault specs."""
        return [
            (index, spec)
            for index, spec in enumerate(self.specs)
            if spec.is_link_fault
        ]

    def driver_specs(self) -> List[Tuple[int, FaultSpec]]:
        """``(spec_index, spec)`` pairs of the driver-fault specs."""
        return [
            (index, spec)
            for index, spec in enumerate(self.specs)
            if not spec.is_link_fault
        ]


@dataclass
class FaultEvent:
    """One injected fault, for post-hoc analysis and assertions."""

    time_us: float
    op_index: int
    fault_kind: str
    op_kind: str
    target: str
    channel: str
    spec_index: int


class _ActiveFault:
    """What the driver consumes for one intercepted operation."""

    __slots__ = ("kind", "extra_us", "_mask", "_rng")

    def __init__(self, spec: FaultSpec, rng: random.Random):
        self.kind = spec.kind
        self.extra_us = spec.extra_us
        self._mask = spec.corrupt_mask
        self._rng = rng

    def corrupt(self, result):
        if isinstance(result, list) and result:
            corrupted = list(result)
            index = self._rng.randrange(len(corrupted))
            corrupted[index] ^= self._mask
            return corrupted
        if isinstance(result, int):
            return result ^ self._mask
        return result


class FaultInjector:
    """Hooks a :class:`FaultPlan` into one driver.

    The driver consults :meth:`intercept` before every operation
    attempt (including retries); the first matching spec wins.  All
    randomness (probability rolls, corruption placement) comes from
    one ``random.Random(plan.seed)``, so behaviour is a pure function
    of the plan and the op sequence.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.enabled = True
        self.events: List[FaultEvent] = []
        self._trigger_counts = [0] * len(plan.specs)

    def attach(self, driver) -> "FaultInjector":
        driver.fault_injector = self
        return self

    @property
    def triggered(self) -> int:
        return len(self.events)

    def intercept(
        self, op_kind: str, target: str, channel: str,
        op_index: int, now_us: float,
    ) -> Optional[_ActiveFault]:
        if not self.enabled:
            return None
        for index, spec in enumerate(self.plan.specs):
            if (
                spec.max_triggers is not None
                and self._trigger_counts[index] >= spec.max_triggers
            ):
                continue
            if not spec.matches(op_kind, target, channel, op_index, now_us):
                continue
            if spec.probability < 1.0 and self.rng.random() >= spec.probability:
                continue
            self._trigger_counts[index] += 1
            self.events.append(
                FaultEvent(
                    now_us, op_index, spec.kind, op_kind, target, channel,
                    index,
                )
            )
            return _ActiveFault(spec, self.rng)
        return None


def random_fault_plan(
    seed: int,
    start_us: float = 0.0,
    duration_us: float = 2000.0,
    max_specs: int = 6,
    kinds: Tuple[str, ...] = FAULT_KINDS,
    link_fraction: float = 0.0,
) -> FaultPlan:
    """Generate a randomized, bounded fault plan.

    Every spec is time-windowed inside ``[start_us, start_us +
    duration_us]`` and trigger-capped, so the plan is guaranteed to go
    quiet: after ``plan.end_us()`` the system must be able to converge
    back to healthy.  Identical seeds produce identical plans.

    With ``link_fraction > 0`` each spec slot becomes a *link* fault
    (``link_drop``/``link_corrupt``, lowered onto fabric links by
    :func:`repro.faults.links.install_link_fault_plan`) with that
    probability -- a mixed driver+link plan for the randomized sweep.
    The ``link_fraction`` roll is short-circuited at 0.0 so the
    default draw sequence (hence every existing seeded plan) is
    unchanged.
    """
    rng = random.Random(seed)
    specs: List[FaultSpec] = []
    for _ in range(rng.randint(2, max_specs)):
        if link_fraction > 0.0 and rng.random() < link_fraction:
            specs.append(_random_link_spec(rng, start_us, duration_us))
            continue
        kind = rng.choice(kinds)
        window_start = start_us + rng.random() * duration_us * 0.7
        window_len = duration_us * (0.05 + rng.random() * 0.3)
        window_end = min(window_start + window_len, start_us + duration_us)
        op_kinds = None
        if kind == "transient" and rng.random() < 0.5:
            op_kinds = frozenset(
                rng.sample(
                    [
                        "table_add", "table_modify", "table_set_default",
                        "table_delete", "register_read", "register_write",
                        "counter_read", "table_read",
                    ],
                    rng.randint(1, 4),
                )
            )
        specs.append(
            FaultSpec(
                kind=kind,
                op_kinds=op_kinds,
                window_us=(window_start, window_end),
                probability=rng.uniform(0.15, 0.9),
                max_triggers=rng.randint(1, 10),
                extra_us=rng.uniform(5.0, 80.0),
                corrupt_mask=1 << rng.randrange(0, 16),
            )
        )
    return FaultPlan(seed=seed, specs=specs)


def _random_link_spec(
    rng: random.Random, start_us: float, duration_us: float
) -> FaultSpec:
    """One randomized link-fault spec.

    ``probability`` is reinterpreted as the per-packet drop/corrupt
    rate (log-uniform over ~1e-3..1e-1, the LinkGuardian regime);
    ``max_triggers`` caps the damage so plans still go quiet.
    """
    kind = rng.choice(LINK_FAULT_KINDS)
    window_start = start_us + rng.random() * duration_us * 0.7
    window_len = duration_us * (0.05 + rng.random() * 0.3)
    window_end = min(window_start + window_len, start_us + duration_us)
    return FaultSpec(
        kind=kind,
        window_us=(window_start, window_end),
        probability=10.0 ** rng.uniform(-3.0, -1.0),
        max_triggers=rng.randint(5, 200),
        corrupt_mask=1 << rng.randrange(0, 16),
    )


def random_mixed_fault_plan(
    seed: int,
    start_us: float = 0.0,
    duration_us: float = 2000.0,
    max_specs: int = 8,
    link_fraction: float = 0.45,
) -> FaultPlan:
    """A mixed driver+link plan -- what the 50-seed CI sweep runs."""
    return random_fault_plan(
        seed,
        start_us=start_us,
        duration_us=duration_us,
        max_specs=max_specs,
        link_fraction=link_fraction,
    )
