"""Deterministic fault injection for the control-plane driver.

Hardware control channels fail in ways the happy-path simulator never
exercises: slow PCIe ops, rejected writes, lost responses, corrupted
DMA reads.  This module injects those failures *deterministically* --
every decision is drawn from a seeded RNG and gated on the simulated
clock and a monotone per-driver op counter, so a failing run replays
exactly under the same seed.

Fault kinds:

- ``transient`` -- the op raises :class:`TransientDriverError`; the
  driver guarantees no device mutation landed (the wasted round trip
  still costs prep + PCIe time);
- ``latency``   -- the op succeeds but takes ``extra_us`` longer
  (a control-channel latency spike);
- ``drop``      -- a *value write* reports success but never lands
  (restricted to ``table_modify`` / ``table_set_default`` /
  ``register_write``: ops with no return value, so silent loss is
  well-defined);
- ``corrupt``   -- a *read* returns bit-flipped data (restricted to
  ``register_read`` / ``counter_read``).

Specs filter by op kind, target object, channel, op-attempt index
window, and simulated-time window, and can fire probabilistically
and/or a bounded number of times.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional, Tuple

FAULT_KINDS = ("transient", "latency", "drop", "corrupt")

# Ops a `drop` fault may target: value writes with no return value.
DROPPABLE_KINDS = frozenset(
    {"table_modify", "table_set_default", "register_write"}
)
# Ops a `corrupt` fault may target: reads returning integer payloads.
CORRUPTIBLE_KINDS = frozenset({"register_read", "counter_read"})


@dataclass
class FaultSpec:
    """One fault rule: what to inject and which ops it may hit.

    All filters are conjunctive; ``None`` means "any".  ``predicate``
    (not serialized) receives ``(op_kind, target, channel)`` after the
    declarative filters pass -- an escape hatch for tests that need to
    target e.g. "the second set_default after arming".
    """

    kind: str
    op_kinds: Optional[FrozenSet[str]] = None
    targets: Optional[FrozenSet[str]] = None
    channels: Optional[FrozenSet[str]] = None
    op_range: Optional[Tuple[int, Optional[int]]] = None
    window_us: Optional[Tuple[float, float]] = None
    probability: float = 1.0
    max_triggers: Optional[int] = None
    extra_us: float = 20.0  # latency faults
    corrupt_mask: int = 0xFF  # corrupt faults: XOR mask on one word
    predicate: Optional[Callable[[str, str, str], bool]] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.op_kinds is not None:
            self.op_kinds = frozenset(self.op_kinds)
        if self.targets is not None:
            self.targets = frozenset(self.targets)
        if self.channels is not None:
            self.channels = frozenset(self.channels)

    def matches(
        self, op_kind: str, target: str, channel: str,
        op_index: int, now_us: float,
    ) -> bool:
        if self.kind == "drop" and op_kind not in DROPPABLE_KINDS:
            return False
        if self.kind == "corrupt" and op_kind not in CORRUPTIBLE_KINDS:
            return False
        if self.op_kinds is not None and op_kind not in self.op_kinds:
            return False
        if self.targets is not None and target not in self.targets:
            return False
        if self.channels is not None and channel not in self.channels:
            return False
        if self.op_range is not None:
            lo, hi = self.op_range
            if op_index < lo or (hi is not None and op_index > hi):
                return False
        if self.window_us is not None:
            start, end = self.window_us
            if not start <= now_us <= end:
                return False
        if self.predicate is not None and not self.predicate(
            op_kind, target, channel
        ):
            return False
        return True


@dataclass
class FaultPlan:
    """A seeded set of fault rules applied to one driver."""

    seed: int
    specs: List[FaultSpec] = field(default_factory=list)

    def end_us(self) -> float:
        """Upper bound of every windowed spec (0.0 if none are
        windowed) -- past this instant a windowed plan is inert."""
        return max(
            (spec.window_us[1] for spec in self.specs if spec.window_us),
            default=0.0,
        )


@dataclass
class FaultEvent:
    """One injected fault, for post-hoc analysis and assertions."""

    time_us: float
    op_index: int
    fault_kind: str
    op_kind: str
    target: str
    channel: str
    spec_index: int


class _ActiveFault:
    """What the driver consumes for one intercepted operation."""

    __slots__ = ("kind", "extra_us", "_mask", "_rng")

    def __init__(self, spec: FaultSpec, rng: random.Random):
        self.kind = spec.kind
        self.extra_us = spec.extra_us
        self._mask = spec.corrupt_mask
        self._rng = rng

    def corrupt(self, result):
        if isinstance(result, list) and result:
            corrupted = list(result)
            index = self._rng.randrange(len(corrupted))
            corrupted[index] ^= self._mask
            return corrupted
        if isinstance(result, int):
            return result ^ self._mask
        return result


class FaultInjector:
    """Hooks a :class:`FaultPlan` into one driver.

    The driver consults :meth:`intercept` before every operation
    attempt (including retries); the first matching spec wins.  All
    randomness (probability rolls, corruption placement) comes from
    one ``random.Random(plan.seed)``, so behaviour is a pure function
    of the plan and the op sequence.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.enabled = True
        self.events: List[FaultEvent] = []
        self._trigger_counts = [0] * len(plan.specs)

    def attach(self, driver) -> "FaultInjector":
        driver.fault_injector = self
        return self

    @property
    def triggered(self) -> int:
        return len(self.events)

    def intercept(
        self, op_kind: str, target: str, channel: str,
        op_index: int, now_us: float,
    ) -> Optional[_ActiveFault]:
        if not self.enabled:
            return None
        for index, spec in enumerate(self.plan.specs):
            if (
                spec.max_triggers is not None
                and self._trigger_counts[index] >= spec.max_triggers
            ):
                continue
            if not spec.matches(op_kind, target, channel, op_index, now_us):
                continue
            if spec.probability < 1.0 and self.rng.random() >= spec.probability:
                continue
            self._trigger_counts[index] += 1
            self.events.append(
                FaultEvent(
                    now_us, op_index, spec.kind, op_kind, target, channel,
                    index,
                )
            )
            return _ActiveFault(spec, self.rng)
        return None


def random_fault_plan(
    seed: int,
    start_us: float = 0.0,
    duration_us: float = 2000.0,
    max_specs: int = 6,
    kinds: Tuple[str, ...] = FAULT_KINDS,
) -> FaultPlan:
    """Generate a randomized, bounded fault plan.

    Every spec is time-windowed inside ``[start_us, start_us +
    duration_us]`` and trigger-capped, so the plan is guaranteed to go
    quiet: after ``plan.end_us()`` the system must be able to converge
    back to healthy.  Identical seeds produce identical plans.
    """
    rng = random.Random(seed)
    specs: List[FaultSpec] = []
    for _ in range(rng.randint(2, max_specs)):
        kind = rng.choice(kinds)
        window_start = start_us + rng.random() * duration_us * 0.7
        window_len = duration_us * (0.05 + rng.random() * 0.3)
        window_end = min(window_start + window_len, start_us + duration_us)
        op_kinds = None
        if kind == "transient" and rng.random() < 0.5:
            op_kinds = frozenset(
                rng.sample(
                    [
                        "table_add", "table_modify", "table_set_default",
                        "table_delete", "register_read", "register_write",
                        "counter_read", "table_read",
                    ],
                    rng.randint(1, 4),
                )
            )
        specs.append(
            FaultSpec(
                kind=kind,
                op_kinds=op_kinds,
                window_us=(window_start, window_end),
                probability=rng.uniform(0.15, 0.9),
                max_triggers=rng.randint(1, 10),
                extra_us=rng.uniform(5.0, 80.0),
                corrupt_mask=1 << rng.randrange(0, 16),
            )
        )
    return FaultPlan(seed=seed, specs=specs)
