"""Runtime checkers for the paper's isolation claims under faults.

:class:`VersionInvariantChecker` watches the data-plane-visible
configuration after every driver operation and asserts the Section 5
commit semantics: the *active* version's entry set (what packets can
match) changes only at a vv flip -- never piecewise.  A prepare or
mirror write leaking into the active copy, or a half-applied commit
becoming visible, shows up as a recorded violation.

:func:`shadow_parity_violations` checks the steady-state two-entry
shadow invariant (Section 5.1.1): once the dialogue is quiescent and
healthy, both version copies of every shadowed object must carry the
same configuration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


def _master_spec(spec):
    for init in spec.init_tables:
        if init.master:
            return init
    return None


def _masked_master_args(master, args) -> Tuple[int, ...]:
    """Master init args with the version bits blanked: the mv flip
    legitimately rewrites mv between commits, and vv is the snapshot
    key itself."""
    masked = list(args)
    for index, param in enumerate(master.params):
        if param.kind in ("vv", "mv"):
            masked[index] = -1
    return tuple(masked)


class VersionInvariantChecker:
    """Post-op hook asserting active-version configuration stability.

    Attach to a live :class:`~repro.system.MantisSystem`; it registers
    itself on the driver's ``post_op_hooks``.  ``violations`` collects
    ``(time_us, op, detail)`` tuples; a clean run leaves it empty.
    """

    def __init__(self, system):
        self.asic = system.asic
        self.spec = system.spec
        self.master = _master_spec(self.spec)
        if self.master is None:
            raise ValueError("program has no master init table to watch")
        self.vv_index = self.master.param_index("vv")
        self.violations: List[Tuple[float, str, str]] = []
        self.flips = 0
        self.checks = 0
        self._last: Optional[Tuple[int, Dict]] = None
        system.driver.post_op_hooks.append(self._check)

    # ---- snapshotting ------------------------------------------------------

    def _device_vv(self) -> Optional[int]:
        default = self.asic.get_table(self.master.table).default_action
        if default is None:
            return None
        return default[1][self.vv_index]

    def _active_snapshot(self, vv: int) -> Dict:
        snapshot: Dict = {}
        default = self.asic.get_table(self.master.table).default_action
        snapshot["master"] = _masked_master_args(self.master, default[1])
        for init in self.spec.init_tables:
            if init.master:
                continue
            runtime = self.asic.get_table(init.table)
            for entry in runtime.entries.values():
                if entry.key == (vv,):
                    snapshot[("init", init.table)] = (
                        entry.action_name, tuple(entry.action_args),
                    )
        for name, transform in self.spec.tables.items():
            if transform.vv_position < 0:
                continue
            if any(init.table == name for init in self.spec.init_tables):
                continue
            runtime = self.asic.get_table(name)
            snapshot[("table", name)] = frozenset(
                (entry.key, entry.action_name, tuple(entry.action_args),
                 entry.priority)
                for entry in runtime.entries.values()
                if entry.key[transform.vv_position] == vv
            )
        return snapshot

    # ---- the hook ----------------------------------------------------------

    def _check(self, kind: str, target: str, channel: str) -> None:
        vv = self._device_vv()
        if vv is None:
            return
        self.checks += 1
        snapshot = self._active_snapshot(vv)
        if self._last is None:
            self._last = (vv, snapshot)
            return
        last_vv, last_snapshot = self._last
        if vv != last_vv:
            # The commit point: a new configuration becomes active
            # atomically.  Reset the baseline.
            self.flips += 1
            self._last = (vv, snapshot)
            return
        if snapshot != last_snapshot:
            changed = [
                str(key)
                for key in set(snapshot) | set(last_snapshot)
                if snapshot.get(key) != last_snapshot.get(key)
            ]
            self.violations.append(
                (
                    self.asic.clock.now,
                    f"{kind} {target!r}",
                    "active-version config changed without a vv flip: "
                    + ", ".join(sorted(changed)),
                )
            )
            self._last = (vv, snapshot)


def shadow_parity_violations(system) -> List[str]:
    """Two-entry shadow invariant: both version copies identical.

    Valid only when the agent is quiescent (no staged changes, no
    pending mirror); returns human-readable violation descriptions.
    """
    spec = system.spec
    asic = system.asic
    problems: List[str] = []
    for init in spec.init_tables:
        if init.master:
            continue
        runtime = asic.get_table(init.table)
        by_version = {}
        for entry in runtime.entries.values():
            if entry.key in ((0,), (1,)):
                by_version[entry.key[0]] = tuple(entry.action_args)
        if set(by_version) != {0, 1}:
            problems.append(
                f"init table {init.table}: expected entries for both "
                f"versions, found {sorted(by_version)}"
            )
        elif by_version[0] != by_version[1]:
            problems.append(
                f"init table {init.table}: version copies diverge "
                f"({by_version[0]} vs {by_version[1]})"
            )
    for name, transform in spec.tables.items():
        if transform.vv_position < 0:
            continue
        if any(init.table == name for init in spec.init_tables):
            continue
        runtime = asic.get_table(name)
        by_version = {0: set(), 1: set()}
        for entry in runtime.entries.values():
            version = entry.key[transform.vv_position]
            keyless = tuple(
                part
                for index, part in enumerate(entry.key)
                if index != transform.vv_position
            )
            by_version[version].add(
                (keyless, entry.action_name, tuple(entry.action_args),
                 entry.priority)
            )
        if by_version[0] != by_version[1]:
            problems.append(
                f"table {name}: version copies diverge "
                f"(only in v0: {by_version[0] - by_version[1]}, "
                f"only in v1: {by_version[1] - by_version[0]})"
            )
    return problems
