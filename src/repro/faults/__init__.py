"""Fault subsystem: deterministic driver fault injection, link fault
lowering, and invariant checkers for the recovery guarantees (see
DESIGN.md, "Fault model and recovery")."""

from repro.faults.invariants import (
    VersionInvariantChecker,
    shadow_parity_violations,
)
from repro.faults.links import (
    install_link_fault_plan,
    link_fault_model_for,
)
from repro.faults.plan import (
    ALL_FAULT_KINDS,
    CORRUPTIBLE_KINDS,
    DROPPABLE_KINDS,
    FAULT_KINDS,
    LINK_FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    random_fault_plan,
    random_mixed_fault_plan,
)

__all__ = [
    "ALL_FAULT_KINDS",
    "CORRUPTIBLE_KINDS",
    "DROPPABLE_KINDS",
    "FAULT_KINDS",
    "LINK_FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "VersionInvariantChecker",
    "install_link_fault_plan",
    "link_fault_model_for",
    "random_fault_plan",
    "random_mixed_fault_plan",
    "shadow_parity_violations",
]
