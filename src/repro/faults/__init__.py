"""Fault subsystem: deterministic driver fault injection + invariant
checkers for the recovery guarantees (see DESIGN.md, "Fault model and
recovery")."""

from repro.faults.invariants import (
    VersionInvariantChecker,
    shadow_parity_violations,
)
from repro.faults.plan import (
    CORRUPTIBLE_KINDS,
    DROPPABLE_KINDS,
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    random_fault_plan,
)

__all__ = [
    "CORRUPTIBLE_KINDS",
    "DROPPABLE_KINDS",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "VersionInvariantChecker",
    "random_fault_plan",
    "shadow_parity_violations",
]
