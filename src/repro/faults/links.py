"""Lowering link-fault specs onto fabric links.

A :class:`~repro.faults.plan.FaultPlan` may carry specs whose kind is
``link_drop`` or ``link_corrupt`` (see ``LINK_FAULT_KINDS``).  Those
specs never intercept driver operations; instead this module expands
them into :class:`~repro.net.sim.LinkFaultModel` instances attached to
the fabric's inter-switch links -- the data-plane half of a mixed
driver+link fault plan.

Determinism contract: the per-model seed is a pure arithmetic function
of ``(plan.seed, spec_index, link_index)``, so the same plan applied
to the same topology yields bit-identical drop/corrupt sequences --
across runs, across per-packet vs burst delivery, and across pipeline
engines (the models draw from per-direction RNG streams; see
``LinkFaultModel``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.faults.plan import FaultPlan, FaultSpec
from repro.net.sim import Link, LinkFaultModel, NetworkSim


def link_fault_model_for(
    plan_seed: int, spec: FaultSpec, spec_index: int,
    link: Link, link_index: int,
) -> LinkFaultModel:
    """Build the deterministic :class:`LinkFaultModel` one link-fault
    spec induces on one link."""
    seed = plan_seed * 1000003 + spec_index * 9176 + link_index
    drop_rate = spec.probability if spec.kind == "link_drop" else 0.0
    corrupt_rate = spec.probability if spec.kind == "link_corrupt" else 0.0
    return LinkFaultModel(
        seed=seed,
        drop_rate=drop_rate,
        corrupt_rate=corrupt_rate,
        corrupt_mask=spec.corrupt_mask,
        window_us=spec.window_us,
        max_drops=spec.max_triggers,
        max_corrupts=spec.max_triggers,
        name=f"spec{spec_index}:{link.name}",
    )


def install_link_fault_plan(
    plan: FaultPlan, fabric: NetworkSim,
    links: Optional[List[Link]] = None,
) -> List[LinkFaultModel]:
    """Attach every link-fault spec in ``plan`` to the fabric's links.

    ``spec.targets`` (when set) filters by ``Link.name``; otherwise a
    spec degrades every link.  ``links`` restricts the candidate set
    (defaults to ``fabric.links``).  Returns the installed models.
    """
    candidates = fabric.links if links is None else links
    installed: List[LinkFaultModel] = []
    for spec_index, spec in plan.link_specs():
        for link_index, link in enumerate(candidates):
            if spec.targets is not None and link.name not in spec.targets:
                continue
            model = link_fault_model_for(
                plan.seed, spec, spec_index, link, link_index
            )
            link.fault_models.append(model)
            installed.append(model)
    return installed
