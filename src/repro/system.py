"""High-level wiring: compile a P4R program and bring up the full
Mantis stack (emulated ASIC + driver + agent) on one shared clock.

This is the reproduction's equivalent of "flash the compiler output
onto the Wedge100BF and start the agent":

    from repro import MantisSystem

    system = MantisSystem.from_source(P4R_SOURCE)
    system.agent.prologue()
    system.asic.process(packet)
    system.agent.run_iteration()
"""

from __future__ import annotations

from typing import Optional, Union

from repro.agent.agent import MantisAgent
from repro.compiler.spec import CompiledArtifacts
from repro.compiler.transform import CompilerOptions, compile_p4r
from repro.p4r.ast import P4RProgram
from repro.switch.asic import SwitchAsic
from repro.switch.clock import SimClock
from repro.switch.driver import Driver, DriverCostModel, RetryPolicy


class MantisSystem:
    """One switch: compiled artifacts, ASIC, driver, and agent.

    ``retry_policy`` arms the driver against transient control-channel
    failures; ``fault_plan`` (a :class:`repro.faults.FaultPlan`)
    attaches a deterministic fault injector; ``verify_commits`` makes
    the agent read commit-path writes back from the device.
    """

    def __init__(
        self,
        artifacts: CompiledArtifacts,
        clock: Optional[SimClock] = None,
        num_ports: int = 32,
        cost_model: Optional[DriverCostModel] = None,
        pacing_sleep_us: float = 0.0,
        record_timeline: bool = False,
        seed: int = 0,
        execution_mode: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan=None,
        verify_commits: bool = False,
        poll_batching: bool = False,
        reaction_engine: Optional[str] = None,
        commit_mode: str = "diff",
        delta_polling: bool = False,
        ctrl_service: bool = False,
        ctrl_window: int = 8,
        timeline_limit: Optional[int] = None,
        commit_pipelining: bool = False,
    ):
        self.artifacts = artifacts
        self.clock = clock or SimClock()
        self.asic = SwitchAsic(
            artifacts.p4,
            clock=self.clock,
            num_ports=num_ports,
            seed=seed,
            execution_mode=execution_mode,
        )
        self.driver = Driver(
            self.asic, model=cost_model, record_timeline=record_timeline,
            retry_policy=retry_policy, timeline_limit=timeline_limit,
        )
        self.fault_injector = None
        if fault_plan is not None:
            from repro.faults import FaultInjector

            self.fault_injector = FaultInjector(fault_plan).attach(self.driver)
        # With the control-plane service enabled, the agent becomes one
        # client session ("mantis" priority, "mantis" channel so the
        # Fig. 12 timeline filter keeps working) and other clients --
        # live legacy controllers, bulk loaders -- can open their own
        # sessions against ``self.ctrl``.
        self.ctrl = None
        agent_driver = self.driver
        if ctrl_service:
            from repro.ctrl import CtrlService

            self.ctrl = CtrlService(self.driver, window=ctrl_window)
            self.agent_session = self.ctrl.open_session(
                "agent", priority="mantis", channel="mantis"
            )
            agent_driver = self.agent_session.driver
        self.agent = MantisAgent(
            artifacts, agent_driver, pacing_sleep_us=pacing_sleep_us,
            verify_commits=verify_commits, poll_batching=poll_batching,
            reaction_engine=reaction_engine, commit_mode=commit_mode,
            delta_polling=delta_polling, commit_pipelining=commit_pipelining,
        )

    def process_batch(self, packets, times=None, sink=None):
        """Burst-mode data plane: run a list of packets through the
        ASIC in one call (see :meth:`SwitchAsic.process_batch`)."""
        return self.asic.process_batch(packets, times=times, sink=sink)

    @classmethod
    def from_source(
        cls,
        source_or_program: Union[str, P4RProgram],
        options: Optional[CompilerOptions] = None,
        **kwargs,
    ) -> "MantisSystem":
        """Compile P4R source (or a parsed program) and build the stack."""
        artifacts = compile_p4r(source_or_program, options)
        return cls(artifacts, **kwargs)

    @property
    def spec(self):
        return self.artifacts.spec
