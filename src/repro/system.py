"""High-level wiring: compile a P4R program and bring up the full
Mantis stack (emulated ASIC + driver + agent) on one shared clock.

This is the reproduction's equivalent of "flash the compiler output
onto the Wedge100BF and start the agent":

    from repro import MantisSystem

    system = MantisSystem.from_source(P4R_SOURCE)
    system.agent.prologue()
    system.asic.process(packet)
    system.agent.run_iteration()
"""

from __future__ import annotations

from typing import Optional, Union

from repro.agent.agent import MantisAgent
from repro.compiler.spec import CompiledArtifacts
from repro.compiler.transform import CompilerOptions, compile_p4r
from repro.p4r.ast import P4RProgram
from repro.switch.asic import SwitchAsic
from repro.switch.clock import SimClock
from repro.switch.driver import Driver, DriverCostModel


class MantisSystem:
    """One switch: compiled artifacts, ASIC, driver, and agent."""

    def __init__(
        self,
        artifacts: CompiledArtifacts,
        clock: Optional[SimClock] = None,
        num_ports: int = 32,
        cost_model: Optional[DriverCostModel] = None,
        pacing_sleep_us: float = 0.0,
        record_timeline: bool = False,
        seed: int = 0,
        execution_mode: Optional[str] = None,
    ):
        self.artifacts = artifacts
        self.clock = clock or SimClock()
        self.asic = SwitchAsic(
            artifacts.p4,
            clock=self.clock,
            num_ports=num_ports,
            seed=seed,
            execution_mode=execution_mode,
        )
        self.driver = Driver(
            self.asic, model=cost_model, record_timeline=record_timeline
        )
        self.agent = MantisAgent(
            artifacts, self.driver, pacing_sleep_us=pacing_sleep_us
        )

    @classmethod
    def from_source(
        cls,
        source_or_program: Union[str, P4RProgram],
        options: Optional[CompilerOptions] = None,
        **kwargs,
    ) -> "MantisSystem":
        """Compile P4R source (or a parsed program) and build the stack."""
        artifacts = compile_p4r(source_or_program, options)
        return cls(artifacts, **kwargs)

    @property
    def spec(self):
        return self.artifacts.spec
