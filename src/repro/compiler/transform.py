"""The Mantis compiler's transformation passes.

Implements Section 4 and Section 5 of the paper:

- malleable values -> ``p4r_meta_`` metadata loaded by an init table
  (Figure 4);
- malleable fields -> alt-selector metadata plus *action
  specialization* (Figures 5 and 6), or the end-of-Section-4.1
  "load in a prior stage" optimization for read-only fields;
- malleable tables -> an appended 1-bit ``vv`` exact match (the
  three-phase update protocol of Section 5.1.2 is driven by the agent);
- measurement collection -> packed 32-bit registers double-buffered on
  ``mv`` for field arguments, and mirrored/timestamped duplicates for
  register arguments (Sections 4.2 and 5.2);
- init tables -> sorted-first-fit packing of all configuration
  parameters, with the first table acting as the atomic serialization
  point (Section 5.1.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.errors import CompileError
from repro.p4 import ast
from repro.p4.printer import print_program
from repro.p4.validate import validate_program
from repro.p4r.ast import P4RProgram
from repro.compiler.packing import first_fit_decreasing
from repro.compiler import spec as cpspec

META_TYPE = "p4r_meta_t_"
META_INSTANCE = "p4r_meta_"

# Primitives whose first argument is written (L-value position).
_WRITE_PRIMITIVES = frozenset(
    {
        "modify_field",
        "add",
        "subtract",
        "bit_and",
        "bit_or",
        "bit_xor",
        "shift_left",
        "shift_right",
        "min",
        "max",
        "add_to_field",
        "subtract_from_field",
        "register_read",
        "modify_field_with_hash_based_offset",
        "modify_field_rng_uniform",
    }
)


@dataclass
class CompilerOptions:
    """Platform parameters and optimization toggles."""

    # Action parameter budget of the init tables (platform dependent;
    # "very large in today's switches" per Section 8.1).
    max_init_action_bits: int = 512
    max_init_action_params: int = 64
    # Width of generated measurement containers.
    container_bits: int = 32
    # Malleable fields forced to the load-in-prior-stage strategy.
    load_fields: FrozenSet[str] = frozenset()
    ingress_control: str = "ingress"
    egress_control: str = "egress"


@dataclass
class _FieldUsage:
    """Where one malleable field is referenced."""

    actions: Set[str] = dataclass_field(default_factory=set)
    written_in: Set[str] = dataclass_field(default_factory=set)
    table_reads: Set[str] = dataclass_field(default_factory=set)
    field_lists: Set[str] = dataclass_field(default_factory=set)
    conditions: bool = False


class MantisCompiler:
    """Compile one P4R program into the paper's artifact pair."""

    def __init__(self, program: P4RProgram, options: Optional[CompilerOptions] = None):
        self.source_program = program
        self.options = options or CompilerOptions()

    # ------------------------------------------------------------------
    # Entry point

    def compile(self) -> cpspec.CompiledArtifacts:
        self.work = self.source_program.clone()
        self.spec = cpspec.ControlPlaneSpec(meta_instance=META_INSTANCE)
        self.meta_fields: Dict[str, int] = {}
        self._measure_counter = 0

        self._analyze_field_usage()
        self._assign_field_strategies()
        self._declare_malleable_meta()
        self._replace_value_refs()
        self._build_load_tables()
        self._specialize_actions()
        self._transform_tables()
        self._generate_measurements()
        self._build_init_tables()
        self._materialize_meta()
        self._insert_applies()
        self._record_reactions()

        plain = self._emit_plain()
        validate_program(plain)
        return cpspec.CompiledArtifacts(
            p4r=self.source_program,
            p4=plain,
            p4_source=print_program(plain),
            spec=self.spec,
        )

    # ------------------------------------------------------------------
    # Analysis

    def _analyze_field_usage(self) -> None:
        self.usage: Dict[str, _FieldUsage] = {
            name: _FieldUsage() for name in self.work.malleable_fields
        }

        def note(name: str) -> Optional[_FieldUsage]:
            return self.usage.get(name)

        for action in self.work.actions.values():
            for call in action.body:
                for position, arg in enumerate(call.args):
                    if isinstance(arg, ast.MalleableRef):
                        usage = note(arg.name)
                        if usage is None:
                            continue
                        usage.actions.add(action.name)
                        if position == 0 and call.name in _WRITE_PRIMITIVES:
                            usage.written_in.add(action.name)
        for table in self.work.tables.values():
            for read in table.reads:
                if isinstance(read.ref, ast.MalleableRef):
                    usage = note(read.ref.name)
                    if usage is not None:
                        usage.table_reads.add(table.name)
        for field_list in self.work.field_lists.values():
            for ref in field_list.entries:
                if isinstance(ref, ast.MalleableRef):
                    usage = note(ref.name)
                    if usage is not None:
                        usage.field_lists.add(field_list.name)
        for control in self.work.controls.values():
            for stmt in ast.walk_statements(control.body):
                if isinstance(stmt, ast.IfBlock):
                    for name in _malleables_in_expr(stmt.cond):
                        usage = note(name)
                        if usage is not None:
                            usage.conditions = True

    def _assign_field_strategies(self) -> None:
        """Pick specialize vs. load per malleable field.

        Load is mandatory for field-list and condition uses (there is
        no table to specialize); it requires the field to be read-only.
        """
        self.field_strategy: Dict[str, str] = {}
        for name, fld in self.work.malleable_fields.items():
            usage = self.usage[name]
            wants_load = (
                name in self.options.load_fields
                or usage.field_lists
                or usage.conditions
            )
            if wants_load and usage.written_in:
                raise CompileError(
                    f"malleable field {name!r} is written in "
                    f"{sorted(usage.written_in)} and cannot use the "
                    "load-in-prior-stage strategy"
                )
            self.field_strategy[name] = "load" if wants_load else "specialize"

    # ------------------------------------------------------------------
    # Metadata and value replacement

    def _declare_malleable_meta(self) -> None:
        for value in self.work.malleable_values.values():
            self._add_meta(value.name, value.width)
        for fld in self.work.malleable_fields.values():
            self._add_meta(f"{fld.name}_alt", fld.selector_width)
            if self.field_strategy[fld.name] == "load":
                self._add_meta(f"{fld.name}_val", fld.width)
        self._add_meta("vv", 1)
        self._add_meta("mv", 1)

    def _add_meta(self, name: str, width: int) -> None:
        if name in self.meta_fields:
            raise CompileError(f"generated metadata field {name!r} collides")
        self.meta_fields[name] = width

    def _meta_ref(self, name: str) -> ast.FieldRef:
        return ast.FieldRef(META_INSTANCE, name)

    def _replace_value_refs(self) -> None:
        """Figure 4: every ``${value}`` becomes a ``p4r_meta_`` field."""
        values = self.work.malleable_values

        def replace(ref):
            if isinstance(ref, ast.MalleableRef) and ref.name in values:
                return self._meta_ref(ref.name)
            return ref

        for action in self.work.actions.values():
            for call in action.body:
                call.args = [replace(a) for a in call.args]
        for field_list in self.work.field_lists.values():
            field_list.entries = [replace(r) for r in field_list.entries]
        for table in self.work.tables.values():
            for read in table.reads:
                if (
                    isinstance(read.ref, ast.MalleableRef)
                    and read.ref.name in values
                ):
                    raise CompileError(
                        f"table {table.name}: cannot match on malleable "
                        f"value {read.ref}"
                    )
        for control in self.work.controls.values():
            for stmt in ast.walk_statements(control.body):
                if isinstance(stmt, ast.IfBlock):
                    stmt.cond = _rewrite_expr(stmt.cond, replace)

    # ------------------------------------------------------------------
    # Load strategy (end-of-Section-4.1 optimization)

    def _build_load_tables(self) -> None:
        self.load_tables: List[str] = []
        load_specs: List[cpspec.LoadTableSpec] = []
        for name, strategy in self.field_strategy.items():
            if strategy != "load":
                continue
            fld = self.work.malleable_fields[name]
            table_name = f"p4r_load_{name}_"
            action_names = []
            for index, alt in enumerate(fld.alts):
                action_name = f"p4r_load_{name}_{index}_"
                self.work.add(
                    ast.ActionDecl(
                        action_name,
                        [],
                        [
                            ast.PrimitiveCall(
                                "modify_field",
                                [self._meta_ref(f"{name}_val"), alt],
                            )
                        ],
                    )
                )
                action_names.append(action_name)
            self.work.add(
                ast.TableDecl(
                    table_name,
                    reads=[
                        ast.TableRead(
                            self._meta_ref(f"{name}_alt"), ast.MatchType.EXACT
                        )
                    ],
                    action_names=action_names,
                    default_action=(action_names[fld.init_index], []),
                    size=len(fld.alts),
                )
            )
            self.load_tables.append(table_name)
            load_specs.append(
                cpspec.LoadTableSpec(table_name, name, action_names)
            )

            # Replace every read use of ${name} with the loaded value.
            replacement = self._meta_ref(f"{name}_val")

            def replace(ref, _name=name, _repl=replacement):
                if isinstance(ref, ast.MalleableRef) and ref.name == _name:
                    return _repl
                return ref

            for action in self.work.actions.values():
                for call in action.body:
                    call.args = [replace(a) for a in call.args]
            for field_list in self.work.field_lists.values():
                field_list.entries = [replace(r) for r in field_list.entries]
            for table in self.work.tables.values():
                for read in table.reads:
                    read.ref = replace(read.ref)
            for control in self.work.controls.values():
                for stmt in ast.walk_statements(control.body):
                    if isinstance(stmt, ast.IfBlock):
                        stmt.cond = _rewrite_expr(stmt.cond, replace)
        self.spec.load_tables = load_specs

    # ------------------------------------------------------------------
    # Action specialization (Figures 5 and 6)

    def _specialize_actions(self) -> None:
        self.action_specs: Dict[str, cpspec.ActionSpecialization] = {}
        for action_name in list(self.work.actions):
            action = self.work.actions[action_name]
            used = _ordered_unique(
                arg.name
                for call in action.body
                for arg in call.args
                if isinstance(arg, ast.MalleableRef)
                and arg.name in self.work.malleable_fields
                and self.field_strategy[arg.name] == "specialize"
            )
            if not used:
                continue
            fields = [self.work.malleable_fields[n] for n in used]
            specialization = cpspec.ActionSpecialization(fields=list(used))
            alt_ranges = [range(len(f.alts)) for f in fields]
            for combo in itertools.product(*alt_ranges):
                suffix = "_".join(str(i) for i in combo)
                variant_name = f"{action_name}_p4r_{suffix}"
                mapping = {
                    fld.name: fld.alts[alt_index]
                    for fld, alt_index in zip(fields, combo)
                }

                def replace(ref, _mapping=mapping):
                    if (
                        isinstance(ref, ast.MalleableRef)
                        and ref.name in _mapping
                    ):
                        return _mapping[ref.name]
                    return ref

                body = [
                    ast.PrimitiveCall(
                        call.name, [replace(a) for a in call.args]
                    )
                    for call in action.body
                ]
                self.work.add(
                    ast.ActionDecl(variant_name, list(action.params), body)
                )
                specialization.variants[
                    ",".join(str(i) for i in combo)
                ] = variant_name
            self.action_specs[action_name] = specialization
            self.work.remove(action)
            # Rewrite the action lists of every table applying it.
            for table in self.work.tables.values():
                if action_name in table.action_names:
                    index = table.action_names.index(action_name)
                    table.action_names[index : index + 1] = list(
                        specialization.variants.values()
                    )
                if (
                    table.default_action is not None
                    and table.default_action[0] == action_name
                ):
                    raise CompileError(
                        f"table {table.name}: default action "
                        f"{action_name!r} uses malleable fields "
                        f"{used}; default actions cannot be specialized"
                    )

    # ------------------------------------------------------------------
    # Table reads transformation + vv

    def _transform_tables(self) -> None:
        for table in self.work.tables.values():
            if table.name.startswith("p4r_load_"):
                continue
            transform = self._transform_one_table(table)
            if transform is not None:
                self.spec.tables[table.name] = transform

    def _transform_one_table(
        self, table: ast.TableDecl
    ) -> Optional[cpspec.TableTransformSpec]:
        # Which specialize-strategy fields appear in this table's reads?
        read_fields: List[str] = []
        for read in table.reads:
            if isinstance(read.ref, ast.MalleableRef):
                name = read.ref.name
                if name not in self.work.malleable_fields:
                    raise CompileError(
                        f"table {table.name}: unknown malleable {read.ref}"
                    )
                read_fields.append(name)
        # Which fields require selector matches due to its actions?
        action_fields = _ordered_unique(
            fld
            for action_name in table.action_names
            for fld in self._specialization_fields(action_name)
        )
        touched = bool(read_fields or action_fields or table.malleable)
        if not touched:
            return None

        transform = cpspec.TableTransformSpec(
            name=table.name, malleable=table.malleable
        )
        new_reads: List[ast.TableRead] = []
        for read in table.reads:
            if isinstance(read.ref, ast.MalleableRef):
                fld = self.work.malleable_fields[read.ref.name]
                match_type = (
                    ast.MatchType.TERNARY
                    if read.match_type is ast.MatchType.EXACT
                    else read.match_type
                )
                positions = []
                for alt in fld.alts:
                    positions.append(len(new_reads))
                    new_reads.append(ast.TableRead(alt, match_type, read.mask))
                transform.reads.append(
                    cpspec.ReadSpec(
                        kind="mbl",
                        match_type=match_type.value,
                        width=fld.width,
                        positions=positions,
                        field_name=fld.name,
                        alt_count=len(fld.alts),
                    )
                )
            else:
                width = (
                    1
                    if read.match_type is ast.MatchType.VALID
                    else self.work.field_width(read.ref)
                )
                transform.reads.append(
                    cpspec.ReadSpec(
                        kind="plain",
                        match_type=read.match_type.value,
                        width=width,
                        positions=[len(new_reads)],
                    )
                )
                new_reads.append(read)

        # Selector reads: first for read-expanded fields, then for
        # action specialization (deduplicated).
        selector_positions: Dict[str, int] = {}
        for name in _ordered_unique(read_fields + action_fields):
            selector_positions[name] = len(new_reads)
            new_reads.append(
                ast.TableRead(
                    self._meta_ref(f"{name}_alt"), ast.MatchType.EXACT
                )
            )
        for read_spec in transform.reads:
            if read_spec.kind == "mbl":
                read_spec.selector_position = selector_positions[
                    read_spec.field_name
                ]
        transform.action_selectors = {
            name: selector_positions[name] for name in action_fields
        }

        if table.malleable:
            transform.vv_position = len(new_reads)
            new_reads.append(
                ast.TableRead(self._meta_ref("vv"), ast.MatchType.EXACT)
            )
            # Shadow copies double the table (Section 8.2 accounting).
            if table.size is not None:
                table.size *= 2

        table.reads = new_reads
        transform.total_key_parts = len(new_reads)
        for action_name, specialization in self.action_specs.items():
            if any(
                variant in table.action_names
                for variant in specialization.variants.values()
            ):
                transform.actions[action_name] = specialization
        return transform

    def _specialization_fields(self, action_name: str) -> List[str]:
        for user_action, specialization in self.action_specs.items():
            if action_name in specialization.variants.values():
                return specialization.fields
        return []

    # ------------------------------------------------------------------
    # Measurements (Sections 4.2 and 5.2)

    def _generate_measurements(self) -> None:
        self.collect_tables: Dict[str, str] = {}  # pipeline -> table name
        mirrored: Set[str] = set()
        for reaction in self.work.reactions.values():
            for pipeline in ("ing", "egr"):
                args = [a for a in reaction.args if a.kind == pipeline]
                if args:
                    self._pack_field_args(reaction.name, pipeline, args)
            for arg in reaction.args:
                if arg.kind == "reg" and arg.ref not in mirrored:
                    self._mirror_register(arg.ref)
                    mirrored.add(arg.ref)
        if self.spec.containers:
            self._add_meta("scratch_", self.options.container_bits)
            self._add_meta("tmp_", self.options.container_bits)
            for pipeline in ("ing", "egr"):
                containers = [
                    c for c in self.spec.containers if c.pipeline == pipeline
                ]
                if containers:
                    self._build_collect_table(pipeline, containers)

    def _pack_field_args(self, reaction: str, pipeline: str, args) -> None:
        sized = [
            (arg, self.work.field_width(arg.ref)) for arg in args
        ]
        for arg, width in sized:
            if width > self.options.container_bits:
                raise CompileError(
                    f"reaction {reaction}: argument {arg.c_name} is wider "
                    f"({width}b) than a measurement container "
                    f"({self.options.container_bits}b)"
                )
        bins = first_fit_decreasing(
            sized, lambda item: item[1], self.options.container_bits
        )
        for packed in bins:
            register_name = f"p4r_measure_{self._measure_counter}_"
            self._measure_counter += 1
            self.work.add(
                ast.RegisterDecl(register_name, self.options.container_bits, 2)
            )
            container = cpspec.MeasureContainer(register_name, pipeline)
            shift = 0
            for arg, width in packed:
                container.slots.append(
                    cpspec.FieldSlot(
                        c_name=arg.c_name,
                        ref=str(arg.ref),
                        width=width,
                        shift=shift,
                        reaction=reaction,
                    )
                )
                shift += width
            self.spec.containers.append(container)

    def _build_collect_table(
        self, pipeline: str, containers: List[cpspec.MeasureContainer]
    ) -> None:
        action_name = f"p4r_collect_{pipeline}_action_"
        body: List[ast.PrimitiveCall] = []
        mv = self._meta_ref("mv")
        for container in containers:
            if len(container.slots) == 1 and container.slots[0].shift == 0:
                ref = _parse_ref(container.slots[0].ref)
                body.append(
                    ast.PrimitiveCall(
                        "register_write", [container.register, mv, ref]
                    )
                )
                continue
            scratch = self._meta_ref("scratch_")
            tmp = self._meta_ref("tmp_")
            body.append(ast.PrimitiveCall("modify_field", [scratch, 0]))
            for slot in container.slots:
                ref = _parse_ref(slot.ref)
                if slot.shift == 0:
                    body.append(
                        ast.PrimitiveCall("bit_or", [scratch, scratch, ref])
                    )
                else:
                    body.append(
                        ast.PrimitiveCall(
                            "shift_left", [tmp, ref, slot.shift]
                        )
                    )
                    body.append(
                        ast.PrimitiveCall("bit_or", [scratch, scratch, tmp])
                    )
            body.append(
                ast.PrimitiveCall(
                    "register_write", [container.register, mv, scratch]
                )
            )
        self.work.add(ast.ActionDecl(action_name, [], body))
        table_name = f"p4r_collect_{pipeline}_"
        self.work.add(
            ast.TableDecl(
                table_name,
                reads=[],
                action_names=[action_name],
                default_action=(action_name, []),
                size=1,
            )
        )
        self.collect_tables[pipeline] = table_name

    def _mirror_register(self, register_name: str) -> None:
        if register_name not in self.work.registers:
            raise CompileError(f"reaction polls unknown register {register_name!r}")
        original = self.work.registers[register_name]
        padded = 1 << max(0, (original.instance_count - 1).bit_length())
        dup = f"{register_name}_p4r_dup_"
        ts = f"{register_name}_p4r_ts_"
        seq = f"{register_name}_p4r_seq_"
        self.work.add(ast.RegisterDecl(dup, original.width, 2 * padded))
        self.work.add(ast.RegisterDecl(ts, 32, 2 * padded))
        self.work.add(ast.RegisterDecl(seq, 32, padded))
        if "ridx_" not in self.meta_fields:
            self._add_meta("ridx_", 32)
            self._add_meta("rseq_", 32)
        ridx = self._meta_ref("ridx_")
        rseq = self._meta_ref("rseq_")
        mv = self._meta_ref("mv")
        log2 = padded.bit_length() - 1

        reads_original = False
        for action in self.work.actions.values():
            new_body: List[ast.PrimitiveCall] = []
            for call in action.body:
                if (
                    call.name == "register_read"
                    and call.args[1] == register_name
                ):
                    reads_original = True
                if not (
                    call.name == "register_write"
                    and call.args[0] == register_name
                ):
                    new_body.append(call)
                    continue
                index_arg, value_arg = call.args[1], call.args[2]
                new_body.append(call)  # original write (maybe elided later)
                new_body.extend(
                    [
                        ast.PrimitiveCall("shift_left", [ridx, mv, log2]),
                        ast.PrimitiveCall("bit_or", [ridx, ridx, index_arg]),
                        ast.PrimitiveCall(
                            "register_write", [dup, ridx, value_arg]
                        ),
                        ast.PrimitiveCall(
                            "register_read", [rseq, seq, index_arg]
                        ),
                        ast.PrimitiveCall("add_to_field", [rseq, 1]),
                        ast.PrimitiveCall(
                            "register_write", [seq, index_arg, rseq]
                        ),
                        ast.PrimitiveCall("register_write", [ts, ridx, rseq]),
                    ]
                )
            action.body = new_body

        eliminated = False
        if not reads_original:
            # Section 5.2 optimization: the original register is never
            # read in the data plane, so it can be eliminated.
            eliminated = True
            for action in self.work.actions.values():
                action.body = [
                    call
                    for call in action.body
                    if not (
                        call.name == "register_write"
                        and call.args[0] == register_name
                    )
                ]
            self.work.remove(original)

        self.spec.mirrors[register_name] = cpspec.RegisterMirror(
            original=register_name,
            duplicate=dup,
            ts=ts,
            seq=seq,
            count=original.instance_count,
            padded_count=padded,
            width=original.width,
            original_eliminated=eliminated,
        )

    # ------------------------------------------------------------------
    # Init tables (Section 5.1.1)

    def _build_init_tables(self) -> None:
        params: List[cpspec.InitParam] = []
        for value in self.work.malleable_values.values():
            params.append(
                cpspec.InitParam(
                    value.name, value.width, "value", value.name, value.init
                )
            )
        for fld in self.work.malleable_fields.values():
            params.append(
                cpspec.InitParam(
                    f"{fld.name}_alt",
                    fld.selector_width,
                    "field_alt",
                    fld.name,
                    fld.init_index,
                )
            )
        needs_init = bool(
            params
            or self.spec.containers
            or self.spec.mirrors
            or any(t.malleable for t in self.spec.tables.values())
            or self.work.reactions
        )
        if not needs_init:
            return

        budget = self.options.max_init_action_bits - 2  # vv + mv in bin 0
        bins = first_fit_decreasing(
            params,
            lambda p: p.width,
            budget,
            max_items_per_bin=self.options.max_init_action_params - 2,
        ) or [[]]
        version_params = [
            cpspec.InitParam("vv", 1, "vv"),
            cpspec.InitParam("mv", 1, "mv"),
        ]
        bins[0] = version_params + bins[0]

        for bin_index, bin_params in enumerate(bins):
            master = bin_index == 0
            table_name = "p4r_init_" if master else f"p4r_init{bin_index}_"
            action_name = (
                "p4r_init_action_"
                if master
                else f"p4r_init{bin_index}_action_"
            )
            body = [
                ast.PrimitiveCall(
                    "modify_field", [self._meta_ref(param.name), param.name]
                )
                for param in bin_params
            ]
            self.work.add(
                ast.ActionDecl(
                    action_name, [param.name for param in bin_params], body
                )
            )
            reads: List[ast.TableRead] = []
            if not master:
                reads.append(
                    ast.TableRead(self._meta_ref("vv"), ast.MatchType.EXACT)
                )
            default_args = [param.init for param in bin_params]
            self.work.add(
                ast.TableDecl(
                    table_name,
                    reads=reads,
                    action_names=[action_name],
                    default_action=(action_name, default_args),
                    size=1 if master else 2,
                )
            )
            init_spec = cpspec.InitTableSpec(
                table_name, action_name, list(bin_params), master=master
            )
            self.spec.init_tables.append(init_spec)
            for param in bin_params:
                if param.kind == "value":
                    value = self.work.malleable_values[param.malleable]
                    self.spec.values[param.malleable] = cpspec.MalleableValueSpec(
                        param.malleable, value.width, value.init,
                        table_name, param.name,
                    )
                elif param.kind == "field_alt":
                    fld = self.work.malleable_fields[param.malleable]
                    self.spec.fields[param.malleable] = cpspec.MalleableFieldSpec(
                        name=param.malleable,
                        width=fld.width,
                        alts=[str(a) for a in fld.alts],
                        init_index=fld.init_index,
                        selector_width=fld.selector_width,
                        init_table=table_name,
                        param=param.name,
                        strategy=self.field_strategy[param.malleable],
                    )
            if not master:
                # Later init tables are maintained like malleable
                # tables: one entry per vv value (Section 5.1.1).
                self.spec.tables[table_name] = cpspec.TableTransformSpec(
                    name=table_name,
                    malleable=True,
                    reads=[],
                    vv_position=0,
                    total_key_parts=1,
                )

    # ------------------------------------------------------------------
    # Final assembly

    def _materialize_meta(self) -> None:
        if not self.spec.init_tables:
            # Pure P4 program: nothing loads the metadata, so do not
            # emit the (vestigial vv/mv) header at all.
            return
        if not self.meta_fields:
            return
        header_type = ast.HeaderType(
            META_TYPE,
            [ast.FieldDecl(name, width) for name, width in self.meta_fields.items()],
        )
        self.work.add(header_type, front=True)
        instance = ast.HeaderInstance(META_INSTANCE, META_TYPE, is_metadata=True)
        # Insert the instance right after the type (front-inserts reverse).
        self.work.add(instance)
        self.work.declarations.remove(instance)
        self.work.declarations.insert(1, instance)

    def _insert_applies(self) -> None:
        ingress_name = self.options.ingress_control
        if ingress_name not in self.work.controls:
            if self.spec.init_tables:
                raise CompileError(
                    f"program has no {ingress_name!r} control to host the "
                    "init tables"
                )
            return
        ingress = self.work.controls[ingress_name]
        prefix = [
            ast.ApplyCall(init.table) for init in self.spec.init_tables
        ] + [ast.ApplyCall(name) for name in self.load_tables]
        ingress.body[:0] = prefix
        if "ing" in self.collect_tables:
            ingress.body.append(ast.ApplyCall(self.collect_tables["ing"]))
        if "egr" in self.collect_tables:
            egress_name = self.options.egress_control
            if egress_name not in self.work.controls:
                self.work.add(ast.ControlDecl(egress_name, []))
            self.work.controls[egress_name].body.append(
                ast.ApplyCall(self.collect_tables["egr"])
            )

    def _record_reactions(self) -> None:
        for reaction in self.work.reactions.values():
            sources: List[Tuple[str, str]] = []
            for arg in reaction.args:
                if arg.kind in ("ing", "egr"):
                    sources.append(("container", arg.c_name))
                elif arg.kind == "reg":
                    sources.append(("mirror", arg.ref))
                else:
                    sources.append(("mbl", arg.ref))
            self.spec.reactions[reaction.name] = cpspec.ReactionSpec(
                reaction.name, reaction, sources
            )

    def _emit_plain(self) -> ast.Program:
        plain = ast.Program()
        for decl in self.work.declarations:
            if isinstance(decl, ast.TableDecl):
                decl.malleable = False
            plain.add(decl)
        return plain


# ---------------------------------------------------------------------------
# Helpers


def _ordered_unique(items) -> List:
    seen = set()
    out = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out


def _malleables_in_expr(expr) -> List[str]:
    if isinstance(expr, ast.MalleableRef):
        return [expr.name]
    if isinstance(expr, ast.BinOp):
        return _malleables_in_expr(expr.left) + _malleables_in_expr(expr.right)
    return []


def _rewrite_expr(expr, replace):
    if isinstance(expr, ast.MalleableRef):
        return replace(expr)
    if isinstance(expr, ast.BinOp):
        expr.left = _rewrite_expr(expr.left, replace)
        expr.right = _rewrite_expr(expr.right, replace)
    return expr


def _parse_ref(text: str) -> ast.FieldRef:
    header, field_name = text.split(".", 1)
    return ast.FieldRef(header, field_name)


def compile_p4r(
    source_or_program: Union[str, P4RProgram],
    options: Optional[CompilerOptions] = None,
) -> cpspec.CompiledArtifacts:
    """Compile P4R source text (or a parsed program) into the paper's
    artifact pair."""
    if isinstance(source_or_program, str):
        from repro.p4r.parser import parse_p4r

        program = parse_p4r(source_or_program)
    else:
        program = source_or_program
    return MantisCompiler(program, options).compile()
