"""Control-plane specification -- the compiler's second artifact.

The paper's compiler emits C code that knows where every malleable
lives, how to poll every reaction argument, and how to expand entries
of transformed tables.  This reproduction emits the same knowledge as
a structured, JSON-serializable specification which the Mantis agent
interprets.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.p4 import ast
from repro.p4r.ast import P4RProgram, ReactionDecl


@dataclass
class InitParam:
    """One parameter of an init action.

    ``kind`` is ``"value"`` (malleable value), ``"field_alt"`` (alt
    selector of a malleable field), ``"vv"`` or ``"mv"`` (version
    bits).  ``name`` is the ``p4r_meta_`` field the action writes.
    """

    name: str
    width: int
    kind: str
    malleable: str = ""  # owning malleable, for value/field_alt
    init: int = 0


@dataclass
class InitTableSpec:
    """One generated init table.

    The first (``master=True``) table carries vv and mv and is updated
    via its default action -- a single-entry atomic update, the
    serialization point of Section 5.1.1.  Later init tables match on
    vv and are maintained like malleable tables (two entries).
    """

    table: str
    action: str
    params: List[InitParam] = field(default_factory=list)
    master: bool = False

    def param_index(self, name: str) -> int:
        for index, param in enumerate(self.params):
            if param.name == name:
                return index
        raise KeyError(f"init table {self.table} has no param {name!r}")


@dataclass
class FieldSlot:
    """Placement of one ing/egr reaction argument inside a packed
    32-bit measurement container."""

    c_name: str
    ref: str  # "instance.field"
    width: int
    shift: int
    reaction: str


@dataclass
class MeasureContainer:
    """One generated measurement register (2 entries, indexed by mv)."""

    register: str
    pipeline: str  # "ing" | "egr"
    slots: List[FieldSlot] = field(default_factory=list)

    def used_bits(self) -> int:
        return sum(slot.width for slot in self.slots)


@dataclass
class RegisterMirror:
    """Double-buffered mirror of a user register (Section 5.2).

    The duplicate has ``2 * padded_count`` entries indexed by
    ``mv * padded_count + original_index``; ``ts`` carries a per-write
    sequence number so the agent's cache can reject stale checkpoint
    values; ``seq`` is the data-plane-side sequence counter.
    """

    original: str
    duplicate: str
    ts: str
    seq: str
    count: int
    padded_count: int
    width: int
    original_eliminated: bool = False


@dataclass
class ReadSpec:
    """How one *user-level* read of a transformed table maps onto the
    compiled table's key positions.

    ``kind == "plain"``: one position, unchanged semantics.
    ``kind == "mbl"``: the user key part fans out over ``positions``
    (one per alt) plus a selector position.
    """

    kind: str
    match_type: str
    width: int
    positions: List[int] = field(default_factory=list)
    field_name: str = ""  # malleable field, for kind == "mbl"
    alt_count: int = 0
    selector_position: int = -1


@dataclass
class ActionSpecialization:
    """Map from a user action to its per-alt-combination variants."""

    fields: List[str] = field(default_factory=list)  # mbl field names, in order
    # keys are comma-joined alt indices ("0,1"), JSON-friendly
    variants: Dict[str, str] = field(default_factory=dict)

    def variant(self, alt_indices: Tuple[int, ...]) -> str:
        return self.variants[",".join(str(i) for i in alt_indices)]


@dataclass
class TableTransformSpec:
    """Everything the agent needs to drive one transformed table."""

    name: str
    malleable: bool
    reads: List[ReadSpec] = field(default_factory=list)
    # selector reads appended for action specialization:
    # field name -> key position
    action_selectors: Dict[str, int] = field(default_factory=dict)
    vv_position: int = -1  # -1 when the table has no vv read
    actions: Dict[str, ActionSpecialization] = field(default_factory=dict)
    total_key_parts: int = 0


@dataclass
class MalleableValueSpec:
    name: str
    width: int
    init: int
    init_table: str
    param: str


@dataclass
class MalleableFieldSpec:
    name: str
    width: int
    alts: List[str] = field(default_factory=list)
    init_index: int = 0
    selector_width: int = 1
    init_table: str = ""
    param: str = ""
    strategy: str = "specialize"  # or "load"


@dataclass
class LoadTableSpec:
    """A generated load table (the end-of-Section-4.1 optimization):
    one entry per alternative, installed once in the prologue."""

    table: str
    field_name: str
    actions: List[str] = field(default_factory=list)


@dataclass
class ControlPlaneSpec:
    """The complete control-plane artifact."""

    init_tables: List[InitTableSpec] = field(default_factory=list)
    load_tables: List[LoadTableSpec] = field(default_factory=list)
    values: Dict[str, MalleableValueSpec] = field(default_factory=dict)
    fields: Dict[str, MalleableFieldSpec] = field(default_factory=dict)
    tables: Dict[str, TableTransformSpec] = field(default_factory=dict)
    containers: List[MeasureContainer] = field(default_factory=list)
    mirrors: Dict[str, RegisterMirror] = field(default_factory=dict)
    reactions: Dict[str, "ReactionSpec"] = field(default_factory=dict)
    meta_instance: str = "p4r_meta_"

    @property
    def master_init(self) -> InitTableSpec:
        for init in self.init_tables:
            if init.master:
                return init
        raise KeyError("spec has no master init table")

    def container_for(self, reaction: str, c_name: str):
        """Locate the (container, slot) holding a field argument."""
        for container in self.containers:
            for slot in container.slots:
                if slot.reaction == reaction and slot.c_name == c_name:
                    return container, slot
        raise KeyError(f"no container slot for {reaction}/{c_name}")

    def to_dict(self) -> dict:
        """JSON-serializable form (written next to the emitted P4)."""
        return asdict(self)


@dataclass
class ReactionSpec:
    """One reaction, with arguments resolved to polling locations."""

    name: str
    decl: ReactionDecl
    # per-arg: ("container", c_name) / ("mirror", reg name) / ("mbl", name)
    arg_sources: List[Tuple[str, str]] = field(default_factory=list)


@dataclass
class CompiledArtifacts:
    """The compiler's output bundle."""

    p4r: P4RProgram
    p4: ast.Program
    p4_source: str
    spec: ControlPlaneSpec
