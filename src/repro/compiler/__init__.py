"""The Mantis compiler.

Transforms a P4R program into the paper's pair of artifacts:

1. a valid, *malleable* P4-14 program (Section 4.1's transformations
   plus the Section 5 isolation instrumentation), and
2. a :class:`~repro.compiler.spec.ControlPlaneSpec` -- the structured
   equivalent of the generated C code: where every malleable lives in
   the init tables, how measurement registers are packed, how malleable
   tables were expanded, and the reaction definitions themselves.

Entry point: :func:`compile_p4r`.
"""

from repro.compiler.packing import first_fit_decreasing
from repro.compiler.spec import (
    CompiledArtifacts,
    ControlPlaneSpec,
    FieldSlot,
    InitParam,
    InitTableSpec,
    MeasureContainer,
    RegisterMirror,
    TableTransformSpec,
)
from repro.compiler.transform import CompilerOptions, MantisCompiler, compile_p4r

__all__ = [
    "CompiledArtifacts",
    "CompilerOptions",
    "ControlPlaneSpec",
    "FieldSlot",
    "InitParam",
    "InitTableSpec",
    "MantisCompiler",
    "MeasureContainer",
    "RegisterMirror",
    "TableTransformSpec",
    "compile_p4r",
    "first_fit_decreasing",
]
