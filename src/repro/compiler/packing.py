"""Sorted-first-fit bin packing.

Section 4.1: "Mantis solves this with a simple greedy algorithm in
which it sorts the parameters in order of decreasing size and finds the
'first fit'."  Used twice by the compiler:

- packing malleable-entity parameters into init actions (bounded by
  the platform's action-parameter budget), and
- packing header/metadata reaction parameters into 32-bit measurement
  registers.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

Item = TypeVar("Item")


def first_fit_decreasing(
    items: Sequence[Item],
    size_of: Callable[[Item], int],
    bin_capacity: int,
    max_items_per_bin: int = 0,
) -> List[List[Item]]:
    """Pack ``items`` into bins of ``bin_capacity`` using sorted
    first-fit.  ``max_items_per_bin`` of 0 means unlimited.

    Items larger than the capacity raise ``ValueError`` -- callers are
    expected to have validated widths already.

    The sort is stable on the original order so equal-sized parameters
    keep their declaration order (deterministic output matters for
    golden-file tests of the emitted P4).
    """
    for item in items:
        if size_of(item) > bin_capacity:
            raise ValueError(
                f"item {item!r} of size {size_of(item)} exceeds bin "
                f"capacity {bin_capacity}"
            )
    order = sorted(range(len(items)), key=lambda i: -size_of(items[i]))
    bins: List[List[Item]] = []
    loads: List[int] = []
    for index in order:
        item = items[index]
        size = size_of(item)
        placed = False
        for bin_index, load in enumerate(loads):
            if load + size > bin_capacity:
                continue
            if max_items_per_bin and len(bins[bin_index]) >= max_items_per_bin:
                continue
            bins[bin_index].append(item)
            loads[bin_index] += size
            placed = True
            break
        if not placed:
            bins.append([item])
            loads.append(size)
    return bins


def naive_one_per_bin(items: Sequence[Item]) -> List[List[Item]]:
    """Strawman packing (one item per bin), used by the packing
    ablation benchmark to quantify what first-fit-decreasing saves."""
    return [[item] for item in items]


def pack_stats(
    bins: Sequence[Sequence[Item]],
    size_of: Callable[[Item], int],
    bin_capacity: int,
) -> Tuple[int, float]:
    """Return ``(bin_count, utilization)`` for a packing."""
    if not bins:
        return 0, 0.0
    used = sum(size_of(item) for bin_ in bins for item in bin_)
    return len(bins), used / (len(bins) * bin_capacity)
