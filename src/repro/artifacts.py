"""Saving and loading compiled artifacts.

The paper's compiler writes a ``.p4`` file and builds the reaction C
into a shared object.  This reproduction's equivalent bundle is:

- ``<name>.p4``        -- the malleable P4-14 program (printable text);
- ``<name>.spec.json`` -- the control-plane specification;
- ``<name>.p4r``       -- the original source (for provenance).

``save_artifacts`` writes the bundle; ``load_artifacts`` reconstructs
a full :class:`~repro.compiler.spec.CompiledArtifacts` by re-compiling
the stored P4R source and verifying the outputs match the stored ones
(the spec JSON alone is not round-trippable because it embeds live
reaction declarations; recompiling the P4R is both simpler and safer).
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.compiler.spec import CompiledArtifacts
from repro.compiler.transform import CompilerOptions, compile_p4r
from repro.errors import CompileError


def save_artifacts(
    artifacts: CompiledArtifacts,
    directory: str,
    name: str = "program",
    p4r_source: Optional[str] = None,
) -> dict:
    """Write the artifact bundle; returns the written paths."""
    os.makedirs(directory, exist_ok=True)
    paths = {
        "p4": os.path.join(directory, f"{name}.p4"),
        "spec": os.path.join(directory, f"{name}.spec.json"),
    }
    with open(paths["p4"], "w") as handle:
        handle.write(artifacts.p4_source)
    with open(paths["spec"], "w") as handle:
        json.dump(artifacts.spec.to_dict(), handle, indent=2, default=str)
    if p4r_source is not None:
        paths["p4r"] = os.path.join(directory, f"{name}.p4r")
        with open(paths["p4r"], "w") as handle:
            handle.write(p4r_source)
    return paths


def load_artifacts(
    directory: str,
    name: str = "program",
    options: Optional[CompilerOptions] = None,
) -> CompiledArtifacts:
    """Rebuild artifacts from a saved bundle (requires the ``.p4r``)."""
    p4r_path = os.path.join(directory, f"{name}.p4r")
    if not os.path.exists(p4r_path):
        raise CompileError(
            f"no {name}.p4r in {directory}; artifacts are rebuilt from "
            "the stored P4R source"
        )
    with open(p4r_path) as handle:
        source = handle.read()
    artifacts = compile_p4r(source, options)
    stored_p4 = os.path.join(directory, f"{name}.p4")
    if os.path.exists(stored_p4):
        with open(stored_p4) as handle:
            if handle.read() != artifacts.p4_source:
                raise CompileError(
                    f"stored {name}.p4 does not match a fresh compile; "
                    "the bundle was produced by a different compiler "
                    "version or options"
                )
    return artifacts
