"""Fast-path speedup benchmark: interpreter vs compiled pipeline.

Drives the Figure 15 DoS data-plane workload (blocklist -> accounting
with register read-modify-write -> exact-match routing, compiled from
``DOS_P4R`` by the Mantis compiler) through ``SwitchAsic.process`` in
both execution modes and reports packets/sec for each.  Shared by
``benchmarks/test_fastpath_speedup.py`` and the
``python -m repro.cli bench-fastpath`` tier-2 target so the speedup is
tracked as one JSON artifact across PRs.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from repro.apps.dos import DOS_P4R, DosMitigationApp
from repro.switch.packet import Packet, PacketPool, PacketTemplate
from repro.system import MantisSystem

DST_ADDR = 0x0A00FFFF
ATTACKER_ADDR = 0x0AFF0001
DST_PORT = 1
DEFAULT_BATCH_SIZE = 256


def build_dos_system(
    execution_mode: str, n_benign: int = 12
) -> DosMitigationApp:
    """The Figure 15 switch, ready to forward: Mantis prologue done
    (init/measurement tables installed) and the victim route in place."""
    system = MantisSystem.from_source(
        DOS_P4R, num_ports=n_benign + 8, execution_mode=execution_mode
    )
    app = DosMitigationApp(
        system=system, threshold_gbps=2.0, min_duration_us=100.0
    )
    app.prologue()
    app.add_route(DST_ADDR, DST_PORT)
    return app


def make_workload(n_packets: int, n_benign: int = 12) -> List[Dict[str, int]]:
    """Field maps for the DoS packet mix: alternating attacker floods
    and benign senders, all toward the common victim."""
    workload = []
    for index in range(n_packets):
        if index % 2:
            src = ATTACKER_ADDR
        else:
            src = 0x0A000001 + (index // 2) % n_benign
        workload.append(
            {
                "ipv4.srcAddr": src,
                "ipv4.dstAddr": DST_ADDR,
                "ipv4.proto": 17 if index % 2 else 6,
                "tcp.seq": index,
            }
        )
    return workload


def measure_mode(
    execution_mode: str,
    workload: List[Dict[str, int]],
    warmup: int = 200,
) -> Dict[str, float]:
    """Pump the workload through one freshly built switch; returns
    packets/sec and elapsed wall-clock seconds."""
    app = build_dos_system(execution_mode)
    process = app.system.asic.process
    # Packet.__init__ copies the field map; no defensive dict() needed.
    for fields in workload[:warmup]:
        process(Packet(fields=fields, size_bytes=1500))
    start = time.perf_counter()
    for fields in workload:
        process(Packet(fields=fields, size_bytes=1500))
    elapsed = time.perf_counter() - start
    return {
        "packets_per_sec": len(workload) / elapsed if elapsed else float("inf"),
        "elapsed_sec": elapsed,
    }


def measure_batch_mode(
    workload: List[Dict[str, int]],
    batch_size: int = DEFAULT_BATCH_SIZE,
    warmup: int = 200,
) -> Dict[str, float]:
    """Pump the workload through ``SwitchAsic.process_batch`` on the
    compiled engine, ``batch_size`` packets per call, reusing pooled
    packets (the burst-mode fast path)."""
    app = build_dos_system("compiled")
    process_batch = app.system.asic.process_batch
    templates = [
        PacketTemplate(fields, size_bytes=1500) for fields in workload
    ]
    pool = PacketPool(batch_size)
    for start in range(0, min(warmup, len(templates)), batch_size):
        process_batch(pool.take(templates[start:start + batch_size]))
    begin = time.perf_counter()
    for start in range(0, len(templates), batch_size):
        process_batch(pool.take(templates[start:start + batch_size]))
    elapsed = time.perf_counter() - begin
    return {
        "packets_per_sec": len(workload) / elapsed if elapsed else float("inf"),
        "elapsed_sec": elapsed,
    }


def profile_fastpath(
    n_packets: int = 2_000, iterations: int = 50
) -> Dict[str, object]:
    """Hot-loop counters for both halves of the dialogue.

    Data plane: rebuild the compiled engine with per-control /
    per-table / per-action counters (:meth:`SwitchAsic.enable_profiling`
    -- batch plans are disabled under profiling, so counts reflect the
    instrumented scalar closures) and pump the workload.  Control
    plane: run dialogue iterations and report the agent's cumulative
    per-phase time split (mv_flip / poll / react / commit)."""
    app = build_dos_system("compiled")
    profile = app.system.asic.enable_profiling()
    process = app.system.asic.process
    for fields in make_workload(n_packets):
        process(Packet(fields=fields, size_bytes=1500))
    agent = app.system.agent
    # The dialogue loop runs as a scheduled actor with an iteration
    # budget: the runtime drives it to quiescence, same code path as a
    # fabric run.
    from repro.runtime import AgentActor, Scheduler

    scheduler = Scheduler(clock=app.system.clock)
    scheduler.spawn(AgentActor(agent, max_iterations=iterations))
    scheduler.run_until()
    return {
        "data_plane": profile.snapshot(),
        "agent_phases_us": {
            phase: round(total, 3)
            for phase, total in agent.phase_totals.items()
        },
    }


def run_fastpath_benchmark(
    n_packets: int = 20_000,
    json_path: Optional[str] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    profile: bool = False,
) -> Dict[str, object]:
    """Measure all three paths (interpreter, compiled per-packet,
    compiled batch) on the same workload; optionally persist the JSON
    artifact.  Returns the result payload."""
    workload = make_workload(n_packets)
    interpreter = measure_mode("interpreter", workload)
    compiled = measure_mode("compiled", workload)
    batch = measure_batch_mode(workload, batch_size=batch_size)
    speedup = (
        compiled["packets_per_sec"] / interpreter["packets_per_sec"]
        if interpreter["packets_per_sec"]
        else float("inf")
    )
    batch_speedup = (
        batch["packets_per_sec"] / compiled["packets_per_sec"]
        if compiled["packets_per_sec"]
        else float("inf")
    )
    payload: Dict[str, object] = {
        "workload": "figure15-dos",
        "packets": n_packets,
        "batch_size": batch_size,
        "interpreter_pps": round(interpreter["packets_per_sec"], 1),
        "compiled_pps": round(compiled["packets_per_sec"], 1),
        "batch_pps": round(batch["packets_per_sec"], 1),
        "interpreter_elapsed_sec": round(interpreter["elapsed_sec"], 6),
        "compiled_elapsed_sec": round(compiled["elapsed_sec"], 6),
        "batch_elapsed_sec": round(batch["elapsed_sec"], 6),
        "speedup": round(speedup, 3),
        "batch_speedup_vs_compiled": round(batch_speedup, 3),
    }
    if profile:
        payload["profile"] = profile_fastpath()
    if json_path:
        write_json(json_path, payload)
    return payload


def write_json(path: str, payload: Dict[str, object]) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
