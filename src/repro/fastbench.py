"""Fast-path speedup benchmark: interpreter vs compiled pipeline.

Drives the Figure 15 DoS data-plane workload (blocklist -> accounting
with register read-modify-write -> exact-match routing, compiled from
``DOS_P4R`` by the Mantis compiler) through ``SwitchAsic.process`` in
both execution modes and reports packets/sec for each.  Shared by
``benchmarks/test_fastpath_speedup.py`` and the
``python -m repro.cli bench-fastpath`` tier-2 target so the speedup is
tracked as one JSON artifact across PRs.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from repro.apps.dos import DOS_P4R, DosMitigationApp
from repro.apps.ecmp import ECMP_P4R, HashPolarizationApp
from repro.switch.columnar import ColumnarPool
from repro.switch.packet import Packet, PacketPool, PacketTemplate
from repro.system import MantisSystem

DST_ADDR = 0x0A00FFFF
ATTACKER_ADDR = 0x0AFF0001
DST_PORT = 1
DEFAULT_BATCH_SIZE = 256
COLUMNAR_SWEEP_SIZES = (256, 1024, 4096)

#: Fallback reasons the DoS columnar run is allowed to report.  The
#: Figure 15 ingress is fully vectorizable, so the set is empty; any
#: entry means a lowering regression and the bench run fails loudly
#: rather than silently timing the scalar drain.
DOS_EXPECTED_FALLBACKS: frozenset = frozenset()


def build_dos_system(
    execution_mode: str, n_benign: int = 12
) -> DosMitigationApp:
    """The Figure 15 switch, ready to forward: Mantis prologue done
    (init/measurement tables installed) and the victim route in place."""
    system = MantisSystem.from_source(
        DOS_P4R, num_ports=n_benign + 8, execution_mode=execution_mode
    )
    app = DosMitigationApp(
        system=system, threshold_gbps=2.0, min_duration_us=100.0
    )
    app.prologue()
    app.add_route(DST_ADDR, DST_PORT)
    return app


def build_ecmp_system(execution_mode: str) -> HashPolarizationApp:
    """The Section 8.3.3 ECMP switch: crc16 over two malleable hash
    inputs picks a bucket, an exact match forwards it, and the egress
    counter does a dynamic-index register read-modify-write -- the
    workload that exercises the vectorized hash + 'g'-kind lowering."""
    system = MantisSystem.from_source(
        ECMP_P4R, num_ports=16, execution_mode=execution_mode
    )
    app = HashPolarizationApp(system=system)
    app.prologue()
    return app


def make_ecmp_workload(n_packets: int) -> List[Dict[str, int]]:
    """Field maps for the ECMP mix: flows with rotating addresses and
    ports so the crc16 buckets actually spread across paths."""
    workload = []
    for index in range(n_packets):
        workload.append(
            {
                "ipv4.srcAddr": 0x0A000001 + (index * 7919) % 65536,
                "ipv4.dstAddr": 0x0B000001 + index % 251,
                "ipv4.proto": 6,
                "l4.sport": 1000 + (index * 13) % 50000,
                "l4.dport": 443,
            }
        )
    return workload


def make_workload(n_packets: int, n_benign: int = 12) -> List[Dict[str, int]]:
    """Field maps for the DoS packet mix: alternating attacker floods
    and benign senders, all toward the common victim."""
    workload = []
    for index in range(n_packets):
        if index % 2:
            src = ATTACKER_ADDR
        else:
            src = 0x0A000001 + (index // 2) % n_benign
        workload.append(
            {
                "ipv4.srcAddr": src,
                "ipv4.dstAddr": DST_ADDR,
                "ipv4.proto": 17 if index % 2 else 6,
                "tcp.seq": index,
            }
        )
    return workload


def measure_mode(
    execution_mode: str,
    workload: List[Dict[str, int]],
    warmup: int = 200,
) -> Dict[str, float]:
    """Pump the workload through one freshly built switch; returns
    packets/sec and elapsed wall-clock seconds."""
    app = build_dos_system(execution_mode)
    process = app.system.asic.process
    # Packet.__init__ copies the field map; no defensive dict() needed.
    for fields in workload[:warmup]:
        process(Packet(fields=fields, size_bytes=1500))
    start = time.perf_counter()
    for fields in workload:
        process(Packet(fields=fields, size_bytes=1500))
    elapsed = time.perf_counter() - start
    return {
        "packets_per_sec": len(workload) / elapsed if elapsed else float("inf"),
        "elapsed_sec": elapsed,
    }


def measure_batch_mode(
    workload: List[Dict[str, int]],
    batch_size: int = DEFAULT_BATCH_SIZE,
    warmup: int = 200,
    builder=build_dos_system,
) -> Dict[str, float]:
    """Pump the workload through ``SwitchAsic.process_batch`` on the
    compiled engine, ``batch_size`` packets per call, reusing pooled
    packets (the burst-mode fast path)."""
    app = builder("compiled")
    process_batch = app.system.asic.process_batch
    templates = [
        PacketTemplate(fields, size_bytes=1500) for fields in workload
    ]
    pool = PacketPool(batch_size)
    for start in range(0, min(warmup, len(templates)), batch_size):
        process_batch(pool.take(templates[start:start + batch_size]))
    begin = time.perf_counter()
    for start in range(0, len(templates), batch_size):
        process_batch(pool.take(templates[start:start + batch_size]))
    elapsed = time.perf_counter() - begin
    return {
        "packets_per_sec": len(workload) / elapsed if elapsed else float("inf"),
        "elapsed_sec": elapsed,
    }


def measure_columnar_mode(
    workload: List[Dict[str, int]],
    batch_size: int = DEFAULT_BATCH_SIZE,
    warmup: int = 200,
    builder=build_dos_system,
) -> Dict[str, object]:
    """Pump the workload through ``SwitchAsic.process_batch_columnar``
    on the columnar engine: templates become a :class:`ColumnarPool`
    (one numpy array per field, built outside the timed region), and
    each timed call slices one struct-of-arrays batch and runs the
    vectorized op-major sweeps with no Packet materialization."""
    app = builder("columnar")
    asic = app.system.asic
    process = asic.process_batch_columnar
    templates = [
        PacketTemplate(fields, size_bytes=1500) for fields in workload
    ]
    pool = ColumnarPool(templates)
    for start in range(0, min(warmup, len(templates)), batch_size):
        process(pool.batch(start, start + batch_size))
    begin = time.perf_counter()
    for start in range(0, len(templates), batch_size):
        process(pool.batch(start, start + batch_size))
    elapsed = time.perf_counter() - begin
    return {
        "packets_per_sec": len(workload) / elapsed if elapsed else float("inf"),
        "elapsed_sec": elapsed,
        "fallbacks": dict(asic.executor.fallback_counts),
    }


def profile_fastpath(
    n_packets: int = 2_000, iterations: int = 50
) -> Dict[str, object]:
    """Hot-loop counters for both halves of the dialogue.

    Data plane: rebuild the compiled engine with per-control /
    per-table / per-action counters (:meth:`SwitchAsic.enable_profiling`
    -- batch plans are disabled under profiling, so counts reflect the
    instrumented scalar closures) and pump the workload.  Control
    plane: run dialogue iterations and report the agent's cumulative
    per-phase time split (mv_flip / poll / react / commit)."""
    app = build_dos_system("compiled")
    profile = app.system.asic.enable_profiling()
    process = app.system.asic.process
    for fields in make_workload(n_packets):
        process(Packet(fields=fields, size_bytes=1500))
    agent = app.system.agent
    # The dialogue loop runs as a scheduled actor with an iteration
    # budget: the runtime drives it to quiescence, same code path as a
    # fabric run.
    from repro.runtime import AgentActor, Scheduler

    scheduler = Scheduler(clock=app.system.clock)
    scheduler.spawn(AgentActor(agent, max_iterations=iterations))
    scheduler.run_until()
    return {
        "data_plane": profile.snapshot(),
        "agent_phases_us": {
            phase: round(total, 3)
            for phase, total in agent.phase_totals.items()
        },
    }


def run_fastpath_benchmark(
    n_packets: int = 20_000,
    json_path: Optional[str] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    profile: bool = False,
    engine: str = "all",
) -> Dict[str, object]:
    """Measure all four paths (interpreter, compiled per-packet,
    compiled batch, columnar) on the same workload; optionally persist
    the JSON artifact.  The columnar engine runs a batch-size sweep
    (``COLUMNAR_SWEEP_SIZES`` capped at the workload size) and reports
    the best point as ``columnar_pps``.  ``engine="columnar"`` skips
    the per-packet engines and measures only the batch baseline plus
    the columnar sweep (the quick-iteration path; the full artifact
    needs ``engine="all"``).  Returns the result payload."""
    if engine not in ("all", "columnar"):
        raise ValueError(f"unknown engine {engine!r}")
    workload = make_workload(n_packets)
    full = engine == "all"
    if full:
        interpreter = measure_mode("interpreter", workload)
        compiled = measure_mode("compiled", workload)
    sweep_sizes = sorted(
        {min(size, max(n_packets, 1)) for size in COLUMNAR_SWEEP_SIZES}
    )

    def sweep(packets, builder):
        """Batch baseline plus the columnar batch-size sweep for one
        workload; returns (batch, best columnar, sweep dict, speedup)."""
        base = measure_batch_mode(
            packets, batch_size=batch_size, builder=builder
        )
        by_size = {
            size: measure_columnar_mode(
                packets, batch_size=size, builder=builder
            )
            for size in sweep_sizes
        }
        best = max(by_size.values(), key=lambda r: r["packets_per_sec"])
        ratio = (
            best["packets_per_sec"] / base["packets_per_sec"]
            if base["packets_per_sec"]
            else float("inf")
        )
        return base, best, by_size, ratio

    batch, columnar, columnar_sweep, columnar_speedup = sweep(
        workload, build_dos_system
    )
    unexpected = set(columnar["fallbacks"]) - DOS_EXPECTED_FALLBACKS
    if unexpected:
        raise RuntimeError(
            "unexpected columnar fallbacks on the DoS workload "
            f"(lowering regression): {sorted(unexpected)} "
            f"-> {columnar['fallbacks']}"
        )
    ecmp_workload = make_ecmp_workload(n_packets)
    ecmp_batch, ecmp_columnar, _, ecmp_speedup = sweep(
        ecmp_workload, build_ecmp_system
    )
    payload: Dict[str, object] = {
        "workload": "figure15-dos",
        "packets": n_packets,
        "batch_size": batch_size,
        "batch_pps": round(batch["packets_per_sec"], 1),
        "columnar_pps": round(columnar["packets_per_sec"], 1),
        "columnar_pps_by_batch": {
            str(size): round(result["packets_per_sec"], 1)
            for size, result in columnar_sweep.items()
        },
        "columnar_fallbacks": columnar["fallbacks"],
        "batch_elapsed_sec": round(batch["elapsed_sec"], 6),
        "columnar_elapsed_sec": round(columnar["elapsed_sec"], 6),
        "columnar_speedup_vs_batch": round(columnar_speedup, 3),
        "ecmp_batch_pps": round(ecmp_batch["packets_per_sec"], 1),
        "ecmp_columnar_pps": round(ecmp_columnar["packets_per_sec"], 1),
        "ecmp_columnar_speedup_vs_batch": round(ecmp_speedup, 3),
        "fallbacks_by_workload": {
            "figure15-dos": columnar["fallbacks"],
            "ecmp-rotating-hash": ecmp_columnar["fallbacks"],
        },
    }
    if full:
        speedup = (
            compiled["packets_per_sec"] / interpreter["packets_per_sec"]
            if interpreter["packets_per_sec"]
            else float("inf")
        )
        batch_speedup = (
            batch["packets_per_sec"] / compiled["packets_per_sec"]
            if compiled["packets_per_sec"]
            else float("inf")
        )
        payload.update(
            interpreter_pps=round(interpreter["packets_per_sec"], 1),
            compiled_pps=round(compiled["packets_per_sec"], 1),
            interpreter_elapsed_sec=round(interpreter["elapsed_sec"], 6),
            compiled_elapsed_sec=round(compiled["elapsed_sec"], 6),
            speedup=round(speedup, 3),
            batch_speedup_vs_compiled=round(batch_speedup, 3),
        )
    if profile:
        payload["profile"] = profile_fastpath()
    if json_path:
        write_json(json_path, payload)
    return payload


# ---------------------------------------------------------------------------
# Control-plane (agent) benchmark: compiled vs interpreted reactions,
# dirty-diff vs full commits, delta polling (ISSUE 5).

AGENT_DOS_REACTION_BODY = """
    static uint32_t prev_total;
    static uint32_t srcs[64];
    static uint32_t counts[64];
    uint32_t total = total_bytes[0];
    uint32_t src = ipv4_srcAddr;
    uint32_t marginal = (total - prev_total) & 4294967295;
    prev_total = total;
    if (src != 0 && marginal != 0) {
        int slot = 0 - 1;
        for (int i = 0; i < 64; i++) {
            if (srcs[i] == src || srcs[i] == 0) { slot = i; break; }
        }
        if (slot >= 0) {
            srcs[slot] = src;
            counts[slot] = counts[slot] + marginal;
        }
    }
    uint32_t peak = 0;
    uint32_t peak_src = 0;
    for (int i = 0; i < 64; i++) {
        if (counts[i] > peak) { peak = counts[i]; peak_src = srcs[i]; }
    }
    ${hot_src} = peak_src;
    ${hot_bytes} = peak;
    if (peak > ${threshold} && ${blocked} == 0) {
        blocklist.addEntry(peak_src, "block");
        ${blocked} = 1;
    }
    return peak;
"""

# The Figure 15 DoS program with the estimate-and-block reaction as an
# actual C body (the host-Python variant lives in repro.apps.dos): the
# reaction engines must run real creaction code for the comparison to
# mean anything.  ``hot_src``/``hot_bytes``/``blocked`` are malleable
# outputs; ``threshold`` is a malleable input (bytes before blocking).
AGENT_DOS_P4R = """
header_type standard_metadata_t {
    fields { egress_spec : 9; packet_length : 32; }
}
metadata standard_metadata_t standard_metadata;
header_type ipv4_t {
    fields { srcAddr : 32; dstAddr : 32; proto : 8; }
}
header ipv4_t ipv4;
header_type acct_t { fields { total : 32; } }
metadata acct_t acct;

register total_bytes { width : 32; instance_count : 1; }

malleable value hot_src { width : 32; init : 0; }
malleable value hot_bytes { width : 32; init : 0; }
malleable value blocked { width : 32; init : 0; }
malleable value threshold { width : 32; init : 100000; }

action allow() { no_op(); }
action block() { drop(); }

malleable table blocklist {
    reads { ipv4.srcAddr : exact; }
    actions { allow; block; }
    default_action : allow();
    size : 1024;
}

action account() {
    register_read(acct.total, total_bytes, 0);
    add(acct.total, acct.total, standard_metadata.packet_length);
    register_write(total_bytes, 0, acct.total);
}
table accounting {
    actions { account; }
    default_action : account();
}

control ingress {
    apply(blocklist);
    apply(accounting);
}

reaction estimate_and_block(ing ipv4.srcAddr, reg total_bytes[0:0]) {
""" + AGENT_DOS_REACTION_BODY + """
}
"""


def build_agent_system(
    reaction_engine: str,
    commit_mode: str = "diff",
    delta_polling: bool = False,
) -> MantisSystem:
    """The agent-bench switch: small init-action packing so the four
    malleable values spread over several shadow init tables -- the
    shape where dirty-diff commits visibly beat full commits."""
    from repro.compiler.transform import CompilerOptions

    system = MantisSystem.from_source(
        AGENT_DOS_P4R,
        options=CompilerOptions(max_init_action_params=3),
        num_ports=8,
        reaction_engine=reaction_engine,
        commit_mode=commit_mode,
        delta_polling=delta_polling,
    )
    system.agent.prologue()
    return system


def measure_agent_mode(
    reaction_engine: str,
    commit_mode: str = "diff",
    delta_polling: bool = False,
    iterations: int = 300,
    burst: int = 8,
    warmup: int = 20,
    pump_every: int = 4,
) -> Dict[str, object]:
    """Run the dialogue loop against a deterministic packet schedule;
    time only the ``run_iteration`` calls (the packet pumping between
    iterations is workload setup, not agent work).

    Traffic arrives every ``pump_every`` iterations only, so with
    ``delta_polling`` the quiet iterations' mirror seq check proves the
    register did not advance and skips the ts+dup reads (a seq check
    costs one read; a skipped poll saves the two ts+dup reads).
    """
    system = build_agent_system(
        reaction_engine, commit_mode=commit_mode, delta_polling=delta_polling
    )
    agent = system.agent
    process = system.asic.process
    ops_baseline = system.driver.ops_issued

    def pump(round_index: int) -> None:
        for position in range(burst):
            if position % 2:
                src = ATTACKER_ADDR
            else:
                src = 0x0A000001 + (round_index + position) % 12
            process(
                Packet(
                    fields={
                        "ipv4.srcAddr": src,
                        "ipv4.dstAddr": DST_ADDR,
                        "ipv4.proto": 17 if position % 2 else 6,
                    },
                    size_bytes=1500,
                )
            )

    for index in range(warmup):
        if index % pump_every == 0:
            pump(index)
        agent.run_iteration()
    elapsed = 0.0
    measured_from = agent.iterations
    for index in range(iterations):
        if index % pump_every == 0:
            pump(warmup + index)
        start = time.perf_counter()
        agent.run_iteration()
        elapsed += time.perf_counter() - start
    health = agent.health()
    return {
        "reactions_per_sec": (
            iterations / elapsed if elapsed else float("inf")
        ),
        "elapsed_sec": elapsed,
        "iterations": agent.iterations - measured_from,
        "phase_us": {
            phase: round(total, 3)
            for phase, total in agent.phase_totals.items()
        },
        "driver_ops": system.driver.ops_issued - ops_baseline,
        "dirty_diff_hit_rate": health.dirty_diff_hit_rate,
        "delta_poll_skip_rate": health.delta_poll_skip_rate,
        "blocked": agent.read_malleable("blocked"),
    }


def run_agent_benchmark(
    iterations: int = 300,
    json_path: Optional[str] = None,
) -> Dict[str, object]:
    """The BENCH_agent.json payload: compiled vs interpreted
    reactions/sec, the per-phase microsecond split, dirty-diff vs full
    commit driver op counts on the identical schedule, and the
    delta-polling skip rate."""
    interp = measure_agent_mode("interp", iterations=iterations)
    compiled = measure_agent_mode("compiled", iterations=iterations)
    full = measure_agent_mode(
        "compiled", commit_mode="full", iterations=iterations
    )
    delta = measure_agent_mode(
        "compiled", delta_polling=True, iterations=iterations
    )
    speedup = (
        compiled["reactions_per_sec"] / interp["reactions_per_sec"]
        if interp["reactions_per_sec"]
        else float("inf")
    )
    payload: Dict[str, object] = {
        "workload": "figure15-dos-agent",
        "iterations": iterations,
        "interp_rps": round(interp["reactions_per_sec"], 1),
        "compiled_rps": round(compiled["reactions_per_sec"], 1),
        "speedup": round(speedup, 3),
        "interp_phase_us": interp["phase_us"],
        "compiled_phase_us": compiled["phase_us"],
        "diff_commit_ops": compiled["driver_ops"],
        "full_commit_ops": full["driver_ops"],
        "delta_poll_ops": delta["driver_ops"],
        "dirty_diff_hit_rate": round(compiled["dirty_diff_hit_rate"], 4),
        "delta_poll_skip_rate": round(delta["delta_poll_skip_rate"], 4),
        "blocked_attacker": compiled["blocked"],
    }
    if json_path:
        write_json(json_path, payload)
    return payload


def write_json(path: str, payload: Dict[str, object]) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ---------------------------------------------------------------------------
# Fabric-scale benchmark: events/sec vs switch count plus the
# rebalance-vs-static headline (the fleet-scale refactor gate).

FABRIC_PAIR_ADDRS = (0x0A000001, 0x0A000002)


def build_pair_fabric():
    """The 2-switch scaling anchor: one cable, one multi-flow sender
    per side, agents armed (idle rebalancers -- no uplink fan-out to
    watch, same polling cost)."""
    from repro.apps.fabric_lb import FABRIC_P4R, FabricLbApp, MultiFlowSender
    from repro.net.fabric_builder import FabricSpec
    from repro.net.routing import install_routes

    spec = FabricSpec("bench-pair")
    spec.add_switch("s0")
    spec.add_switch("s1")
    spec.add_link("s0", 0, "s1", 0)
    spec.add_host("hA", "s0", 1, addr=FABRIC_PAIR_ADDRS[0])
    spec.add_host("hB", "s1", 1, addr=FABRIC_PAIR_ADDRS[1])
    built = spec.build(FABRIC_P4R)
    apps = [
        FabricLbApp(switch.system, (), name=name)
        for name, switch in built.switches.items()
    ]
    for app in apps:
        app.system.agent.prologue()
    install_routes(built, mode="hashed")
    for app in apps:
        app.system.agent.run_iteration()
    senders = []
    for src, src_addr, dst_addr in (
        ("hA", *FABRIC_PAIR_ADDRS), ("hB", *reversed(FABRIC_PAIR_ADDRS)),
    ):
        sender = MultiFlowSender(src)
        for index in range(4):
            sender.add_flow(
                {
                    "ipv4.srcAddr": src_addr,
                    "ipv4.dstAddr": dst_addr,
                    "ipv4.proto": 17,
                    "l4.sport": 1000 + index,
                    "l4.dport": 443,
                },
                rate_gbps=1.0,
            )
        built.attach_host(src, sender)
        senders.append(sender)
    return built.fabric, senders, len(built.switches)


def build_fattree_fabric(k: int = 4):
    """The fleet scaling point: the full rebalance scenario."""
    from repro.apps.fabric_lb import build_fattree_rebalance

    scenario = build_fattree_rebalance(k=k)
    return scenario.fabric, scenario.senders, len(scenario.built.switches)


def measure_fabric_point(
    factory, duration_us: float, reps: int = 2
) -> Dict[str, object]:
    """Run ``factory``'s fabric for ``duration_us`` with all agents as
    scheduled actors; events/sec counts packet events plus actor fires
    over wall time.  Best of ``reps`` fresh builds (wall-clock noise)."""
    best: Optional[Dict[str, object]] = None
    for _ in range(max(1, reps)):
        fabric, senders, n_switches = factory()
        events_before = fabric.events.processed
        fires_before = fabric.scheduler.actor_fires
        start = fabric.clock.now
        for sender in senders:
            sender.start()
        wall_start = time.perf_counter()
        fabric.run_until(start + duration_us, agent=True)
        wall = time.perf_counter() - wall_start
        events = (
            fabric.events.processed - events_before
            + fabric.scheduler.actor_fires - fires_before
        )
        point = {
            "switches": n_switches,
            "events": events,
            "actor_fires": fabric.scheduler.actor_fires - fires_before,
            "wall_sec": round(wall, 6),
            "events_per_sec": round(events / wall, 1) if wall else 0.0,
            "simulated_us": round(fabric.clock.now - start, 3),
        }
        if best is None or point["events_per_sec"] > best["events_per_sec"]:
            best = point
    return best


def run_fabric_benchmark(
    duration_us: float = 1200.0,
    k: int = 4,
    json_path: Optional[str] = None,
) -> Dict[str, object]:
    """The BENCH_fabric.json payload.

    Two halves: the scaling curve (events/sec on a 2-switch pair vs
    the FatTree(k) fleet -- the O(1)-per-event core must not fall off
    a cliff with 10x the switches) and the rebalancing headline
    (max-link utilization, Mantis fleet vs static hashing, same
    adversarially polarized traffic matrix)."""
    from repro.apps.fabric_lb import compare_fattree

    pair = measure_fabric_point(build_pair_fabric, duration_us)
    tree = measure_fabric_point(lambda: build_fattree_fabric(k), duration_us)
    scaling_ratio = (
        tree["events_per_sec"] / pair["events_per_sec"]
        if pair["events_per_sec"]
        else float("inf")
    )
    comparison = compare_fattree(k=k, duration_us=duration_us)
    payload: Dict[str, object] = {
        "bench": "fabric",
        "workload": "fabric-scaling+rebalance",
        "k": k,
        "duration_us": duration_us,
        "scaling": {
            str(pair["switches"]): pair,
            str(tree["switches"]): tree,
        },
        "pair_events_per_sec": pair["events_per_sec"],
        "fattree_events_per_sec": tree["events_per_sec"],
        "scaling_ratio": round(scaling_ratio, 3),
        "static_max_utilization": round(
            comparison["static_max_utilization"], 4
        ),
        "mantis_max_utilization": round(
            comparison["mantis_max_utilization"], 4
        ),
        "improvement": round(comparison["improvement"], 4),
        "shifting_switches": comparison["mantis"]["shifting_switches"],
        "total_shifts": comparison["mantis"]["total_shifts"],
        "mantis_delivery_rate": round(
            comparison["mantis"]["delivery_rate"], 4
        ),
        "agent_actor_fires": comparison["mantis"]["agent_actor_fires"],
    }
    if json_path:
        write_json(json_path, payload)
    return payload


def run_ctrl_benchmark(*args, **kwargs) -> Dict[str, object]:
    """Control-plane service throughput benchmark (BENCH_ctrl.json).

    Thin re-export so every tracked benchmark artifact has a
    ``fastbench`` entry point; the implementation lives in
    :mod:`repro.ctrl.bench`.
    """
    from repro.ctrl.bench import run_ctrl_benchmark as _run

    return _run(*args, **kwargs)
