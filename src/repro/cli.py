"""Command-line interface: the reproduction's ``mantis`` tool.

Subcommands mirror the workflow of the paper's toolchain:

- ``compile``  -- P4R in, malleable P4 + control-plane spec out
  (the Mantis compiler front door);
- ``inspect``  -- summarize a P4R program: malleables, reactions,
  generated init/measurement layout, resource accounting;
- ``run``      -- bring up the full emulated stack on a P4R program
  and run the dialogue loop for a simulated duration, reporting
  iteration statistics;
- ``run-fabric`` -- run the two-switch multi-hop failover scenario on
  the fabric runtime (both agents as scheduled actors) and emit a
  JSON summary;
- ``run-fattree`` -- run the FatTree(k) fleet rebalancing scenario:
  one scheduler driving a per-switch agent on every edge/agg/core
  switch against an adversarially polarized traffic matrix;
- ``bench-fabric`` -- fabric scaling benchmark: events/sec on a
  2-switch pair vs the FatTree fleet plus the rebalance-vs-static
  max-link-utilization headline (tier-2 perf gate);
- ``bench-fastpath`` -- measure packets/sec of the interpreter vs the
  compiled vs the columnar pipeline (with a batch-size sweep) on the
  Figure 15 DoS workload plus the ECMP rotating-hash workload, with
  per-workload columnar fallback counts (tier-2 perf gate);
- ``bench-agent`` -- measure the control-plane fast path: compiled vs
  interpreted reactions/sec, dirty-diff vs full commit op counts, and
  the delta-polling skip rate (tier-2 perf gate);
- ``bench-linkguard`` -- sweep lossy-link rates through the
  LinkGuardian-style protection scenario and emit throughput/FCT
  curves comparing no-protection vs Mantis protection;
- ``bench-ctrl`` -- control-plane service sustained-throughput
  benchmark: sync vs pipelined vs DMA-bulk table updates at 1M+
  entries, contended multi-client latency percentiles, and the
  FatTree(k=8) fleet route-install timing (tier-2 perf gate).

Usage:  python -m repro.cli compile prog.p4r -o build/
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.resources import resource_report
from repro.artifacts import save_artifacts
from repro.compiler.transform import CompilerOptions, compile_p4r
from repro.errors import ReproError
from repro.runtime import AgentActor, Scheduler
from repro.system import MantisSystem


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _compiler_options(args) -> CompilerOptions:
    return CompilerOptions(
        max_init_action_bits=args.init_bits,
        max_init_action_params=args.init_params,
        load_fields=frozenset(args.load_field or ()),
    )


def cmd_compile(args) -> int:
    source = _read(args.source)
    artifacts = compile_p4r(source, _compiler_options(args))
    name = args.name
    paths = save_artifacts(artifacts, args.output, name, p4r_source=source)
    for kind, path in sorted(paths.items()):
        print(f"wrote {kind:5s} {path}")
    return 0


def cmd_inspect(args) -> int:
    source = _read(args.source)
    artifacts = compile_p4r(source, _compiler_options(args))
    spec = artifacts.spec

    print("== Malleables ==")
    for name, value in spec.values.items():
        print(f"  value {name}: width={value.width} init={value.init} "
              f"@ {value.init_table}.{value.param}")
    for name, fld in spec.fields.items():
        print(f"  field {name}: width={fld.width} alts={fld.alts} "
              f"strategy={fld.strategy}")
    malleable_tables = [
        n for n, t in spec.tables.items()
        if t.malleable and not n.startswith("p4r_init")
    ]
    for name in malleable_tables:
        transform = spec.tables[name]
        print(f"  table {name}: key parts={transform.total_key_parts} "
              f"vv@{transform.vv_position}")

    print("\n== Init tables ==")
    for init in spec.init_tables:
        params = ", ".join(f"{p.name}:{p.width}" for p in init.params)
        role = "master" if init.master else "shadowed"
        print(f"  {init.table} ({role}): {params}")

    print("\n== Measurements ==")
    for container in spec.containers:
        slots = ", ".join(
            f"{s.c_name}@{s.shift}+{s.width}" for s in container.slots
        )
        print(f"  {container.register} ({container.pipeline}): {slots}")
    for mirror in spec.mirrors.values():
        suffix = " (original eliminated)" if mirror.original_eliminated else ""
        print(f"  mirror {mirror.original} -> {mirror.duplicate} "
              f"[{mirror.count} entries, ts={mirror.ts}]{suffix}")

    print("\n== Reactions ==")
    for reaction in spec.reactions.values():
        arg_list = ", ".join(
            f"{a.kind} {a.c_name}" for a in reaction.decl.args
        )
        print(f"  {reaction.name}({arg_list})")

    print("\n== Resources (compiled program) ==")
    print(" ", resource_report(artifacts.p4).row())
    return 0


def cmd_run(args) -> int:
    source = _read(args.source)
    kwargs = {}
    if args.fault_seed is not None:
        from repro.faults import random_fault_plan
        from repro.switch.driver import RetryPolicy

        kwargs["fault_plan"] = random_fault_plan(
            args.fault_seed, duration_us=args.duration
        )
        kwargs["retry_policy"] = RetryPolicy()
        kwargs["verify_commits"] = True
    system = MantisSystem.from_source(
        source, _compiler_options(args), pacing_sleep_us=args.pacing,
        reaction_engine=args.engine, commit_mode=args.commit_mode,
        delta_polling=args.delta_polling,
        **kwargs,
    )
    system.agent.prologue()
    # The dialogue loop runs as a scheduled actor on the runtime
    # timeline -- the same path a multi-switch fabric uses.
    scheduler = Scheduler(clock=system.clock)
    scheduler.spawn(AgentActor(system.agent))
    scheduler.run_until(args.duration)
    iterations = system.agent.iterations
    health = system.agent.health()
    print(f"simulated {system.clock.now:.1f} us, "
          f"{iterations} dialogue iterations")
    print(f"reaction engine   : {health.reaction_engine} "
          f"(commits={health.commit_mode}, "
          f"delta_polling={'on' if health.delta_polling else 'off'})")
    print(f"avg reaction time : {system.agent.avg_reaction_time_us:.2f} us")
    print(f"cpu utilization   : {system.agent.cpu_utilization:.1%}")
    phases = system.agent.phase_totals
    split = ", ".join(
        f"{name.rsplit('_us', 1)[0]}={phases[name]:.1f}"
        for name in ("mv_flip_us", "poll_us", "react_us", "commit_us")
    )
    print(f"phase split (us)  : {split}")
    print(f"driver operations : {system.driver.ops_issued}")
    print(f"dirty-diff hits   : {health.dirty_diff_hit_rate:.1%} "
          f"of malleable writes deduplicated")
    if health.delta_polling:
        print(f"delta-poll skips  : {health.delta_poll_skip_rate:.1%} "
              f"of mirror polls")
    status = "healthy" if health.healthy else "DEGRADED"
    print(f"agent health      : {status} "
          f"(failures={health.total_failures}, "
          f"retries={health.driver_retries}, "
          f"timeouts={health.driver_timeouts})")
    if health.last_error:
        print(f"last error        : {health.last_error} "
              f"@ {health.last_error_us:.1f} us")
    if system.fault_injector is not None:
        print(f"injected faults   : {system.fault_injector.triggered} "
              f"(seed {args.fault_seed})")
    if args.json:
        import json
        from dataclasses import asdict

        summary = {
            "simulated_us": system.clock.now,
            "iterations": iterations,
            "avg_reaction_time_us": system.agent.avg_reaction_time_us,
            "cpu_utilization": system.agent.cpu_utilization,
            "phase_totals_us": dict(phases),
            "driver_ops": system.driver.ops_issued,
            "health": asdict(health),
        }
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=1)
        print(f"wrote {args.json}")
    return 0


def cmd_run_fabric(args) -> int:
    import json

    from repro.apps.failover import run_multihop_failover

    summary = run_multihop_failover(
        duration_us=args.duration,
        fail_at_us=args.fail_at,
        heartbeat_period_us=args.heartbeat_period,
        data_rate_gbps=args.rate,
    )
    detection = summary["detection"]
    print(f"scenario          : {summary['scenario']}")
    print(f"switches          : {', '.join(summary['switches'])}")
    print(f"simulated         : {summary['duration_us']:.1f} us "
          f"(link 0 cut at +{args.fail_at:.1f} us)")
    print(f"data delivered    : {summary['sink_rx_packets']} / "
          f"{summary['sender_tx_packets']} packets")
    print(f"s0 forwarded      : {summary['s0_forwarded']} packets "
          f"({summary['s0_link0_dropped']} dropped on dead link)")
    iters = summary["agent_iterations"]
    print(f"agent iterations  : s0={iters['s0']} s1={iters['s1']} "
          f"({summary['agent_actor_fires']} actor fires on one timeline)")
    for name, agent_info in summary.get("agents", {}).items():
        status = "healthy" if agent_info["healthy"] else "DEGRADED"
        print(f"agent {name:12s}: {status}, "
              f"engine={agent_info['reaction_engine']}, "
              f"commits={agent_info['commit_mode']}, "
              f"dirty-diff hits={agent_info['dirty_diff_hit_rate']:.1%}")
    for link in summary.get("links", []):
        state = "up" if link["up"] else "DOWN"
        print(f"link {link['name']:13s}: {state}, "
              f"fault_dropped={link['fault_dropped']}, "
              f"fault_corrupted={link['fault_corrupted']}")
    fires = summary.get("per_agent_fires", {})
    for name, stats in summary.get("per_switch", {}).items():
        print(f"switch {name:11s}: delivered={stats['delivered']} "
              f"forwarded={stats['forwarded']} "
              f"tx={stats['tx_packets']} "
              f"drops={stats['switch_drops']} "
              f"agent_fires={fires.get(f'{name}.agent', 0)}")
    latency = detection["detection_latency_us"]
    if summary["rerouted"]:
        print(f"detection latency : {latency:.1f} us "
              f"(s0 @ {detection['s0_port0_detected_us']:.1f}, "
              f"s1 @ {detection['s1_port0_detected_us']:.1f})")
        print(f"rerouted          : s0 @ "
              f"{detection['s0_rerouted_us']:.1f} us")
    else:
        print("rerouted          : NO (detector never fired)")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=1)
        print(f"wrote {args.json}")
    return 0 if summary["rerouted"] else 1


def cmd_run_fattree(args) -> int:
    import json

    from repro.apps.fabric_lb import compare_fattree, run_fattree_rebalance

    if args.compare:
        result = compare_fattree(
            k=args.k, duration_us=args.duration,
            flows_per_host=args.flows_per_host,
            rate_gbps_per_flow=args.rate,
        )
        static, mantis = result["static"], result["mantis"]
        print(f"scenario          : {result['scenario']} (k={args.k})")
        print(f"fleet             : {mantis['switches']} switches, "
              f"{mantis['hosts']} hosts, {mantis['flows']} flows")
        print(f"static max util   : {result['static_max_utilization']:.4f} "
              f"(hot: {', '.join(static['hot_links'])})")
        print(f"mantis max util   : {result['mantis_max_utilization']:.4f} "
              f"({mantis['shifting_switches']} switches shifted "
              f"{mantis['total_shifts']}x)")
        print(f"improvement       : {result['improvement']:.1%}")
        summary = result
    else:
        summary = run_fattree_rebalance(
            k=args.k, duration_us=args.duration, mantis=not args.static,
            mode=args.mode, flows_per_host=args.flows_per_host,
            rate_gbps_per_flow=args.rate,
            route_bulk=not args.route_per_entry,
        )
        print(f"scenario          : {summary['scenario']} (k={args.k}, "
              f"mode={summary['mode']}, "
              f"{'mantis' if summary['mantis'] else 'static'})")
        print(f"fleet             : {summary['switches']} switches, "
              f"{summary['hosts']} hosts, {summary['flows']} flows")
        print(f"delivered         : {summary['received_packets']} / "
              f"{summary['sent_packets']} packets "
              f"({summary['delivery_rate']:.1%})")
        print(f"max link util     : {summary['max_link_utilization']:.4f} "
              f"(mean {summary['mean_link_utilization']:.4f})")
        print(f"hot links         : {', '.join(summary['hot_links'])}")
        install = summary["route_install"]
        print(f"route install     : {install['driver_ops']} entries as "
              f"{install['bulk_txns']} bulk txns"
              if install["bulk"] else
              f"route install     : {install['driver_ops']} per-entry ops")
        if summary["mantis"]:
            print(f"shifts            : {summary['total_shifts']} across "
                  f"{summary['shifting_switches']} switches "
                  f"(first @ +{summary['first_shift_us'] or 0:.1f} us)"
                  if summary["total_shifts"]
                  else "shifts            : none")
            print(f"agent fires       : {summary['agent_actor_fires']} "
                  f"across {len(summary['per_agent_fires'])} agents")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=1)
        print(f"wrote {args.json}")
    return 0


def cmd_bench_fabric(args) -> int:
    from repro.fastbench import run_fabric_benchmark

    json_path = args.bench_json or args.json
    result = run_fabric_benchmark(
        duration_us=args.duration, k=args.k, json_path=json_path,
    )
    print(f"workload          : {result['workload']} (k={result['k']})")
    for count, point in sorted(
        result["scaling"].items(), key=lambda kv: int(kv[0])
    ):
        print(f"{count:>2s} switches       : "
              f"{point['events_per_sec']:>12,.1f} events/s "
              f"({point['events']} events, {point['wall_sec']:.3f} s wall, "
              f"{point['actor_fires']} actor fires)")
    print(f"scaling ratio     : {result['scaling_ratio']:.2f}x "
          "(fleet vs pair events/s)")
    print(f"static max util   : {result['static_max_utilization']:.4f}")
    print(f"mantis max util   : {result['mantis_max_utilization']:.4f} "
          f"({result['shifting_switches']} switches shifted "
          f"{result['total_shifts']}x)")
    print(f"improvement       : {result['improvement']:.1%}")
    print(f"delivery (mantis) : {result['mantis_delivery_rate']:.1%}")
    if json_path:
        print(f"wrote {json_path}")
    return 0


def cmd_bench_fastpath(args) -> int:
    from repro.fastbench import run_fastpath_benchmark

    json_path = args.bench_json or args.json
    result = run_fastpath_benchmark(
        n_packets=args.packets,
        json_path=json_path,
        batch_size=args.batch_size,
        profile=args.profile,
        engine=args.engine,
    )
    print(f"workload          : {result['workload']}")
    print(f"packets           : {result['packets']}")
    if "interpreter_pps" in result:
        print(f"interpreter       : "
              f"{result['interpreter_pps']:>12,.1f} pkt/s")
        print(f"compiled          : {result['compiled_pps']:>12,.1f} pkt/s")
    batch_label = f"batch (x{result['batch_size']})"
    print(f"{batch_label:<18s}: {result['batch_pps']:>12,.1f} pkt/s")
    for size, pps in result["columnar_pps_by_batch"].items():
        columnar_label = f"columnar (x{size})"
        print(f"{columnar_label:<18s}: {pps:>12,.1f} pkt/s")
    if "speedup" in result:
        print(f"speedup           : {result['speedup']:.2f}x "
              "(compiled vs interpreter)")
        print(f"batch speedup     : "
              f"{result['batch_speedup_vs_compiled']:.2f}x "
              "(batch vs compiled per-packet)")
    print(f"columnar speedup  : "
          f"{result['columnar_speedup_vs_batch']:.2f}x "
          "(columnar vs batch)")
    print(f"ecmp batch        : {result['ecmp_batch_pps']:>12,.1f} pkt/s")
    print(f"ecmp columnar     : {result['ecmp_columnar_pps']:>12,.1f} pkt/s")
    print(f"ecmp speedup      : "
          f"{result['ecmp_columnar_speedup_vs_batch']:.2f}x "
          "(columnar vs batch)")
    for workload, fallbacks in sorted(
        result["fallbacks_by_workload"].items()
    ):
        rendered = ", ".join(
            f"{reason}={count}" for reason, count in sorted(fallbacks.items())
        ) or "none"
        print(f"fallbacks [{workload}]: {rendered}")
    if args.profile:
        profile = result["profile"]
        print("-- hot loops (data plane) --")
        for section in ("control_runs", "table_applies", "action_runs"):
            counts = profile["data_plane"][section]
            ranked = sorted(counts.items(), key=lambda kv: -kv[1])
            rendered = ", ".join(f"{name}={count}" for name, count in ranked)
            print(f"  {section:13s}: {rendered}")
        print("-- hot loops (agent, cumulative us) --")
        for phase, total in profile["agent_phases_us"].items():
            print(f"  {phase:13s}: {total}")
    if json_path:
        print(f"wrote {json_path}")
    return 0


def cmd_bench_agent(args) -> int:
    from repro.fastbench import run_agent_benchmark

    json_path = args.bench_json or args.json
    result = run_agent_benchmark(
        iterations=args.iterations,
        json_path=json_path,
    )
    print(f"workload          : {result['workload']}")
    print(f"iterations        : {result['iterations']}")
    print(f"interpreted       : {result['interp_rps']:>12,.1f} reactions/s")
    print(f"compiled          : {result['compiled_rps']:>12,.1f} reactions/s")
    print(f"speedup           : {result['speedup']:.2f}x "
          "(compiled vs interpreted)")
    phases = result["compiled_phase_us"]
    split = ", ".join(
        f"{name.rsplit('_us', 1)[0]}={phases[name]:.1f}"
        for name in ("mv_flip_us", "poll_us", "react_us", "commit_us")
    )
    print(f"phase split (us)  : {split}")
    print(f"commit ops        : diff={result['diff_commit_ops']} "
          f"vs full={result['full_commit_ops']}")
    print(f"dirty-diff hits   : {result['dirty_diff_hit_rate']:.1%}")
    print(f"delta-poll skips  : {result['delta_poll_skip_rate']:.1%} "
          f"(ops {result['delta_poll_ops']} vs "
          f"{result['diff_commit_ops']} without)")
    if json_path:
        print(f"wrote {json_path}")
    return 0


def cmd_bench_linkguard(args) -> int:
    import json

    from repro.apps.linkguard import run_linkguard_sweep

    try:
        loss_rates = tuple(
            float(part) for part in args.loss.split(",") if part.strip()
        )
    except ValueError:
        print(f"error: --loss expects comma-separated rates, "
              f"got {args.loss!r}", file=sys.stderr)
        return 1
    if not loss_rates:
        print("error: --loss expects at least one rate", file=sys.stderr)
        return 1
    result = run_linkguard_sweep(
        loss_rates=loss_rates,
        duration_us=args.duration,
        probe_period_us=args.probe_period,
        transfer_packets=args.transfer,
    )
    print(f"scenario          : linkguard loss sweep "
          f"({args.duration:.0f} us per run, tcp transport)")
    print(f"{'loss':>8s} {'base Gbps':>10s} {'prot Gbps':>10s} "
          f"{'tput x':>7s} {'base FCT':>9s} {'prot FCT':>9s} "
          f"{'FCT x':>6s} {'protect@us':>10s}")
    for loss in loss_rates:
        point = result["points"][repr(loss)]
        base = point["baseline"]
        prot = point["protected"]
        def fmt(value, width, precision=2):
            if value is None:
                return f"{'-':>{width}s}"
            return f"{value:>{width}.{precision}f}"

        print(f"{loss:>8g} {base['throughput_gbps']:>10.2f} "
              f"{prot['throughput_gbps']:>10.2f} "
              f"{point['throughput_ratio']:>7.2f} "
              f"{fmt(base['avg_fct_us'], 9, 1)} "
              f"{fmt(prot['avg_fct_us'], 9, 1)} "
              f"{fmt(point['fct_ratio'], 6)} "
              f"{fmt(prot.get('protect_time_us'), 10, 1)}")
    gate = result["gate"]
    if gate["pass"] is not None:
        verdict = "PASS" if gate["pass"] else "FAIL"
        fct = (f"{gate['fct_ratio']:.2f}x"
               if gate["fct_ratio"] is not None else "-")
        print(f"gate @ {gate['loss_rate']:g} loss : {verdict} "
              f"(throughput {gate['throughput_ratio']:.2f}x, "
              f"FCT {fct}; need >=2x tput or <=0.5x FCT)")
    json_path = args.bench_json or args.json
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(result, handle, indent=1)
        print(f"wrote {json_path}")
    return 0 if gate["pass"] in (True, None) else 1


def cmd_bench_ctrl(args) -> int:
    from repro.ctrl.bench import run_ctrl_benchmark

    if args.entries < 1:
        print("error: --entries expects a positive update count",
              file=sys.stderr)
        return 1
    json_path = args.bench_json or args.json
    result = run_ctrl_benchmark(
        entries=args.entries,
        contended_duration_us=args.duration,
        install_k=args.k,
        json_path=json_path,
    )
    modes = result["modes"]
    print(f"update stream     : {result['entries']:,} table modifies "
          f"over a {result['update_window']:,}-entry window")
    print(f"{'mode':>10s} {'sim us/op':>10s} {'sim ops/s':>14s} "
          f"{'wall ops/s':>12s}")
    for name in ("sync", "pipelined", "bulk"):
        mode = modes[name]
        print(f"{name:>10s} {mode['us_per_op']:>10.3f} "
              f"{mode['sim_updates_per_sec']:>14,.0f} "
              f"{mode['wall_updates_per_sec']:>12,.0f}")
    speedup = result["speedup"]
    gates = result["gates"]
    print(f"pipelined speedup : {speedup['pipelined_vs_sync']:.2f}x "
          f"(gate >= {gates['pipelined_min']:.1f}x: "
          f"{'PASS' if gates['pipelined_pass'] else 'FAIL'})")
    print(f"bulk speedup      : {speedup['bulk_vs_sync']:.2f}x "
          f"(gate >= {gates['bulk_min']:.1f}x: "
          f"{'PASS' if gates['bulk_pass'] else 'FAIL'})")
    contended = result["contended"]
    print(f"contended legacy  : p50={contended['legacy_p50_us']:.2f} us "
          f"p99={contended['legacy_p99_us']:.2f} us "
          f"({contended['legacy_updates']} updates vs "
          f"{contended['agent_iterations']} agent iterations + "
          f"{contended['loader_ops_completed']:,} bulk-loader ops)")
    print(f"offline cross-chk : p50={contended['offline_p50_us']:.2f} us "
          f"p99={contended['offline_p99_us']:.2f} us")
    install = result["route_install"]
    print(f"route install k={install['k']} : bulk "
          f"{install['bulk']['install_wall_sec']:.2f}s wall / "
          f"{install['bulk']['install_sim_us']:.0f} sim us vs per-entry "
          f"{install['per_entry']['install_sim_us']:.0f} sim us "
          f"({install['sim_speedup']:.1f}x, "
          f"{install['bulk']['driver_ops']:,} entries, "
          f"{install['bulk']['bulk_txns']} txns)")
    if json_path:
        print(f"wrote {json_path}")
    return 0 if gates["pipelined_pass"] and gates["bulk_pass"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mantis",
        description="Mantis (SIGCOMM 2020) reproduction toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("source", help="P4R source file")
        p.add_argument("--init-bits", type=int, default=512,
                       help="init-action parameter bit budget")
        p.add_argument("--init-params", type=int, default=64,
                       help="max parameters per init action")
        p.add_argument("--load-field", action="append",
                       help="force a malleable field to the "
                            "load-in-prior-stage strategy")

    p_compile = sub.add_parser(
        "compile", help="compile P4R to malleable P4 + spec"
    )
    common(p_compile)
    p_compile.add_argument("-o", "--output", default="build",
                           help="output directory")
    p_compile.add_argument("--name", default="program",
                           help="artifact base name")
    p_compile.set_defaults(func=cmd_compile)

    p_inspect = sub.add_parser(
        "inspect", help="summarize a P4R program's compiled layout"
    )
    common(p_inspect)
    p_inspect.set_defaults(func=cmd_inspect)

    p_run = sub.add_parser(
        "run", help="run the dialogue loop on the emulated stack"
    )
    common(p_run)
    p_run.add_argument("--duration", type=float, default=1000.0,
                       help="simulated microseconds to run")
    p_run.add_argument("--pacing", type=float, default=0.0,
                       help="pacing sleep per iteration (us)")
    p_run.add_argument("--fault-seed", type=int, default=None,
                       help="inject a seeded random fault plan and arm "
                            "driver retries + commit verification")
    p_run.add_argument("--engine", choices=("compiled", "interp"),
                       default=None,
                       help="reaction engine (default: MANTIS_REACTION "
                            "env var, falling back to compiled)")
    p_run.add_argument("--commit-mode", choices=("diff", "full"),
                       default="diff",
                       help="commit only dirty init shadows (diff) or "
                            "rewrite all of them (full)")
    p_run.add_argument("--delta-polling", action="store_true",
                       help="skip mirror polls whose seq counter did "
                            "not advance")
    p_run.add_argument("--json", default=None,
                       help="write the run summary (stats + health) to "
                            "this path")
    p_run.set_defaults(func=cmd_run)

    p_fabric = sub.add_parser(
        "run-fabric",
        help="run the two-switch multi-hop failover scenario on the "
             "fabric runtime",
    )
    p_fabric.add_argument("--duration", type=float, default=600.0,
                          help="simulated microseconds to run")
    p_fabric.add_argument("--fail-at", type=float, default=200.0,
                          help="cut inter-switch link 0 this many "
                               "simulated us after start")
    p_fabric.add_argument("--heartbeat-period", type=float, default=1.0,
                          help="probe period T_s (us)")
    p_fabric.add_argument("--rate", type=float, default=4.0,
                          help="data sender rate (Gbps)")
    p_fabric.add_argument("--json", default=None,
                          help="write the JSON summary to this path")
    p_fabric.set_defaults(func=cmd_run_fabric)

    p_tree = sub.add_parser(
        "run-fattree",
        help="run the FatTree(k) fleet rebalancing scenario (one "
             "scheduler, ~20 per-switch agents)",
    )
    p_tree.add_argument("--k", type=int, default=4,
                        help="fat-tree arity (k pods, k^2*5/4 switches)")
    p_tree.add_argument("--duration", type=float, default=1200.0,
                        help="simulated microseconds to run")
    p_tree.add_argument("--mode",
                        choices=("hashed", "round_robin", "random"),
                        default="hashed",
                        help="ECMP install mode (hashed is the "
                             "Mantis-rebalanceable path)")
    p_tree.add_argument("--static", action="store_true",
                        help="freeze the control plane after route "
                             "install (baseline)")
    p_tree.add_argument("--compare", action="store_true",
                        help="run static and mantis back to back and "
                             "report the utilization improvement")
    p_tree.add_argument("--flows-per-host", type=int, default=4,
                        help="flows per sending host")
    p_tree.add_argument("--rate", type=float, default=1.0,
                        help="rate per flow (Gbps)")
    p_tree.add_argument("--route-per-entry", action="store_true",
                        help="install routes one driver op per entry "
                             "instead of coalesced DMA-burst "
                             "transactions (bulk is the default)")
    p_tree.add_argument("--json", default=None,
                        help="write the JSON summary to this path")
    p_tree.set_defaults(func=cmd_run_fattree)

    p_fab_bench = sub.add_parser(
        "bench-fabric",
        help="fabric scaling benchmark: events/sec on a 2-switch pair "
             "vs the FatTree fleet, plus rebalance-vs-static max-link "
             "utilization",
    )
    p_fab_bench.add_argument("--duration", type=float, default=1200.0,
                             help="simulated microseconds per run")
    p_fab_bench.add_argument("--k", type=int, default=4,
                             help="fat-tree arity for the fleet point")
    p_fab_bench.add_argument("--json", default=None,
                             help="write the result payload to this path")
    p_fab_bench.add_argument("--bench-json", nargs="?",
                             const="BENCH_fabric.json",
                             default=None, metavar="PATH",
                             help="write the tracked benchmark artifact "
                                  "(default path: BENCH_fabric.json at "
                                  "the repo root)")
    p_fab_bench.set_defaults(func=cmd_bench_fabric)

    p_bench = sub.add_parser(
        "bench-fastpath",
        help="compare interpreter vs compiled vs columnar pipeline "
             "packet rates",
    )
    p_bench.add_argument("--packets", type=int, default=20_000,
                         help="packets to pump through each engine")
    p_bench.add_argument("--batch-size", type=int, default=256,
                         help="packets per process_batch call in "
                              "burst mode")
    p_bench.add_argument("--engine", choices=("all", "columnar"),
                         default="all",
                         help="'columnar' skips the per-packet engines "
                              "and measures only the batch baseline plus "
                              "the columnar batch-size sweep")
    p_bench.add_argument("--profile", action="store_true",
                         help="also report hot-loop counters (data-plane "
                              "control/table/action counts and agent "
                              "per-phase time)")
    p_bench.add_argument("--json", default=None,
                         help="write the result payload to this path")
    p_bench.add_argument("--bench-json", nargs="?", const="BENCH_fastpath.json",
                         default=None, metavar="PATH",
                         help="write the tracked benchmark artifact "
                              "(default path: BENCH_fastpath.json at the "
                              "repo root)")
    p_bench.set_defaults(func=cmd_bench_fastpath)

    p_agent = sub.add_parser(
        "bench-agent",
        help="compare interpreted vs compiled reaction engines and "
             "diff vs full commits on the DoS dialogue loop",
    )
    p_agent.add_argument("--iterations", type=int, default=300,
                         help="dialogue iterations per engine")
    p_agent.add_argument("--json", default=None,
                         help="write the result payload to this path")
    p_agent.add_argument("--bench-json", nargs="?", const="BENCH_agent.json",
                         default=None, metavar="PATH",
                         help="write the tracked benchmark artifact "
                              "(default path: BENCH_agent.json at the "
                              "repo root)")
    p_agent.set_defaults(func=cmd_bench_agent)

    p_guard = sub.add_parser(
        "bench-linkguard",
        help="sweep lossy-link rates: no-protection vs Mantis "
             "linkguard protection (throughput + FCT curves)",
    )
    p_guard.add_argument("--loss", default="1e-4,1e-3,1e-2,1e-1",
                         help="comma-separated loss rates to sweep")
    p_guard.add_argument("--duration", type=float, default=4000.0,
                         help="simulated microseconds per run")
    p_guard.add_argument("--probe-period", type=float, default=1.0,
                         help="probe period per link direction (us)")
    p_guard.add_argument("--transfer", type=int, default=64,
                         help="packets per transfer for FCT samples")
    p_guard.add_argument("--json", default=None,
                         help="write the result payload to this path")
    p_guard.add_argument("--bench-json", nargs="?",
                         const="BENCH_linkguard.json",
                         default=None, metavar="PATH",
                         help="write the tracked benchmark artifact "
                              "(default path: BENCH_linkguard.json at "
                              "the repo root)")
    p_guard.set_defaults(func=cmd_bench_linkguard)

    p_ctrl = sub.add_parser(
        "bench-ctrl",
        help="control-plane service sustained-throughput benchmark: "
             "sync vs pipelined vs bulk table updates, contended-client "
             "latency, fleet route-install timing",
    )
    p_ctrl.add_argument("--entries", type=int, default=1_048_576,
                        help="table updates per throughput mode")
    p_ctrl.add_argument("--duration", type=float, default=30_000.0,
                        help="contended-scenario window (simulated us)")
    p_ctrl.add_argument("--k", type=int, default=8,
                        help="fat-tree arity for the route-install "
                             "timing")
    p_ctrl.add_argument("--json", default=None,
                        help="write the result payload to this path")
    p_ctrl.add_argument("--bench-json", nargs="?", const="BENCH_ctrl.json",
                        default=None, metavar="PATH",
                        help="write the tracked benchmark artifact "
                             "(default path: BENCH_ctrl.json at the "
                             "repo root)")
    p_ctrl.set_defaults(func=cmd_bench_ctrl)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
