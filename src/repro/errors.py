"""Exception hierarchy shared by every repro subsystem.

Every error raised by the library derives from :class:`ReproError`, so
callers embedding the library can catch a single base class.  Subsystems
raise the most specific subclass that applies; messages always name the
offending entity (table, field, malleable, ...) so that failures in a
multi-pass compile are attributable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class P4SyntaxError(ReproError):
    """Raised by the P4/P4R lexer or parser on malformed source.

    Carries the source line/column when known so tooling can point at
    the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, col {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class P4SemanticError(ReproError):
    """Raised when a parsed program violates a static rule.

    Examples: a table referencing an undeclared action, a field
    reference into an unknown header, a malleable field whose ``init``
    is not a member of its ``alts`` set.
    """


class CompileError(ReproError):
    """Raised by the Mantis compiler when a transformation cannot be
    applied, e.g. a ``${var}`` reference to an undeclared malleable."""


class SwitchError(ReproError):
    """Raised by the RMT switch emulator on illegal runtime operations,
    e.g. writing a table entry whose key arity mismatches the reads."""


class DriverError(SwitchError):
    """Raised by the driver model, e.g. for accesses to objects that
    were not declared in the loaded program."""


class TransientDriverError(DriverError):
    """A control-channel operation failed without mutating device
    state (rejected write, lost response, control-channel hiccup).

    The operation is safe to retry verbatim: the driver guarantees the
    ASIC mutation never landed when this is raised.
    """


class BackpressureError(DriverError):
    """A control-plane session's bounded submit queue is full.

    Raised by the pipelined control-plane service
    (``repro.ctrl.CtrlService``) when a client submits faster than the
    channel drains and its per-session queue hits its limit.  The
    rejected operation was *not* enqueued and has no effect; the client
    should retry after a drain notification (``on_drain``).
    """


class DriverTimeoutError(DriverError):
    """A driver operation exhausted its :class:`RetryPolicy` budget
    (max attempts or per-op deadline) without succeeding.

    Like :class:`TransientDriverError`, the device state is guaranteed
    untouched by the failed operation.
    """


class AgentError(ReproError):
    """Raised by the Mantis control-plane agent, e.g. when a reaction
    references an argument that was never registered for polling."""


class ReactionError(AgentError):
    """Raised while interpreting a C-like reaction body."""


class SimulationError(ReproError):
    """Raised by the discrete-event network simulator."""
