"""Tokenizer shared by the P4-14 and P4R parsers.

A deliberately small hand-written lexer (the paper's compiler used
Flex); it produces a flat token list with source offsets so the P4R
parser can slice raw reaction bodies (C-like code) straight out of the
source text by brace matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import P4SyntaxError

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=",
    "<<", ">>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "^=", "|=", "&=", "++", "--", "${",
    "{", "}", "(", ")", "[", "]", ";", ":", ",", ".", "<", ">", "=",
    "+", "-", "*", "/", "%", "&", "|", "^", "!", "~", "?", "$",
]


@dataclass
class Token:
    """One lexical token.

    ``kind`` is ``"ident"``, ``"number"``, ``"op"`` or ``"eof"``.
    ``offset`` is the character offset of the token start in the source,
    used for raw-slicing reaction bodies.
    """

    kind: str
    value: str
    line: int
    column: int
    offset: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, line={self.line})"


class Lexer:
    """Tokenize P4/P4R source into a list of :class:`Token`."""

    def __init__(self, source: str):
        self.source = source
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind == "eof":
                return tokens

    # ---- internals ----------------------------------------------------

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos < len(self.source) and self.source[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace and ``//`` / ``/* */`` comments."""
        src = self.source
        while self._pos < len(src):
            ch = src[self._pos]
            if ch in " \t\r\n":
                self._advance()
            elif src.startswith("//", self._pos):
                while self._pos < len(src) and src[self._pos] != "\n":
                    self._advance()
            elif src.startswith("/*", self._pos):
                end = src.find("*/", self._pos + 2)
                if end < 0:
                    raise P4SyntaxError(
                        "unterminated block comment", self._line, self._col
                    )
                self._advance(end + 2 - self._pos)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        src = self.source
        if self._pos >= len(src):
            return Token("eof", "", self._line, self._col, self._pos)

        line, col, offset = self._line, self._col, self._pos
        ch = src[self._pos]

        if ch.isalpha() or ch == "_":
            end = self._pos
            while end < len(src) and (src[end].isalnum() or src[end] == "_"):
                end += 1
            value = src[self._pos:end]
            self._advance(end - self._pos)
            return Token("ident", value, line, col, offset)

        if ch == '"':
            # String literal (used by C reaction bodies for action
            # names, e.g. acl.addEntry(..., "block")).
            end = self._pos + 1
            while end < len(src) and src[end] != '"':
                if src[end] == "\\":
                    end += 1
                end += 1
            if end >= len(src):
                raise P4SyntaxError("unterminated string literal", line, col)
            value = src[self._pos + 1:end].replace('\\"', '"')
            self._advance(end + 1 - self._pos)
            return Token("string", value, line, col, offset)

        if ch.isdigit():
            end = self._pos
            if src.startswith("0x", end) or src.startswith("0X", end):
                end += 2
                while end < len(src) and src[end] in "0123456789abcdefABCDEF":
                    end += 1
            else:
                while end < len(src) and src[end].isdigit():
                    end += 1
            value = src[self._pos:end]
            self._advance(end - self._pos)
            return Token("number", value, line, col, offset)

        for op in _OPERATORS:
            if src.startswith(op, self._pos):
                self._advance(len(op))
                return Token("op", op, line, col, offset)

        raise P4SyntaxError(f"unexpected character {ch!r}", line, col)


def match_brace_block(source: str, open_offset: int) -> int:
    """Return the offset just past the ``}`` matching ``{`` at
    ``open_offset``, skipping braces inside comments.

    Used to slice raw C reaction bodies out of P4R source.
    """
    if source[open_offset] != "{":
        raise P4SyntaxError("expected '{' at reaction body start")
    depth = 0
    pos = open_offset
    while pos < len(source):
        if source.startswith("//", pos):
            newline = source.find("\n", pos)
            pos = len(source) if newline < 0 else newline + 1
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise P4SyntaxError("unterminated comment in reaction body")
            pos = end + 2
            continue
        ch = source[pos]
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                return pos + 1
        pos += 1
    raise P4SyntaxError("unterminated reaction body (missing '}')")


def parse_int(text: str) -> int:
    """Parse a P4 integer literal (decimal or ``0x`` hex)."""
    return int(text, 0)


def token_at_or_after(tokens: List[Token], offset: int, start: int = 0) -> int:
    """Index of the first token whose offset is >= ``offset``.

    The P4R parser uses this to resynchronize the token stream after
    slicing a raw reaction body out of the source.
    """
    index = start
    while index < len(tokens) - 1 and tokens[index].offset < offset:
        index += 1
    return index


def expected(token: Token, what: str) -> Optional[P4SyntaxError]:
    """Build a uniform 'expected X, got Y' syntax error."""
    return P4SyntaxError(
        f"expected {what}, got {token.kind} {token.value!r}",
        token.line,
        token.column,
    )
