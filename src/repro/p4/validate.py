"""Static semantic validation for P4/P4R programs.

The validator runs after parsing and again after every compiler pass,
catching dangling references before they turn into confusing runtime
failures inside the switch emulator.
"""

from __future__ import annotations

from typing import List

from repro.errors import P4SemanticError
from repro.p4 import ast

# Primitives whose first string argument names a register.
_REGISTER_PRIMITIVES = {"register_read": 1, "register_write": 0}
# Primitives whose arguments include a field-list-calculation name.
_HASH_PRIMITIVES = {"modify_field_with_hash_based_offset": 2}


def validate_program(program: ast.Program, allow_malleables: bool = False) -> None:
    """Raise :class:`P4SemanticError` on the first violated rule.

    ``allow_malleables=True`` permits ``${...}`` references (used when
    validating P4R programs before the Mantis transform); plain P4
    output of the compiler must validate with the default ``False``.
    """
    _check_instances(program)
    _check_field_lists(program, allow_malleables)
    _check_actions(program, allow_malleables)
    _check_tables(program, allow_malleables)
    _check_controls(program, allow_malleables)


def _check_ref(program: ast.Program, ref, allow_malleables: bool, where: str) -> None:
    if isinstance(ref, ast.MalleableRef):
        if not allow_malleables:
            raise P4SemanticError(
                f"{where}: malleable reference {ref} in plain P4 program"
            )
        return
    if isinstance(ref, ast.ValidRef):
        if ref.header not in program.headers:
            raise P4SemanticError(f"{where}: valid() of unknown header {ref.header!r}")
        return
    if isinstance(ref, ast.FieldRef):
        if not program.has_field(ref):
            raise P4SemanticError(f"{where}: unknown field reference {ref}")
        return


def _check_instances(program: ast.Program) -> None:
    for instance in program.headers.values():
        if instance.header_type not in program.header_types:
            raise P4SemanticError(
                f"instance {instance.name!r} uses undeclared header type "
                f"{instance.header_type!r}"
            )
        header_type = program.header_types[instance.header_type]
        for field_name in instance.initializer:
            if not header_type.has_field(field_name):
                raise P4SemanticError(
                    f"instance {instance.name!r} initializes unknown field "
                    f"{field_name!r}"
                )


def _check_field_lists(program: ast.Program, allow_malleables: bool) -> None:
    for field_list in program.field_lists.values():
        for ref in field_list.entries:
            _check_ref(program, ref, allow_malleables, f"field_list {field_list.name}")
    for calc in program.field_list_calcs.values():
        for input_name in calc.inputs:
            if input_name not in program.field_lists:
                raise P4SemanticError(
                    f"field_list_calculation {calc.name!r} inputs unknown "
                    f"field_list {input_name!r}"
                )


def _check_actions(program: ast.Program, allow_malleables: bool) -> None:
    for action in program.actions.values():
        where = f"action {action.name}"
        for call in action.body:
            for position, arg in enumerate(call.args):
                if isinstance(arg, (ast.FieldRef, ast.MalleableRef)):
                    _check_ref(program, arg, allow_malleables, where)
            register_pos = _REGISTER_PRIMITIVES.get(call.name)
            if register_pos is not None:
                _check_named_arg(
                    program.registers, call, register_pos, "register", where
                )
            hash_pos = _HASH_PRIMITIVES.get(call.name)
            if hash_pos is not None:
                _check_named_arg(
                    program.field_list_calcs, call, hash_pos,
                    "field_list_calculation", where,
                )
            if call.name == "count":
                _check_named_arg(program.counters, call, 0, "counter", where)


def _check_named_arg(index, call, position, kind, where) -> None:
    if position >= len(call.args):
        raise P4SemanticError(f"{where}: {call.name} missing {kind} argument")
    name = call.args[position]
    if not isinstance(name, str) or name not in index:
        raise P4SemanticError(
            f"{where}: {call.name} references unknown {kind} {name!r}"
        )


def _check_tables(program: ast.Program, allow_malleables: bool) -> None:
    for table in program.tables.values():
        where = f"table {table.name}"
        for read in table.reads:
            _check_ref(program, read.ref, allow_malleables, where)
        if not table.action_names:
            raise P4SemanticError(f"{where}: no actions declared")
        for action_name in table.action_names:
            if action_name not in program.actions:
                raise P4SemanticError(
                    f"{where}: unknown action {action_name!r}"
                )
        if table.default_action is not None:
            name, args = table.default_action
            if name not in program.actions:
                raise P4SemanticError(
                    f"{where}: unknown default action {name!r}"
                )
            expected = len(program.actions[name].params)
            if len(args) != expected:
                raise P4SemanticError(
                    f"{where}: default action {name!r} expects {expected} "
                    f"args, got {len(args)}"
                )


def _check_controls(program: ast.Program, allow_malleables: bool = False) -> None:
    for control in program.controls.values():
        for stmt in ast.walk_statements(control.body):
            if isinstance(stmt, ast.ApplyCall):
                if stmt.table not in program.tables:
                    raise P4SemanticError(
                        f"control {control.name}: apply of unknown table "
                        f"{stmt.table!r}"
                    )
            elif isinstance(stmt, ast.IfBlock):
                _check_condition(
                    program, stmt.cond, allow_malleables,
                    f"control {control.name}",
                )


def _check_condition(program, expr, allow_malleables, where) -> None:
    if isinstance(expr, ast.BinOp):
        _check_condition(program, expr.left, allow_malleables, where)
        _check_condition(program, expr.right, allow_malleables, where)
    elif isinstance(expr, (ast.FieldRef, ast.MalleableRef, ast.ValidRef)):
        _check_ref(program, expr, allow_malleables, where)


def tables_in_apply_order(program: ast.Program, control_name: str) -> List[str]:
    """The tables a control applies, in program order (helper used by
    the resource-accounting pass and the pipeline builder)."""
    if control_name not in program.controls:
        raise P4SemanticError(f"unknown control {control_name!r}")
    return program.controls[control_name].applied_tables()
