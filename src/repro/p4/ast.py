"""Typed AST for the P4-14 subset used by Mantis.

The node set covers everything the paper's transformations (Figures 4-6)
and use cases need: header types and instances, field lists and hash
calculations, stateful registers, actions built from primitive-action
calls, match-action tables, control blocks with ``apply``/``if``, and a
simplified parser section.

Nodes are plain mutable dataclasses.  The Mantis compiler deep-copies a
:class:`Program` and rewrites nodes in place; the switch emulator
interprets the same nodes directly, so there is exactly one definition
of the language semantics in the code base.

P4R-only nodes (malleables, reactions) live in :mod:`repro.p4r.ast`;
the shared :class:`MalleableRef` reference node is defined here because
pre-transform programs embed it in ordinary P4 positions.
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import P4SemanticError


class MatchType(enum.Enum):
    """Match kinds supported by table ``reads`` entries."""

    EXACT = "exact"
    TERNARY = "ternary"
    LPM = "lpm"
    RANGE = "range"
    VALID = "valid"


@dataclass
class FieldRef:
    """Reference to ``instance.field`` (header or metadata)."""

    header: str
    field: str

    def __str__(self) -> str:
        return f"{self.header}.{self.field}"

    def __hash__(self) -> int:
        return hash((self.header, self.field))


@dataclass
class MalleableRef:
    """A ``${name}`` reference to a malleable value or field.

    Present only in pre-transform (P4R) programs; the Mantis compiler
    replaces every instance before emitting plain P4.
    """

    name: str

    def __str__(self) -> str:
        return "${" + self.name + "}"

    def __hash__(self) -> int:
        return hash(("${}", self.name))


@dataclass
class ValidRef:
    """``valid(header)`` test used in control-flow conditions."""

    header: str

    def __str__(self) -> str:
        return f"valid({self.header})"


@dataclass
class BinOp:
    """Binary expression in an ``if`` condition.

    ``op`` is one of ``== != < <= > >= and or + - & |``.
    Operands may be :class:`FieldRef`, :class:`ValidRef`, ``int`` or
    nested :class:`BinOp`.
    """

    op: str
    left: "Operand"
    right: "Operand"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


Operand = Union[FieldRef, MalleableRef, ValidRef, BinOp, int]
# Arguments accepted by primitive-action calls.
Arg = Union[FieldRef, MalleableRef, int, str]


@dataclass
class FieldDecl:
    """One field of a header type: name plus bit width."""

    name: str
    width: int


@dataclass
class HeaderType:
    name: str
    fields: List[FieldDecl] = field(default_factory=list)

    def field_width(self, name: str) -> int:
        for f in self.fields:
            if f.name == name:
                return f.width
        raise P4SemanticError(f"header type {self.name} has no field {name}")

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    @property
    def total_width(self) -> int:
        return sum(f.width for f in self.fields)


@dataclass
class HeaderInstance:
    """A ``header`` or ``metadata`` instance of a header type.

    ``initializer`` maps field name to initial value; only meaningful
    for metadata (headers start invalid, metadata starts initialized).
    """

    name: str
    header_type: str
    is_metadata: bool = False
    initializer: Dict[str, int] = field(default_factory=dict)


@dataclass
class FieldList:
    name: str
    entries: List[Union[FieldRef, MalleableRef]] = field(default_factory=list)


@dataclass
class FieldListCalculation:
    """``field_list_calculation`` -- a named hash over field lists."""

    name: str
    inputs: List[str] = field(default_factory=list)
    algorithm: str = "crc16"
    output_width: int = 16


@dataclass
class RegisterDecl:
    """A stateful register array (``register { width; instance_count }``)."""

    name: str
    width: int = 32
    instance_count: int = 1


@dataclass
class CounterDecl:
    """A counter array; modelled as a packets-or-bytes register."""

    name: str
    counter_type: str = "packets"  # "packets" | "bytes" | "packets_and_bytes"
    instance_count: int = 1


@dataclass
class PrimitiveCall:
    """A call to a P4-14 primitive action, e.g. ``modify_field(a, b)``.

    ``args`` holds :data:`Arg` values; string args name registers,
    field lists, or field-list calculations depending on the primitive.
    """

    name: str
    args: List[Arg] = field(default_factory=list)

    def __str__(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"{self.name}({rendered})"


@dataclass
class ActionDecl:
    """A compound action: named parameters plus primitive calls."""

    name: str
    params: List[str] = field(default_factory=list)
    body: List[PrimitiveCall] = field(default_factory=list)


@dataclass
class TableRead:
    """One entry of a table's ``reads`` block."""

    ref: Union[FieldRef, MalleableRef, ValidRef]
    match_type: MatchType = MatchType.EXACT
    mask: Optional[int] = None


@dataclass
class TableDecl:
    """A match-action table declaration.

    ``malleable`` marks P4R malleable tables before the Mantis
    transform; the compiler records the flag into the control-plane
    spec and clears it in the emitted P4.
    """

    name: str
    reads: List[TableRead] = field(default_factory=list)
    action_names: List[str] = field(default_factory=list)
    default_action: Optional[Tuple[str, List[int]]] = None
    size: Optional[int] = None
    malleable: bool = False

    def is_ternary(self) -> bool:
        """True when any read requires TCAM (ternary/lpm/range)."""
        tcam_kinds = (MatchType.TERNARY, MatchType.LPM, MatchType.RANGE)
        return any(r.match_type in tcam_kinds for r in self.reads)


@dataclass
class ApplyCall:
    """``apply(table)`` statement in a control block."""

    table: str


@dataclass
class IfBlock:
    """``if (cond) { ... } else { ... }`` in a control block."""

    cond: Operand
    then_body: List["Statement"] = field(default_factory=list)
    else_body: List["Statement"] = field(default_factory=list)


Statement = Union[ApplyCall, IfBlock]


@dataclass
class ControlDecl:
    """A named control block (``control ingress { ... }``)."""

    name: str
    body: List[Statement] = field(default_factory=list)

    def applied_tables(self) -> List[str]:
        """All table names applied anywhere in this control, in order."""
        tables: List[str] = []

        def walk(stmts: List[Statement]) -> None:
            for stmt in stmts:
                if isinstance(stmt, ApplyCall):
                    tables.append(stmt.table)
                else:
                    walk(stmt.then_body)
                    walk(stmt.else_body)

        walk(self.body)
        return tables


@dataclass
class ParserStateDecl:
    """A simplified parser state: extracts then branches to one target.

    The emulator works on pre-parsed symbolic packets, so parser states
    are validated but not executed; they are kept so that round-tripping
    a program through the printer stays faithful.
    """

    name: str
    extracts: List[str] = field(default_factory=list)
    return_target: str = "ingress"


Declaration = Union[
    HeaderType,
    HeaderInstance,
    FieldList,
    FieldListCalculation,
    RegisterDecl,
    CounterDecl,
    ActionDecl,
    TableDecl,
    ControlDecl,
    ParserStateDecl,
]


class Program:
    """Container for a parsed P4 (or P4R) program.

    Keeps declarations in source order (for faithful printing) and
    maintains name-indexed maps for each declaration kind.  Mutating
    helpers (``add``, ``replace_action`` ...) keep both views in sync.
    """

    def __init__(self) -> None:
        self.declarations: List[Declaration] = []
        self.header_types: Dict[str, HeaderType] = {}
        self.headers: Dict[str, HeaderInstance] = {}
        self.field_lists: Dict[str, FieldList] = {}
        self.field_list_calcs: Dict[str, FieldListCalculation] = {}
        self.registers: Dict[str, RegisterDecl] = {}
        self.counters: Dict[str, CounterDecl] = {}
        self.actions: Dict[str, ActionDecl] = {}
        self.tables: Dict[str, TableDecl] = {}
        self.controls: Dict[str, ControlDecl] = {}
        self.parser_states: Dict[str, ParserStateDecl] = {}

    _INDEXES = (
        (HeaderType, "header_types"),
        (HeaderInstance, "headers"),
        (FieldList, "field_lists"),
        (FieldListCalculation, "field_list_calcs"),
        (RegisterDecl, "registers"),
        (CounterDecl, "counters"),
        (ActionDecl, "actions"),
        (TableDecl, "tables"),
        (ControlDecl, "controls"),
        (ParserStateDecl, "parser_states"),
    )

    def add(self, decl: Declaration, *, front: bool = False) -> None:
        """Add a declaration, indexing it by kind and name.

        ``front=True`` inserts at the top of the source order, which the
        compiler uses for generated metadata headers.
        """
        for kind, attr in self._INDEXES:
            if isinstance(decl, kind):
                index: Dict[str, Declaration] = getattr(self, attr)
                if decl.name in index:
                    raise P4SemanticError(
                        f"duplicate declaration of {kind.__name__} {decl.name!r}"
                    )
                index[decl.name] = decl
                break
        else:
            raise P4SemanticError(f"unknown declaration type {type(decl).__name__}")
        if front:
            self.declarations.insert(0, decl)
        else:
            self.declarations.append(decl)

    def remove(self, decl: Declaration) -> None:
        """Remove a declaration from both the order and the index."""
        for kind, attr in self._INDEXES:
            if isinstance(decl, kind):
                getattr(self, attr).pop(decl.name, None)
                break
        self.declarations.remove(decl)

    # ---- resolution helpers -------------------------------------------

    def instance_type(self, instance: str) -> HeaderType:
        if instance not in self.headers:
            raise P4SemanticError(f"unknown header/metadata instance {instance!r}")
        type_name = self.headers[instance].header_type
        if type_name not in self.header_types:
            raise P4SemanticError(
                f"instance {instance!r} has undeclared type {type_name!r}"
            )
        return self.header_types[type_name]

    def field_width(self, ref: FieldRef) -> int:
        """Bit width of a field reference, resolving through its type."""
        return self.instance_type(ref.header).field_width(ref.field)

    def has_field(self, ref: FieldRef) -> bool:
        if ref.header not in self.headers:
            return False
        return self.instance_type(ref.header).has_field(ref.field)

    def tables_applying_action(self, action_name: str) -> List[TableDecl]:
        return [t for t in self.tables.values() if action_name in t.action_names]

    def controls_applying_table(self, table_name: str) -> List[ControlDecl]:
        return [
            c for c in self.controls.values() if table_name in c.applied_tables()
        ]

    def clone(self) -> "Program":
        """Deep copy, used by the compiler so source programs survive."""
        return copy.deepcopy(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Program: {len(self.header_types)} header_types, "
            f"{len(self.tables)} tables, {len(self.actions)} actions, "
            f"{len(self.registers)} registers>"
        )


def walk_statements(stmts: List[Statement]):
    """Yield every statement in a control body, depth first."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, IfBlock):
            yield from walk_statements(stmt.then_body)
            yield from walk_statements(stmt.else_body)
