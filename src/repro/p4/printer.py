"""Emit P4-14 source text from a :class:`~repro.p4.ast.Program`.

This is how the Mantis compiler produces its first artifact: a valid,
malleable P4 program.  The printer is the inverse of the parser, and
``parse(print(parse(src)))`` is tested to be a fixed point.
"""

from __future__ import annotations

from typing import List

from repro.p4 import ast


def _render_ref(ref) -> str:
    return str(ref)


def _render_read(read: ast.TableRead) -> str:
    if read.match_type is ast.MatchType.VALID:
        return f"        valid({read.ref.header}) : exact;"
    mask = f" mask {read.mask:#x}" if read.mask is not None else ""
    return f"        {read.ref}{mask} : {read.match_type.value};"


def _render_statements(stmts: List[ast.Statement], indent: int) -> List[str]:
    pad = " " * indent
    lines: List[str] = []
    for stmt in stmts:
        if isinstance(stmt, ast.ApplyCall):
            lines.append(f"{pad}apply({stmt.table});")
        else:
            lines.append(f"{pad}if ({stmt.cond}) {{")
            lines.extend(_render_statements(stmt.then_body, indent + 4))
            if stmt.else_body:
                lines.append(f"{pad}}} else {{")
                lines.extend(_render_statements(stmt.else_body, indent + 4))
            lines.append(f"{pad}}}")
    return lines


def print_program(program: ast.Program) -> str:
    """Render the full program as P4-14 source."""
    chunks: List[str] = []
    for decl in program.declarations:
        chunks.append(_print_declaration(decl))
    return "\n\n".join(chunks) + "\n"


def _print_declaration(decl) -> str:
    if isinstance(decl, ast.HeaderType):
        fields = "\n".join(
            f"        {f.name} : {f.width};" for f in decl.fields
        )
        return (
            f"header_type {decl.name} {{\n    fields {{\n{fields}\n    }}\n}}"
        )
    if isinstance(decl, ast.HeaderInstance):
        keyword = "metadata" if decl.is_metadata else "header"
        if decl.initializer:
            init = " ".join(
                f"{k} : {v};" for k, v in decl.initializer.items()
            )
            return f"{keyword} {decl.header_type} {decl.name} {{ {init} }};"
        return f"{keyword} {decl.header_type} {decl.name};"
    if isinstance(decl, ast.FieldList):
        entries = "\n".join(f"    {ref};" for ref in decl.entries)
        return f"field_list {decl.name} {{\n{entries}\n}}"
    if isinstance(decl, ast.FieldListCalculation):
        inputs = "\n".join(f"        {name};" for name in decl.inputs)
        return (
            f"field_list_calculation {decl.name} {{\n"
            f"    input {{\n{inputs}\n    }}\n"
            f"    algorithm : {decl.algorithm};\n"
            f"    output_width : {decl.output_width};\n}}"
        )
    if isinstance(decl, ast.RegisterDecl):
        return (
            f"register {decl.name} {{\n    width : {decl.width};\n"
            f"    instance_count : {decl.instance_count};\n}}"
        )
    if isinstance(decl, ast.CounterDecl):
        return (
            f"counter {decl.name} {{\n    type : {decl.counter_type};\n"
            f"    instance_count : {decl.instance_count};\n}}"
        )
    if isinstance(decl, ast.ActionDecl):
        params = ", ".join(decl.params)
        body = "\n".join(f"    {call};" for call in decl.body)
        body_block = f"\n{body}\n" if body else "\n"
        return f"action {decl.name}({params}) {{{body_block}}}"
    if isinstance(decl, ast.TableDecl):
        return _print_table(decl)
    if isinstance(decl, ast.ControlDecl):
        body = "\n".join(_render_statements(decl.body, 4))
        return f"control {decl.name} {{\n{body}\n}}"
    if isinstance(decl, ast.ParserStateDecl):
        extracts = "\n".join(f"    extract({h});" for h in decl.extracts)
        block = f"{extracts}\n" if extracts else ""
        return (
            f"parser {decl.name} {{\n{block}    return {decl.return_target};\n}}"
        )
    raise TypeError(f"cannot print declaration {type(decl).__name__}")


def _print_table(table: ast.TableDecl) -> str:
    lines = []
    if table.malleable:
        lines.append(f"malleable table {table.name} {{")
    else:
        lines.append(f"table {table.name} {{")
    if table.reads:
        lines.append("    reads {")
        lines.extend(_render_read(read) for read in table.reads)
        lines.append("    }")
    lines.append("    actions {")
    lines.extend(f"        {name};" for name in table.action_names)
    lines.append("    }")
    if table.default_action is not None:
        name, args = table.default_action
        rendered_args = ", ".join(str(a) for a in args)
        lines.append(f"    default_action : {name}({rendered_args});")
    if table.size is not None:
        lines.append(f"    size : {table.size};")
    lines.append("}")
    return "\n".join(lines)
