"""Recursive-descent parser for the P4-14 subset.

Covers the declarations Mantis's transformations and use cases rely on:
header types, header/metadata instances, field lists, field-list
calculations, registers, counters, actions, tables, control blocks with
``apply``/``if``/``else``, and simplified parser states.

The P4R front end (:mod:`repro.p4r.parser`) subclasses
:class:`P4Parser`, adding the ``malleable`` and ``reaction``
declarations of the paper's Figure 3.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.errors import P4SyntaxError
from repro.p4 import ast
from repro.p4.lexer import Lexer, Token, expected, parse_int

# P4-14 primitive actions the emulator implements.  Kept here so the
# parser can warn early instead of failing at packet-processing time.
KNOWN_PRIMITIVES = frozenset(
    {
        "modify_field",
        "add",
        "subtract",
        "add_to_field",
        "subtract_from_field",
        "bit_and",
        "bit_or",
        "bit_xor",
        "shift_left",
        "shift_right",
        "min",
        "max",
        "drop",
        "no_op",
        "count",
        "register_read",
        "register_write",
        "modify_field_with_hash_based_offset",
        "modify_field_rng_uniform",
        "recirculate",
        "clone_ingress_pkt_to_egress",
        "mark_ecn",
    }
)


class P4Parser:
    """Parse P4-14 source text into a :class:`~repro.p4.ast.Program`."""

    def __init__(self, source: str):
        self.source = source
        self.tokens: List[Token] = Lexer(source).tokenize()
        self.index = 0
        self.program = ast.Program()

    # ---- token-stream helpers -----------------------------------------

    def peek(self, lookahead: int = 0) -> Token:
        index = min(self.index + lookahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.next()
        if token.kind != kind or (value is not None and token.value != value):
            raise expected(token, value if value is not None else kind)
        return token

    def expect_ident(self, value: Optional[str] = None) -> str:
        return self.expect("ident", value).value

    def expect_op(self, value: str) -> Token:
        return self.expect("op", value)

    def expect_number(self) -> int:
        return parse_int(self.expect("number").value)

    def accept(self, kind: str, value: str) -> bool:
        token = self.peek()
        if token.kind == kind and token.value == value:
            self.next()
            return True
        return False

    # ---- entry point ---------------------------------------------------

    def parse(self) -> ast.Program:
        while self.peek().kind != "eof":
            self.parse_declaration()
        return self.program

    def parse_declaration(self) -> None:
        token = self.peek()
        if token.kind != "ident":
            raise expected(token, "a declaration keyword")
        handler = getattr(self, f"_parse_{token.value}", None)
        if handler is None:
            raise P4SyntaxError(
                f"unknown declaration {token.value!r}", token.line, token.column
            )
        self.next()
        handler()

    # ---- declarations ---------------------------------------------------

    def _parse_header_type(self) -> None:
        name = self.expect_ident()
        self.expect_op("{")
        self.expect_ident("fields")
        self.expect_op("{")
        fields: List[ast.FieldDecl] = []
        while not self.accept("op", "}"):
            field_name = self.expect_ident()
            self.expect_op(":")
            width = self.expect_number()
            self.expect_op(";")
            fields.append(ast.FieldDecl(field_name, width))
        self.expect_op("}")
        self.program.add(ast.HeaderType(name, fields))

    def _parse_header(self) -> None:
        self._parse_instance(is_metadata=False)

    def _parse_metadata(self) -> None:
        self._parse_instance(is_metadata=True)

    def _parse_instance(self, is_metadata: bool) -> None:
        type_name = self.expect_ident()
        name = self.expect_ident()
        initializer = {}
        if self.accept("op", "{"):
            while not self.accept("op", "}"):
                field_name = self.expect_ident()
                self.expect_op(":")
                initializer[field_name] = self.expect_number()
                self.expect_op(";")
        self.expect_op(";")
        self.program.add(
            ast.HeaderInstance(name, type_name, is_metadata, initializer)
        )

    def _parse_field_list(self) -> None:
        name = self.expect_ident()
        self.expect_op("{")
        entries: List[Union[ast.FieldRef, ast.MalleableRef]] = []
        while not self.accept("op", "}"):
            entries.append(self.parse_ref())
            self.expect_op(";")
        self.program.add(ast.FieldList(name, entries))

    def _parse_field_list_calculation(self) -> None:
        name = self.expect_ident()
        self.expect_op("{")
        inputs: List[str] = []
        algorithm = "crc16"
        output_width = 16
        while not self.accept("op", "}"):
            key = self.expect_ident()
            if key == "input":
                self.expect_op("{")
                while not self.accept("op", "}"):
                    inputs.append(self.expect_ident())
                    self.expect_op(";")
            elif key == "algorithm":
                self.expect_op(":")
                algorithm = self.expect_ident()
                self.expect_op(";")
            elif key == "output_width":
                self.expect_op(":")
                output_width = self.expect_number()
                self.expect_op(";")
            else:
                raise P4SyntaxError(f"unknown field_list_calculation key {key!r}")
        self.program.add(
            ast.FieldListCalculation(name, inputs, algorithm, output_width)
        )

    def _parse_register(self) -> None:
        name = self.expect_ident()
        self.expect_op("{")
        width, instance_count = 32, 1
        while not self.accept("op", "}"):
            key = self.expect_ident()
            self.expect_op(":")
            value = self.expect_number()
            self.expect_op(";")
            if key == "width":
                width = value
            elif key == "instance_count":
                instance_count = value
            else:
                raise P4SyntaxError(f"unknown register attribute {key!r}")
        self.program.add(ast.RegisterDecl(name, width, instance_count))

    def _parse_counter(self) -> None:
        name = self.expect_ident()
        self.expect_op("{")
        counter_type, instance_count = "packets", 1
        while not self.accept("op", "}"):
            key = self.expect_ident()
            self.expect_op(":")
            if key == "type":
                counter_type = self.expect_ident()
            elif key == "instance_count":
                instance_count = self.expect_number()
            else:
                raise P4SyntaxError(f"unknown counter attribute {key!r}")
            self.expect_op(";")
        self.program.add(ast.CounterDecl(name, counter_type, instance_count))

    def _parse_action(self) -> None:
        name = self.expect_ident()
        self.expect_op("(")
        params: List[str] = []
        if not self.accept("op", ")"):
            params.append(self.expect_ident())
            while self.accept("op", ","):
                params.append(self.expect_ident())
            self.expect_op(")")
        self.expect_op("{")
        body: List[ast.PrimitiveCall] = []
        while not self.accept("op", "}"):
            body.append(self.parse_primitive_call())
        self.program.add(ast.ActionDecl(name, params, body))

    def parse_primitive_call(self) -> ast.PrimitiveCall:
        name = self.expect_ident()
        self.expect_op("(")
        args: List[ast.Arg] = []
        if not self.accept("op", ")"):
            args.append(self.parse_arg())
            while self.accept("op", ","):
                args.append(self.parse_arg())
            self.expect_op(")")
        self.expect_op(";")
        return ast.PrimitiveCall(name, args)

    def parse_arg(self) -> ast.Arg:
        token = self.peek()
        if token.kind == "number":
            return parse_int(self.next().value)
        if token.kind == "op" and token.value == "${":
            return self.parse_ref()
        if token.kind == "ident":
            # `a.b` is a field reference, a bare ident names an action
            # parameter, register, field list, or calculation.
            if self.peek(1).kind == "op" and self.peek(1).value == ".":
                return self.parse_ref()
            return self.next().value
        raise expected(token, "an argument")

    def parse_ref(self) -> Union[ast.FieldRef, ast.MalleableRef]:
        token = self.peek()
        if token.kind == "op" and token.value == "${":
            self.next()
            name = self.expect_ident()
            self.expect_op("}")
            return ast.MalleableRef(name)
        header = self.expect_ident()
        self.expect_op(".")
        field = self.expect_ident()
        return ast.FieldRef(header, field)

    def _parse_table(self, malleable: bool = False) -> None:
        name = self.expect_ident()
        self.expect_op("{")
        table = ast.TableDecl(name, malleable=malleable)
        while not self.accept("op", "}"):
            key = self.expect_ident()
            if key == "reads":
                self.expect_op("{")
                while not self.accept("op", "}"):
                    table.reads.append(self.parse_table_read())
            elif key == "actions":
                self.expect_op("{")
                while not self.accept("op", "}"):
                    table.action_names.append(self.expect_ident())
                    self.expect_op(";")
            elif key == "default_action":
                self.expect_op(":")
                action = self.expect_ident()
                args: List[int] = []
                if self.accept("op", "("):
                    if not self.accept("op", ")"):
                        args.append(self.expect_number())
                        while self.accept("op", ","):
                            args.append(self.expect_number())
                        self.expect_op(")")
                self.expect_op(";")
                table.default_action = (action, args)
            elif key == "size":
                self.expect_op(":")
                table.size = self.expect_number()
                self.expect_op(";")
            else:
                raise P4SyntaxError(f"unknown table attribute {key!r}")
        self.program.add(table)

    def parse_table_read(self) -> ast.TableRead:
        token = self.peek()
        if token.kind == "ident" and token.value == "valid":
            self.next()
            self.expect_op("(")
            header = self.expect_ident()
            self.expect_op(")")
            self.expect_op(":")
            self.expect_ident("exact")
            self.expect_op(";")
            return ast.TableRead(ast.ValidRef(header), ast.MatchType.VALID)
        ref = self.parse_ref()
        mask = None
        if self.peek().kind == "ident" and self.peek().value == "mask":
            self.next()
            mask = self.expect_number()
        self.expect_op(":")
        match_type = ast.MatchType(self.expect_ident())
        self.expect_op(";")
        return ast.TableRead(ref, match_type, mask)

    def _parse_control(self) -> None:
        name = self.expect_ident()
        self.expect_op("{")
        body = self.parse_statements()
        self.program.add(ast.ControlDecl(name, body))

    def parse_statements(self) -> List[ast.Statement]:
        """Parse statements until the closing ``}`` (consumed)."""
        statements: List[ast.Statement] = []
        while not self.accept("op", "}"):
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> ast.Statement:
        keyword = self.expect_ident()
        if keyword == "apply":
            self.expect_op("(")
            table = self.expect_ident()
            self.expect_op(")")
            self.expect_op(";")
            return ast.ApplyCall(table)
        if keyword == "if":
            self.expect_op("(")
            cond = self.parse_condition()
            self.expect_op(")")
            self.expect_op("{")
            then_body = self.parse_statements()
            else_body: List[ast.Statement] = []
            if self.peek().kind == "ident" and self.peek().value == "else":
                self.next()
                self.expect_op("{")
                else_body = self.parse_statements()
            return ast.IfBlock(cond, then_body, else_body)
        raise P4SyntaxError(f"unknown statement {keyword!r}")

    # ---- condition expressions (precedence climbing) -------------------

    _PRECEDENCE = [
        ("or", ["||", "or"]),
        ("and", ["&&", "and"]),
        ("cmp", ["==", "!=", "<", "<=", ">", ">="]),
        ("bits", ["&", "|", "^"]),
        ("add", ["+", "-"]),
        ("shift", ["<<", ">>"]),
    ]

    def parse_condition(self, level: int = 0) -> ast.Operand:
        if level >= len(self._PRECEDENCE):
            return self.parse_cond_atom()
        _, ops = self._PRECEDENCE[level]
        left = self.parse_condition(level + 1)
        while True:
            token = self.peek()
            matched = (token.kind == "op" and token.value in ops) or (
                token.kind == "ident" and token.value in ops
            )
            if not matched:
                return left
            self.next()
            right = self.parse_condition(level + 1)
            op = {"or": "||", "and": "&&"}.get(token.value, token.value)
            left = ast.BinOp(op, left, right)

    def parse_cond_atom(self) -> ast.Operand:
        token = self.peek()
        if token.kind == "op" and token.value == "(":
            self.next()
            inner = self.parse_condition()
            self.expect_op(")")
            return inner
        if token.kind == "number":
            return parse_int(self.next().value)
        if token.kind == "ident" and token.value == "valid":
            self.next()
            self.expect_op("(")
            header = self.expect_ident()
            self.expect_op(")")
            return ast.ValidRef(header)
        return self.parse_ref()

    def _parse_parser(self) -> None:
        name = self.expect_ident()
        self.expect_op("{")
        extracts: List[str] = []
        return_target = "ingress"
        while not self.accept("op", "}"):
            keyword = self.expect_ident()
            if keyword == "extract":
                self.expect_op("(")
                extracts.append(self.expect_ident())
                self.expect_op(")")
                self.expect_op(";")
            elif keyword == "return":
                return_target = self.expect_ident()
                self.expect_op(";")
            else:
                raise P4SyntaxError(f"unknown parser statement {keyword!r}")
        self.program.add(ast.ParserStateDecl(name, extracts, return_target))


def parse_p4(source: str) -> ast.Program:
    """Parse P4-14 source text and return the program AST."""
    return P4Parser(source).parse()
