"""P4-14 language substrate.

This package models the subset of P4-14 v1.0.5 that Mantis touches:

- :mod:`repro.p4.ast` -- typed AST nodes plus the :class:`Program`
  container with name-resolution helpers.
- :mod:`repro.p4.lexer` -- a hand-written tokenizer shared with the P4R
  front end.
- :mod:`repro.p4.parser` -- recursive-descent parser producing a
  :class:`~repro.p4.ast.Program`.
- :mod:`repro.p4.printer` -- emits valid P4-14 source from an AST, used
  by the Mantis compiler to produce its "malleable P4" artifact.
- :mod:`repro.p4.validate` -- static semantic checks.
"""

from repro.p4.ast import (
    ActionDecl,
    ApplyCall,
    BinOp,
    ControlDecl,
    FieldDecl,
    FieldList,
    FieldListCalculation,
    FieldRef,
    HeaderInstance,
    HeaderType,
    IfBlock,
    MatchType,
    ParserStateDecl,
    PrimitiveCall,
    Program,
    RegisterDecl,
    TableDecl,
    TableRead,
    ValidRef,
)
from repro.p4.lexer import Lexer, Token
from repro.p4.parser import P4Parser, parse_p4
from repro.p4.printer import print_program
from repro.p4.validate import validate_program

__all__ = [
    "ActionDecl",
    "ApplyCall",
    "BinOp",
    "ControlDecl",
    "FieldDecl",
    "FieldList",
    "FieldListCalculation",
    "FieldRef",
    "HeaderInstance",
    "HeaderType",
    "IfBlock",
    "Lexer",
    "MatchType",
    "P4Parser",
    "ParserStateDecl",
    "PrimitiveCall",
    "Program",
    "RegisterDecl",
    "TableDecl",
    "TableRead",
    "Token",
    "ValidRef",
    "parse_p4",
    "print_program",
    "validate_program",
]
