"""Switch resource accounting (Table 1 and Figure 13).

Computes, for a compiled program (optionally with installed entries):

- **stages**: a greedy dependency-based stage assignment -- a table
  must be in a later stage than any earlier table that writes a field
  it reads or writes (the RMT constraint);
- **tables** / **registers** counts;
- **SRAM**: exact-match table capacity (key + action bits) plus
  register storage;
- **TCAM**: capacity of tables with ternary/lpm/range reads;
- **metadata bits**: width of the generated ``p4r_meta_t_`` fields.

Table 1 reports *marginal* numbers over a basic router; use
:func:`resource_report` on both programs and subtract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.p4 import ast
from repro.switch.asic import SwitchAsic

# Primitives whose first argument is a written field.
_WRITES_FIRST = {
    "modify_field", "add", "subtract", "bit_and", "bit_or", "bit_xor",
    "shift_left", "shift_right", "min", "max", "add_to_field",
    "subtract_from_field", "register_read",
    "modify_field_with_hash_based_offset", "modify_field_rng_uniform",
}


@dataclass
class ResourceReport:
    stages: int = 0
    tables: int = 0
    registers: int = 0
    sram_bytes: int = 0
    tcam_bytes: int = 0
    metadata_bits: int = 0
    actions: int = 0

    def minus(self, baseline: "ResourceReport") -> "ResourceReport":
        """Marginal cost over a baseline program (Table 1 style)."""
        return ResourceReport(
            stages=self.stages - baseline.stages,
            tables=self.tables - baseline.tables,
            registers=self.registers - baseline.registers,
            sram_bytes=self.sram_bytes - baseline.sram_bytes,
            tcam_bytes=self.tcam_bytes - baseline.tcam_bytes,
            metadata_bits=self.metadata_bits - baseline.metadata_bits,
            actions=self.actions - baseline.actions,
        )

    def row(self) -> str:
        """Formatted like a Table 1 row."""
        return (
            f"stages={self.stages} tables={self.tables} "
            f"regs={self.registers} SRAM={self.sram_bytes / 1024:.2f}KB "
            f"TCAM={self.tcam_bytes / 1024:.2f}KB "
            f"metadata={self.metadata_bits}b"
        )


def _fields_written_by_action(
    program: ast.Program, action: ast.ActionDecl
) -> Set[str]:
    written = set()
    for call in action.body:
        if call.name in _WRITES_FIRST and call.args:
            dst = call.args[0]
            if isinstance(dst, ast.FieldRef):
                written.add(str(dst))
    return written


def _fields_read_by_table(
    program: ast.Program, table: ast.TableDecl
) -> Set[str]:
    reads = set()
    for read in table.reads:
        if isinstance(read.ref, ast.FieldRef):
            reads.add(str(read.ref))
    for action_name in table.action_names:
        action = program.actions.get(action_name)
        if action is None:
            continue
        for call in action.body:
            for arg in call.args:
                if isinstance(arg, ast.FieldRef):
                    reads.add(str(arg))
    return reads


def _stage_assignment(program: ast.Program, control_name: str) -> int:
    """Greedy per-control stage count with write->read dependencies."""
    if control_name not in program.controls:
        return 0
    table_stage: Dict[str, int] = {}
    # field -> latest stage in which it is written
    last_write_stage: Dict[str, int] = {}
    max_stage = 0
    for table_name in program.controls[control_name].applied_tables():
        table = program.tables[table_name]
        if table_name in table_stage:
            continue  # re-application shares the earlier placement
        reads = _fields_read_by_table(program, table)
        writes: Set[str] = set()
        for action_name in table.action_names:
            action = program.actions.get(action_name)
            if action is not None:
                writes |= _fields_written_by_action(program, action)
        depends_on = max(
            (
                last_write_stage.get(field_name, 0)
                for field_name in reads | writes
            ),
            default=0,
        )
        stage = depends_on + 1
        table_stage[table_name] = stage
        for field_name in writes:
            last_write_stage[field_name] = stage
        max_stage = max(max_stage, stage)
    return max_stage


def _table_capacity(table: ast.TableDecl, installed: Optional[int]) -> int:
    if table.size is not None:
        return table.size
    if installed:
        return installed
    return 1


def resource_report(
    program: ast.Program,
    asic: Optional[SwitchAsic] = None,
    action_data_bits: int = 32,
) -> ResourceReport:
    """Account one (compiled, plain-P4) program's resource usage.

    Pass the running ``asic`` to use live entry counts for tables
    without a declared ``size``.
    """
    report = ResourceReport()
    report.tables = len(program.tables)
    report.registers = len(program.registers) + len(program.counters)
    report.actions = len(program.actions)

    for register in program.registers.values():
        report.sram_bytes += (
            (register.width + 7) // 8 * register.instance_count
        )
    for counter in program.counters.values():
        report.sram_bytes += 8 * counter.instance_count

    for table in program.tables.values():
        installed = None
        if asic is not None and table.name in asic.tables:
            installed = asic.tables[table.name].entry_count
        capacity = _table_capacity(table, installed)
        key_bits = 0
        for read in table.reads:
            if read.match_type is ast.MatchType.VALID:
                key_bits += 1
            elif isinstance(read.ref, ast.FieldRef):
                key_bits += program.field_width(read.ref)
        entry_bits = key_bits + action_data_bits
        if table.is_ternary():
            # TCAM stores value+mask per key bit.
            report.tcam_bytes += capacity * (2 * key_bits + action_data_bits) // 8
        else:
            report.sram_bytes += capacity * entry_bits // 8

    meta = program.header_types.get("p4r_meta_t_")
    if meta is not None:
        report.metadata_bits = meta.total_width

    report.stages = _stage_assignment(program, "ingress") + _stage_assignment(
        program, "egress"
    )
    return report


def tcam_bytes_for_table(
    program: ast.Program, asic: SwitchAsic, table_name: str
) -> int:
    """TCAM bytes of one table with its *installed* entries (used by
    the Figure 13 sweep, where occupancy is the independent variable)."""
    table = program.tables[table_name]
    runtime = asic.tables[table_name]
    key_bits = 0
    for read in table.reads:
        if read.match_type is ast.MatchType.VALID:
            key_bits += 1
        elif isinstance(read.ref, ast.FieldRef):
            key_bits += program.field_width(read.ref)
    return runtime.entry_count * (2 * key_bits) // 8
