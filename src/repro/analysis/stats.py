"""Small statistics used by use cases and benchmarks.

The hash-polarization use case computes the Median Absolute Deviation
(MAD) of port utilizations -- cheap on a CPU, notoriously hard in a
switch pipeline (Section 8.3.3's motivation).
"""

from __future__ import annotations

from typing import Sequence


def median(values: Sequence[float]) -> float:
    """Median; the average of the middle pair for even lengths."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float]) -> float:
    """Median Absolute Deviation: median(|x - median(x)|)."""
    center = median(values)
    return median([abs(v - center) for v in values])


def mean_absolute_deviation(values: Sequence[float]) -> float:
    """Mean absolute deviation around the median.

    The paper calls its imbalance statistic "MAD" but cites an online
    *mean*-absolute-deviation algorithm [38]; for small port counts the
    median-of-deviations degenerates (one hot port out of four gives
    exactly 0), so the mean-of-deviations is the usable robust spread.
    """
    center = median(values)
    deviations = [abs(v - center) for v in values]
    return sum(deviations) / len(deviations)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q} out of range")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return float(ordered[rank])


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)
