"""The Section 8.1 reaction-time cost model.

The paper models total reaction latency as::

    F_10b(1 tblMod) + sum_args F_10a(a) + C
      + sum_tblMods 2 * F_10b(t) + 2 * F_10b(N_init - 1) + F_10b(1 tblMod)

where ``F_10a``/``F_10b`` are the measurement/update latency curves of
Figure 10, ``C`` is the reaction body's execution time, and ``N_init``
the number of init tables.  The terms are: the mv flip, argument
polling, reaction logic, prepare+mirror for each table modification,
prepare+mirror for the extra init tables, and the vv commit.

These predictors are exercised against the *measured* latencies of the
agent in ``benchmarks/test_fig10_*`` -- the model and the
implementation must agree, as they do in the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.compiler.spec import ControlPlaneSpec
from repro.switch.driver import DriverCostModel


def predict_measurement_us(
    model: DriverCostModel,
    containers: int = 0,
    register_entries: int = 0,
    register_width_bits: int = 32,
    register_arrays: int = 0,
    memoized: bool = True,
    poll_batched: bool = False,
) -> float:
    """F_10a: latency of polling reaction arguments.

    ``containers`` packed field-argument registers (one op each, they
    are distinct arrays), plus ``register_arrays`` user register
    mirrors each burst-reading ``register_entries`` entries of value +
    timestamp.

    ``poll_batched`` models the agent's ``poll_batching`` mode: the
    entire measurement phase shares a single PCIe transaction instead
    of one per container group / mirror array.
    """
    prep = model.memoized_prep_us if memoized else model.op_prep_us
    total = 0.0
    rtts = 0
    if containers:
        # One batched PCIe transaction for all containers.
        rtts += 1
        total += containers * (prep + model.register_read_cost(1, 32))
    for _ in range(register_arrays):
        rtts += 1  # value + ts reads share a batch
        total += 2 * (
            prep
            + model.register_read_cost(register_entries, register_width_bits)
        )
    if poll_batched:
        rtts = min(rtts, 1)
    total += rtts * model.pcie_rtt_us
    return total


def predict_update_us(
    model: DriverCostModel,
    scalar_updates: int = 0,
    table_entry_mods: int = 0,
    memoized: bool = True,
) -> float:
    """F_10b: latency of applying updates (no isolation protocol).

    Any number of scalar malleable updates cost one init-table write;
    table entry modifications are linear.
    """
    prep = model.memoized_prep_us if memoized else model.op_prep_us
    total = 0.0
    if scalar_updates:
        total += model.pcie_rtt_us + prep + model.table_set_default_us
    total += table_entry_mods * (
        model.pcie_rtt_us + prep + model.table_modify_us
    )
    return total


def predict_reaction_time_us(
    model: DriverCostModel,
    spec: ControlPlaneSpec,
    reaction_name: str,
    reaction_logic_us: float = 0.0,
    table_entry_mods: int = 0,
    poll_batched: bool = False,
) -> float:
    """End-to-end iteration latency for one reaction, per the
    Section 8.1 formula.  ``poll_batched`` collapses the measurement
    phase's PCIe round trips to one (the agent's ``poll_batching``
    mode)."""
    reaction = spec.reactions[reaction_name]
    containers = set()
    register_terms = 0.0
    mirror_arrays = 0
    for arg, (source, key) in zip(reaction.decl.args, reaction.arg_sources):
        if source == "container":
            container, _slot = spec.container_for(reaction_name, arg.c_name)
            containers.add(container.register)
        elif source == "mirror":
            mirror = spec.mirrors[key]
            mirror_arrays += 1
            register_terms += predict_measurement_us(
                model,
                register_entries=arg.entry_count,
                register_width_bits=mirror.width,
                register_arrays=1,
            )
    measurement = predict_measurement_us(model, containers=len(containers))
    measurement += register_terms
    if poll_batched:
        poll_rtts = (1 if containers else 0) + mirror_arrays
        if poll_rtts > 1:
            measurement -= (poll_rtts - 1) * model.pcie_rtt_us

    n_init = max(1, len(spec.init_tables))
    mv_flip = predict_update_us(model, scalar_updates=1)
    vv_commit = predict_update_us(model, scalar_updates=1)
    table_mods = 2 * predict_update_us(model, table_entry_mods=table_entry_mods)
    extra_inits = 2 * predict_update_us(model, table_entry_mods=n_init - 1)
    return (
        mv_flip
        + measurement
        + reaction_logic_us
        + table_mods
        + extra_inits
        + vv_commit
    )
