"""The Section 8.1 reaction-time cost model.

The paper models total reaction latency as::

    F_10b(1 tblMod) + sum_args F_10a(a) + C
      + sum_tblMods 2 * F_10b(t) + 2 * F_10b(N_init - 1) + F_10b(1 tblMod)

where ``F_10a``/``F_10b`` are the measurement/update latency curves of
Figure 10, ``C`` is the reaction body's execution time, and ``N_init``
the number of init tables.  The terms are: the mv flip, argument
polling, reaction logic, prepare+mirror for each table modification,
prepare+mirror for the extra init tables, and the vv commit.

These predictors are exercised against the *measured* latencies of the
agent in ``benchmarks/test_fig10_*`` -- the model and the
implementation must agree, as they do in the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.compiler.spec import ControlPlaneSpec
from repro.switch.driver import DriverCostModel


# ---------------------------------------------------------------------------
# Driver op-count predictors (ISSUE 5).
#
# The latency predictors above integrate costs; these count the
# discrete driver operations one dialogue iteration issues, so the
# dirty-diff commit and delta-polling fast paths can be regression-
# tested against ``Driver.ops_issued`` instead of against timings.


def predict_mv_flip_ops(verify_commits: bool = False) -> int:
    """Ops of the measurement-version flip: one master default-action
    write, plus its read-back under ``verify_commits``."""
    return 1 + (1 if verify_commits else 0)


def predict_poll_ops(
    spec: ControlPlaneSpec,
    reaction_name: str,
    delta_polling: bool = False,
    delta_hits: int = 0,
) -> int:
    """Ops of one reaction's measurement poll.

    Each distinct packed container register costs one burst read; each
    mirror argument costs a ts read + a dup read.  With
    ``delta_polling`` every mirror argument pays one seq read up front,
    and ``delta_hits`` of them skip their ts+dup pair entirely.
    """
    reaction = spec.reactions[reaction_name]
    containers = set()
    mirror_args = 0
    for arg, (source, _key) in zip(reaction.decl.args, reaction.arg_sources):
        if source == "container":
            container, _slot = spec.container_for(reaction_name, arg.c_name)
            containers.add(container.register)
        elif source == "mirror":
            mirror_args += 1
    ops = len(containers)
    if delta_polling:
        delta_hits = min(delta_hits, mirror_args)
        ops += mirror_args  # one seq read per mirror argument
        ops += 2 * (mirror_args - delta_hits)
    else:
        ops += 2 * mirror_args
    return ops


def predict_commit_ops(
    spec: ControlPlaneSpec,
    commit_mode: str = "diff",
    dirty_shadows: int = 0,
    table_entry_mods: int = 0,
    verify_commits: bool = False,
) -> int:
    """Ops of the commit phase (prepare + vv flip + mirror).

    ``diff`` mode writes only the ``dirty_shadows`` init tables whose
    staged values actually differ from the committed ones; ``full``
    mode rewrites every non-master init table unconditionally.  Each
    shadow write is verified by a single-entry read-back in diff mode
    and a whole-table dump in full mode (both count as one table-read
    op).  ``table_entry_mods`` counts the reaction's malleable-table
    mutations, each of which is mirrored onto the old-version copy.
    """
    n_shadows = sum(1 for init in spec.init_tables if not init.master)
    writes = n_shadows if commit_mode == "full" else min(dirty_shadows, n_shadows)
    per_write = 1 + (1 if verify_commits else 0)
    ops = writes * per_write  # prepare
    ops += 1 + (1 if verify_commits else 0)  # master vv flip
    ops += writes * per_write  # mirror of the init shadows
    ops += table_entry_mods  # mirror of reaction table mutations
    return ops


def predict_iteration_ops(
    spec: ControlPlaneSpec,
    commit_mode: str = "diff",
    dirty_shadows: int = 0,
    table_entry_mods: int = 0,
    verify_commits: bool = False,
    delta_polling: bool = False,
    delta_hits: int = 0,
) -> int:
    """Total driver ops of one dialogue iteration (all reactions),
    excluding the ops the reaction bodies issue themselves (immediate
    table mutations -- those are charged where they happen)."""
    has_measurements = bool(spec.containers or spec.mirrors)
    ops = predict_mv_flip_ops(verify_commits) if has_measurements else 0
    for name in spec.reactions:
        ops += predict_poll_ops(
            spec, name, delta_polling=delta_polling, delta_hits=delta_hits
        )
    ops += predict_commit_ops(
        spec,
        commit_mode=commit_mode,
        dirty_shadows=dirty_shadows,
        table_entry_mods=table_entry_mods,
        verify_commits=verify_commits,
    )
    return ops


def predict_measurement_us(
    model: DriverCostModel,
    containers: int = 0,
    register_entries: int = 0,
    register_width_bits: int = 32,
    register_arrays: int = 0,
    memoized: bool = True,
    poll_batched: bool = False,
) -> float:
    """F_10a: latency of polling reaction arguments.

    ``containers`` packed field-argument registers (one op each, they
    are distinct arrays), plus ``register_arrays`` user register
    mirrors each burst-reading ``register_entries`` entries of value +
    timestamp.

    ``poll_batched`` models the agent's ``poll_batching`` mode: the
    entire measurement phase shares a single PCIe transaction instead
    of one per container group / mirror array.
    """
    prep = model.memoized_prep_us if memoized else model.op_prep_us
    total = 0.0
    rtts = 0
    if containers:
        # One batched PCIe transaction for all containers.
        rtts += 1
        total += containers * (prep + model.register_read_cost(1, 32))
    for _ in range(register_arrays):
        rtts += 1  # value + ts reads share a batch
        total += 2 * (
            prep
            + model.register_read_cost(register_entries, register_width_bits)
        )
    if poll_batched:
        rtts = min(rtts, 1)
    total += rtts * model.pcie_rtt_us
    return total


def predict_update_us(
    model: DriverCostModel,
    scalar_updates: int = 0,
    table_entry_mods: int = 0,
    memoized: bool = True,
) -> float:
    """F_10b: latency of applying updates (no isolation protocol).

    Any number of scalar malleable updates cost one init-table write;
    table entry modifications are linear.
    """
    prep = model.memoized_prep_us if memoized else model.op_prep_us
    total = 0.0
    if scalar_updates:
        total += model.pcie_rtt_us + prep + model.table_set_default_us
    total += table_entry_mods * (
        model.pcie_rtt_us + prep + model.table_modify_us
    )
    return total


def predict_reaction_time_us(
    model: DriverCostModel,
    spec: ControlPlaneSpec,
    reaction_name: str,
    reaction_logic_us: float = 0.0,
    table_entry_mods: int = 0,
    poll_batched: bool = False,
) -> float:
    """End-to-end iteration latency for one reaction, per the
    Section 8.1 formula.  ``poll_batched`` collapses the measurement
    phase's PCIe round trips to one (the agent's ``poll_batching``
    mode)."""
    reaction = spec.reactions[reaction_name]
    containers = set()
    register_terms = 0.0
    mirror_arrays = 0
    for arg, (source, key) in zip(reaction.decl.args, reaction.arg_sources):
        if source == "container":
            container, _slot = spec.container_for(reaction_name, arg.c_name)
            containers.add(container.register)
        elif source == "mirror":
            mirror = spec.mirrors[key]
            mirror_arrays += 1
            register_terms += predict_measurement_us(
                model,
                register_entries=arg.entry_count,
                register_width_bits=mirror.width,
                register_arrays=1,
            )
    measurement = predict_measurement_us(model, containers=len(containers))
    measurement += register_terms
    if poll_batched:
        poll_rtts = (1 if containers else 0) + mirror_arrays
        if poll_rtts > 1:
            measurement -= (poll_rtts - 1) * model.pcie_rtt_us

    n_init = max(1, len(spec.init_tables))
    mv_flip = predict_update_us(model, scalar_updates=1)
    vv_commit = predict_update_us(model, scalar_updates=1)
    table_mods = 2 * predict_update_us(model, table_entry_mods=table_entry_mods)
    extra_inits = 2 * predict_update_us(model, table_entry_mods=n_init - 1)
    return (
        mv_flip
        + measurement
        + reaction_logic_us
        + table_mods
        + extra_inits
        + vv_commit
    )
