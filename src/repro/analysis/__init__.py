"""Analysis helpers: resource accounting, the Section 8.1 cost model,
and small statistics used by the use cases and benchmarks."""

from repro.analysis.costmodel import (
    predict_measurement_us,
    predict_reaction_time_us,
    predict_update_us,
)
from repro.analysis.resources import ResourceReport, resource_report
from repro.analysis.stats import mad, median, percentile

__all__ = [
    "ResourceReport",
    "mad",
    "median",
    "percentile",
    "predict_measurement_us",
    "predict_reaction_time_us",
    "predict_update_us",
    "resource_report",
]
